"""Benchmark suite package.

Present so ``benchmarks/test_*.py`` modules can use relative imports
(``from .conftest import ...``) when collected by a rootdir-level
``python -m pytest`` run.
"""
