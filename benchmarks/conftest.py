"""Benchmark harness plumbing.

Each benchmark regenerates one of the paper's tables/figures via its
experiment module, persists the rendered text under ``results/``, and
asserts the qualitative shape the paper reports.  The scale preset is
selected by ``REPRO_SCALE`` (default: quick).
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment module once under pytest-benchmark timing and
    persist its report."""

    def _run(module, seed: int = 0):
        from repro.experiments import active_scale

        scale = active_scale()
        report = benchmark.pedantic(
            lambda: module.run(scale, seed=seed), rounds=1, iterations=1
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{report.experiment_id}_{scale.name}.txt"
        path.write_text(report.text + "\n")
        print(report.text)
        return report

    return _run


def non_increasing(series, tol: float = 1e-9) -> bool:
    arr = np.asarray(list(series), dtype=float)
    return bool((np.diff(arr) <= tol).all())


def finite_positive(values) -> bool:
    arr = np.asarray(list(values), dtype=float)
    return bool(np.isfinite(arr).all() and (arr > 0).all())
