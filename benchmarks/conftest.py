"""Benchmark harness plumbing.

Each benchmark regenerates one of the paper's tables/figures via its
experiment module, persists the rendered text under ``results/``, and
asserts the qualitative shape the paper reports.  The scale preset is
selected by ``REPRO_SCALE`` (default: quick).

On top of the printed timings, every benchmark records a machine-
readable entry — wall-clock seconds plus aggregated evaluator/GNN
counters where the report carries them — and the session writes the
collection to ``results/BENCH_pr9.json`` (uploaded as a CI artifact), so
the perf trajectory is tracked across commits instead of living only in
logs.  ``repro bench report`` folds the per-PR files into one
trajectory table and gates regressions.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_pr9.json"

# name -> {"seconds": float, ...extras}; flushed at session end.
_BENCH_RECORDS: dict[str, dict] = {}


def record_bench(name: str, seconds: float, **extra) -> None:
    """Add one benchmark's machine-readable record to the session file.

    The scale is stamped per record (not once per file): the file merges
    records across pytest sessions, which may run at different
    ``REPRO_SCALE`` settings, and a file-level stamp would relabel stale
    entries with whatever scale ran last.
    """
    _BENCH_RECORDS[name] = {
        "seconds": round(float(seconds), 4),
        "scale": os.environ.get("REPRO_SCALE", "quick"),
        **extra,
    }


def _aggregate_evaluator_stats(data) -> dict[str, float] | None:
    """Sum every ``"evaluator"`` stats block found in a report's data."""
    totals: dict[str, float] = {}

    def visit(node) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                if key == "evaluator" and isinstance(value, dict):
                    for stats in value.values():
                        if isinstance(stats, dict):
                            for counter, amount in stats.items():
                                if counter != "hit_rate":
                                    totals[counter] = totals.get(counter, 0) + amount
                else:
                    visit(value)

    visit(data)
    if not totals:
        return None
    looked_up = totals.get("cache_hits", 0) + totals.get("cache_misses", 0)
    totals["hit_rate"] = round(totals.get("cache_hits", 0) / looked_up, 4) if looked_up else 0.0
    return totals


def _aggregate_gnn_stats(data) -> dict[str, float] | None:
    """Sum every ``"gnn"`` stats block found in a report's data.

    Forward/backward counts are deterministic; the summed
    ``gnn_seconds`` is wall-clock (it is a VOLATILE_DATA_KEY in report
    JSON, but benchmark records are timing artifacts, so it belongs
    here).
    """
    totals: dict[str, float] = {}

    def visit(node) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                if key == "gnn" and isinstance(value, dict):
                    for stats in value.values():
                        if isinstance(stats, dict):
                            for counter, amount in stats.items():
                                totals[counter] = totals.get(counter, 0) + amount
                else:
                    visit(value)

    visit(data)
    if not totals:
        return None
    if "gnn_seconds" in totals:
        totals["gnn_seconds"] = round(totals["gnn_seconds"], 4)
    return totals


def pytest_sessionfinish(session, exitstatus) -> None:
    if not _BENCH_RECORDS:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    # CI runs the benchmark files as separate pytest sessions; merge into
    # any records an earlier session of the same job already wrote.
    benchmarks: dict[str, dict] = {}
    if BENCH_JSON.exists():
        try:
            benchmarks = json.loads(BENCH_JSON.read_text()).get("benchmarks", {})
        except (json.JSONDecodeError, AttributeError):
            benchmarks = {}
    benchmarks.update(_BENCH_RECORDS)
    payload = {
        "schema": 1,
        "benchmarks": dict(sorted(benchmarks.items())),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment module once under pytest-benchmark timing and
    persist its report."""

    def _run(module, seed: int = 0):
        from repro.experiments import active_scale

        scale = active_scale()
        began = time.perf_counter()
        report = benchmark.pedantic(
            lambda: module.run(scale, seed=seed), rounds=1, iterations=1
        )
        elapsed = time.perf_counter() - began
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{report.experiment_id}_{scale.name}.txt"
        path.write_text(report.text + "\n")
        print(report.text)
        extra = {}
        stats = _aggregate_evaluator_stats(report.data)
        if stats is not None:
            extra["evaluator"] = stats
        gnn = _aggregate_gnn_stats(report.data)
        if gnn is not None:
            extra["gnn"] = gnn
        record_bench(report.experiment_id, elapsed, **extra)
        return report

    return _run


def non_increasing(series, tol: float = 1e-9) -> bool:
    arr = np.asarray(list(series), dtype=float)
    return bool((np.diff(arr) <= tol).all())


def finite_positive(values) -> bool:
    arr = np.asarray(list(values), dtype=float)
    return bool(np.isfinite(arr).all() and (arr > 0).all())
