"""Ablation bench: action masks and message aggregation (DESIGN.md)."""

import numpy as np

from repro.experiments import ablation


def test_ablation_design_choices(run_experiment):
    report = run_experiment(ablation)
    finals = report.data["mean_final"]
    assert set(finals) == {
        "giph (masks, mean-agg)",
        "giph (no masks)",
        "giph (sum-agg)",
    }
    assert all(np.isfinite(v) and v >= 0.99 for v in finals.values())
