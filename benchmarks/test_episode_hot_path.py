"""Episode hot path: vectorized GNN sweep vs the per-task loop it replaced.

Times fig. 4-style REINFORCE training episodes (32 tasks on a
10-device network) twice in one process:

* the vectorized path — frontier-batched segment-op message passing
  with split-h1 edge hoisting and fused gradient accumulation (the
  default), and
* ``reference_path()`` — the retained per-task loop, which is the
  pre-vectorization implementation verbatim and therefore the honest
  "previous PR" baseline for the recorded speedup,

asserting the training trajectories are identical (the vectorization's
bit-identity contract, pinned exhaustively in
``tests/core/test_gnn_vectorized.py``) and that the hot path runs at
least 3x faster (CI gate; the local target is >= 5x, which is what the
recorded ``speedup`` field tracks across PRs).
"""

import time

import numpy as np

from repro.core.agent import GiPHAgent
from repro.core.gnn import gnn_stats, reference_path
from repro.core.placement import PlacementProblem
from repro.core.reinforce import ReinforceConfig, ReinforceTrainer
from repro.devices import DeviceNetworkParams, generate_device_network
from repro.graphs import TaskGraphParams, generate_task_graph
from repro.sim.objectives import MakespanObjective

from .conftest import record_bench

# Fig. 4-style episodes on a paper-scale device network, with a graph
# toward the large end of the training distribution — big enough that
# per-Tensor Python overhead dominates the loop path, as it does in
# the real experiments.
NUM_TASKS = 32
NUM_DEVICES = 10
EPISODES = 4
REPEATS = 3
MIN_SPEEDUP = 3.0  # CI gate; local target is 5x


def make_problem(seed: int) -> PlacementProblem:
    rng = np.random.default_rng(seed)
    graph = generate_task_graph(TaskGraphParams(num_tasks=NUM_TASKS, constraint_prob=0.3), rng)
    network = generate_device_network(DeviceNetworkParams(num_devices=NUM_DEVICES), rng)
    return PlacementProblem(graph, network)


def train_once(problem) -> tuple[float, list[float]]:
    """One fresh training run; returns (seconds, best-value trajectory)."""
    agent = GiPHAgent(np.random.default_rng(11))
    trainer = ReinforceTrainer(agent, MakespanObjective(), ReinforceConfig(episodes=EPISODES))
    start = time.perf_counter()
    trainer.train([problem], np.random.default_rng(13), episodes=EPISODES)
    return time.perf_counter() - start, [s.best_value for s in trainer.history]


def test_episode_hot_path_speedup():
    problem = make_problem(42)

    # Warm-up both paths (imports, evaluator caches, structure build)
    # and pin the bit-identity contract on the warm-up trajectories.
    _, vec_trajectory = train_once(problem)
    with reference_path():
        _, loop_trajectory = train_once(problem)
    assert vec_trajectory == loop_trajectory, (
        "vectorized and loop training must produce identical trajectories"
    )

    vec_seconds = loop_seconds = float("inf")
    for _ in range(REPEATS):
        seconds, _ = train_once(problem)
        vec_seconds = min(vec_seconds, seconds)
    before = gnn_stats()
    for _ in range(REPEATS):
        with reference_path():
            seconds, _ = train_once(problem)
        loop_seconds = min(loop_seconds, seconds)
    gnn = gnn_stats().delta(before)

    speedup = loop_seconds / vec_seconds
    print(
        f"\nepisode hot path ({NUM_TASKS} tasks, {NUM_DEVICES} devices, "
        f"{EPISODES} episodes): vectorized {vec_seconds:.3f}s, "
        f"loop {loop_seconds:.3f}s, speedup {speedup:.2f}x"
    )
    record_bench(
        "episode_hot_path",
        vec_seconds,
        loop_seconds=round(loop_seconds, 4),
        speedup=round(speedup, 2),
        num_tasks=NUM_TASKS,
        num_devices=NUM_DEVICES,
        episodes=EPISODES,
        loop_gnn_forwards=gnn.forwards,
        loop_gnn_backwards=gnn.backwards,
    )
    assert speedup >= MIN_SPEEDUP, (
        f"episode hot path regressed: {speedup:.2f}x < {MIN_SPEEDUP}x "
        f"(vectorized {vec_seconds:.3f}s vs loop {loop_seconds:.3f}s)"
    )
