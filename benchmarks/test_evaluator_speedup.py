"""Micro-benchmark: PlacementEvaluator vs the seed scoring path.

Replays a Fig. 4-style search episode (a relocation random walk with
revisits, the access pattern of the search MDP) and times

* the seed scoring path — one exact ``MakespanObjective.evaluate``
  (full discrete-event simulation) per placement, and
* the evaluator path — ``PlacementEvaluator.evaluate_many`` (vectorized
  batch cost realization + LRU cache),

asserting bit-identical values and the >= 2x speedup the runtime
subsystem exists for.  State construction (gpNet build vs incremental
update) is timed alongside and printed for CI visibility.
"""

import time

import numpy as np

from repro.core.features import GpNetBuilder
from repro.core.placement import PlacementProblem, random_placement
from repro.devices import DeviceNetworkParams, generate_device_network
from repro.graphs import TaskGraphParams, generate_task_graph
from repro.runtime import PlacementEvaluator
from repro.sim.objectives import MakespanObjective

# Best-of-N wall-clock sampling. Both paths are timed back-to-back in the
# same process, so machine load cancels out of the ratio; the measured
# margin (~4x vs the 2x gate) absorbs the rest.
REPEATS = 5


def fig4_style_episode(problem, rng, episodes=6):
    """Placement sequences of several search episodes on one instance.

    Each episode starts from a random placement and relocates one task
    per step for 2|V| steps; with probability 0.3 a step reverts the
    previous move — the revisit pattern search policies produce.
    """
    placements = []
    for _ in range(episodes):
        placement = list(random_placement(problem, rng))
        placements.append(tuple(placement))
        last = None
        for _ in range(2 * problem.graph.num_tasks):
            if last is not None and rng.random() < 0.3:
                task, device = last
                last = None
            else:
                task = int(rng.integers(0, problem.graph.num_tasks))
                device = int(rng.choice(list(problem.feasible_sets[task])))
                last = (task, placement[task])
            placement[task] = device
            placements.append(tuple(placement))
    return placements


def best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        began = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - began)
    return best


def test_evaluator_speedup_vs_seed_scoring_path():
    rng = np.random.default_rng(0)
    graph = generate_task_graph(TaskGraphParams(num_tasks=20, connect_prob=0.3), rng)
    network = generate_device_network(DeviceNetworkParams(num_devices=8), rng)
    problem = PlacementProblem(graph, network)
    objective = MakespanObjective()
    placements = fig4_style_episode(problem, rng)

    # Seed path: one full simulation per evaluation, nothing shared.
    cm = problem.cost_model
    seed_seconds = best_of(
        REPEATS, lambda: [objective.evaluate(cm, p) for p in placements]
    )
    expected = np.array([objective.evaluate(cm, p) for p in placements])

    # Evaluator path: fresh evaluator per repeat so every run pays its
    # own cache warm-up, exactly like a fresh search episode batch would.
    def run_evaluator():
        evaluator = PlacementEvaluator(problem, objective)
        run_evaluator.result = evaluator.evaluate_many(placements)
        run_evaluator.stats = evaluator.stats

    fast_seconds = best_of(REPEATS, run_evaluator)

    assert (run_evaluator.result == expected).all(), "fast path must be bit-identical"
    stats = run_evaluator.stats
    assert stats.cache_hits > 0 and stats.fast_path > 0

    speedup = seed_seconds / fast_seconds
    evals_per_sec = len(placements) / fast_seconds
    print(
        f"\nscoring {len(placements)} placements: seed {seed_seconds:.4f}s, "
        f"evaluator {fast_seconds:.4f}s -> {speedup:.2f}x "
        f"({evals_per_sec:,.0f} evaluations/sec, "
        f"hit rate {stats.hit_rate:.2f}, fast path {stats.fast_path})"
    )

    # State construction: full gpNet rebuild per step vs shared timeline
    # + incremental update (informational; not asserted to keep CI stable).
    moves = placements[: 2 * problem.graph.num_tasks + 1]

    def seed_states():
        builder = GpNetBuilder(problem)
        for p in moves:
            builder.build(p)
            objective.evaluate(cm, p)

    def incremental_states():
        builder = GpNetBuilder(problem)
        evaluator = PlacementEvaluator(problem, objective)
        net = builder.build(moves[0], timeline=evaluator.timeline(moves[0]))
        evaluator.evaluate(moves[0])
        prev = moves[0]
        for p in moves[1:]:
            # A step may pick the task's current device (p == prev);
            # update() then just returns the previous gpNet.
            moved = next((i for i in range(len(p)) if p[i] != prev[i]), 0)
            net = builder.update(net, p, moved, timeline=evaluator.timeline(p))
            evaluator.evaluate(p)
            prev = p

    seed_state_s = best_of(REPEATS, seed_states)
    fast_state_s = best_of(REPEATS, incremental_states)
    print(
        f"state construction over {len(moves)} steps: seed {seed_state_s:.4f}s, "
        f"incremental {fast_state_s:.4f}s -> {seed_state_s / fast_state_s:.2f}x"
    )

    assert speedup >= 2.0, (
        f"evaluator path must be >= 2x the seed scoring path, got {speedup:.2f}x"
    )
