"""Fig. 11: relocation cost vs pipeline frequency; energy objective."""

import numpy as np

from repro.experiments import fig11


def test_fig11_relocation_energy(run_experiment):
    report = run_experiment(fig11)

    reloc = report.data["relocation_cost_by_frequency"]
    freqs = sorted(float(f) for f in reloc)
    costs = [reloc[str(f)] for f in freqs]
    assert all(np.isfinite(c) and c >= 0 for c in costs)
    # Paper shape: higher pipeline frequency tolerates costlier relocation;
    # the incurred cost at the highest frequency should be at least that
    # at the lowest.
    assert costs[-1] >= costs[0] - 1e-9

    energy = report.data["energy"]
    # GiPH's best-of-search includes the random initial placement, so it
    # can never lose to that placement — and the paper's claim is that it
    # beats both baselines on energy.
    assert energy["giph"] <= energy["random"] + 1e-9
    assert all(np.isfinite(v) and v > 0 for v in energy.values())
