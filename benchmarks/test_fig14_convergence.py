"""Fig. 14: convergence of the GNN implementation alternatives."""

import numpy as np

from repro.experiments import fig14


def test_fig14_convergence(run_experiment):
    report = run_experiment(fig14)
    assert len(report.data) == 3  # three network settings
    for setting, curves in report.data.items():
        expected = set(fig14.GNN_VARIANTS) | {"giph-task-eft"}
        assert set(curves) == expected, setting
        for variant, curve in curves.items():
            assert len(curve) >= 1, f"{setting}/{variant}"
            assert np.isfinite(curve).all(), f"{setting}/{variant}"
            assert all(v >= 0.99 for v in curve), f"{setting}/{variant}: SLR < bound"
