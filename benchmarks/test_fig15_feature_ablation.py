"""Fig. 15: convergence without the start-time-potential feature."""

import numpy as np

from repro.experiments import fig15


def test_fig15_feature_ablation(run_experiment):
    report = run_experiment(fig15)
    curves = report.data["curves"]
    assert set(curves) == {"giph", "giph-3", "giph-5", "giph-ne-pol"}
    for variant, curve in curves.items():
        assert len(curve) >= 1 and np.isfinite(curve).all(), variant
        assert all(v >= 0.99 for v in curve), variant
