"""Fig. 16: total-cost minimization via reward swap."""

import numpy as np

from repro.experiments import fig16


def test_fig16_total_cost(run_experiment):
    report = run_experiment(fig16)
    overall = report.data["overall"]
    assert set(overall) == {"giph", "random", "heft"}
    assert all(np.isfinite(v) and v > 0 for v in overall.values())
    # GiPH's best-of-search shares random's initial placement, and the
    # learned policy optimizes cost directly: it must not lose to the
    # random search baseline on the cost objective.
    assert overall["giph"] <= overall["random"] * 1.05
