"""Fig. 4: placement quality and search efficiency (4 panels)."""

from repro.experiments import fig4

from .conftest import finite_positive, non_increasing


def test_fig4_search_efficiency(run_experiment):
    report = run_experiment(fig4)
    assert len(report.data) == 4  # {single, multi} x {0, 0.2} noise
    # End-to-end search throughput: evals divided by the whole policy.search
    # wall time (policy forwards + gpNet builds included), so it tracks the
    # user-visible search rate rather than the scoring path in isolation —
    # benchmarks/test_evaluator_speedup.py isolates the scoring path.
    # (Wall clock lives in data, not the persisted report text, so this
    # print is the CI-visible evaluations/sec signal.)
    for panel, payload in report.data.items():
        for name, stats in payload["evaluator"].items():
            secs = payload["search_seconds"][name]
            rate = stats["evaluations"] / secs if secs > 0 else 0.0
            print(
                f"[{panel}] {name}: {stats['evaluations']:.0f} evals, "
                f"hit rate {stats['hit_rate']:.2f}, {rate:,.0f} evaluations/sec"
            )
    for panel, payload in report.data.items():
        for name, curve in payload["curves"].items():
            assert non_increasing(curve), f"{panel}/{name} best-so-far must not increase"
            assert finite_positive(curve), f"{panel}/{name} SLR must be finite/positive"
        # Search must actually improve on the shared initial placement.
        giph = payload["curves"]["giph"]
        assert giph[-1] <= giph[0] + 1e-9
        # SLR is normalized to a true lower bound.
        assert payload["final"]["giph"] >= 0.99
