"""Fig. 5: average SLR vs task-graph depth."""

import numpy as np

from repro.experiments import fig5

from .conftest import finite_positive


def test_fig5_slr_vs_depth(run_experiment):
    report = run_experiment(fig5)
    depths = report.data["depths"]
    assert depths, "test set produced no depth buckets"
    for name, means in report.data["mean_slr"].items():
        assert len(means) == len(depths)
        assert finite_positive(means), name
    # SLR is lower-bounded by 1 for every method.
    for name, overall in report.data["overall"].items():
        assert overall >= 0.99, name
    # HEFT is the strong baseline: it must beat random sampling on average.
    assert report.data["overall"]["heft"] <= report.data["overall"]["random"] + 0.5
