"""Fig. 6: adaptivity to device-network changes."""

from repro.experiments import fig6

from .conftest import finite_positive


def test_fig6_adaptivity(run_experiment):
    report = run_experiment(fig6)
    slr = report.data["slr_by_change"]
    expected = {"giph", "giph-task-eft", "placeto", "random", "rnn-placer", "heft"}
    assert set(slr) == expected
    lengths = {len(v) for v in slr.values()}
    assert len(lengths) == 1 and lengths.pop() >= 1
    for name, series in slr.items():
        assert finite_positive(series), name
        assert all(v >= 0.99 for v in series), f"{name}: SLR below lower bound"
