"""Fig. 7: DL computation graphs — search efficiency + relocation counts."""

from repro.experiments import fig7

from .conftest import finite_positive, non_increasing


def test_fig7_dl_graphs(run_experiment):
    report = run_experiment(fig7)
    for name, curve in report.data["curves"].items():
        assert non_increasing(curve), name
        assert finite_positive(curve), name
        assert curve[-1] <= curve[0] + 1e-9
    # (b): GiPH relocates at least one task, and revisits some tasks more
    # than once (the selective-relocation behaviour of §5.2).
    hist = report.data["relocation_histogram"]
    assert hist, "GiPH never relocated any task"
    assert all(k >= 1 for k in hist)
