"""Fig. 9: case study — sensor-fusion placement over traffic traces."""

from repro.experiments import fig9

from .conftest import finite_positive, non_increasing


def test_fig9_casestudy(run_experiment):
    report = run_experiment(fig9)
    assert report.data["num_train"] >= 1 and report.data["num_test"] >= 1
    for name, curve in report.data["curves"].items():
        assert non_increasing(curve), name
        assert finite_positive(curve), name
    for name, finals in report.data["finals"].items():
        assert all(v >= 0.99 for v in finals), f"{name}: SLR below lower bound"
    # Search improves on the initial placement.
    giph = report.data["curves"]["giph"]
    assert giph[-1] <= giph[0] + 1e-9
