"""Full-tree lint speed: the CI gate must stay cheap enough to run first.

The `lint` CI job fronts every other job (``needs: lint`` fail-fast), so
the analyzer's whole-tree cost bounds how quickly a broken push is
reported.  Times ``run_lint()`` over the real installed tree — parse,
all 8 rules, suppressions, baseline — and gates the wall clock; the
record lands in ``results/BENCH_pr9.json`` so rule-portfolio growth
shows up in the perf trajectory instead of silently eating CI budget.
"""

import time

from repro.analysis import run_lint

from .conftest import record_bench

# One full parse + analysis of ~120 modules lands well under a second
# locally; the gate is generous for shared CI runners.
MAX_SECONDS = 5.0


def test_full_tree_lint_under_budget():
    run_lint()  # warm the interpreter (ast import, bytecode caches)

    start = time.perf_counter()
    result = run_lint()
    elapsed = time.perf_counter() - start

    per_module_ms = elapsed / result.modules * 1e3
    print(
        f"\nrepro lint full tree: {elapsed:.3f} s "
        f"({result.modules} modules, {len(result.rules)} rules, "
        f"{per_module_ms:.2f} ms/module)"
    )
    record_bench(
        "lint_full_tree",
        elapsed,
        modules=result.modules,
        rules=len(result.rules),
        ms_per_module=round(per_module_ms, 3),
    )
    assert result.clean, [f.location for f in result.findings]
    assert elapsed < MAX_SECONDS
