"""Parallel execution engine: wall-clock scaling on experiment sweeps.

Fig. 14's grid — 7 GNN variants x 3 network settings, each cell an
independent train-and-evaluate run — is the repo's canonical
embarrassingly parallel workload; table 6's six-variant training grid
joined it in the PR-4 seed-stream refactor as the widest formerly-serial
experiment.  The speedup benchmarks time each sweep serially and fanned
out over 4 workers and assert >=2x scaling (on machines with at least
4 CPUs; the determinism half runs everywhere and also guards the
fan-out's correctness).  The shard-backend row times the full
plan -> run -> run -> merge lifecycle against the fork run it must
reproduce byte-for-byte, recording the orchestration overhead.
"""

import dataclasses
import time

import pytest

from repro.experiments import QUICK, fig14, table6
from repro.parallel import available_workers

from .conftest import record_bench

# Smaller than the quick preset so the timed serial pass stays in
# seconds, but the same 21-cell grid shape as the real figure.
SWEEP_SCALE = dataclasses.replace(
    QUICK,
    name="bench-parallel",
    num_tasks=8,
    num_devices=4,
    train_graphs=3,
    test_cases=3,
    num_networks=2,
    convergence_episodes=6,
    convergence_eval_every=3,
    convergence_eval_cases=2,
)

MICRO_SCALE = dataclasses.replace(
    SWEEP_SCALE,
    name="bench-parallel-micro",
    num_tasks=5,
    num_devices=3,
    train_graphs=2,
    test_cases=2,
    convergence_episodes=2,
    convergence_eval_every=1,
    convergence_eval_cases=1,
)


def timed(workers: int, scale=SWEEP_SCALE):
    began = time.perf_counter()
    report = fig14.run(scale, seed=0, workers=workers)
    return time.perf_counter() - began, report


def test_fanout_is_deterministic_and_cheap():
    """Fan-out must change nothing but wall clock, even on one core."""
    serial_seconds, serial = timed(1, MICRO_SCALE)
    fanned_seconds, fanned = timed(2, MICRO_SCALE)
    assert serial.data == fanned.data
    # Process startup + context broadcast overhead stays bounded; on a
    # single-CPU box the fanned run degrades to roughly serial speed.
    assert fanned_seconds < 3.0 * serial_seconds + 2.0
    print(
        f"fig14 micro sweep: serial {serial_seconds:.2f}s, "
        f"2 workers {fanned_seconds:.2f}s ({available_workers()} CPUs)"
    )


@pytest.mark.skipif(
    available_workers() < 4, reason="wall-clock speedup needs >= 4 CPUs"
)
def test_parallel_speedup_fig14_sweep():
    # Note: on SMT machines reporting 4 vCPUs over 2 physical cores the
    # 2x bar is tighter than it looks; the 21-cell sweep is sized to
    # amortize fork/broadcast overhead so the margin holds there too.
    serial_seconds, serial = timed(1)
    fanned_seconds, fanned = timed(4)
    assert serial.data == fanned.data
    speedup = serial_seconds / fanned_seconds
    print(
        f"fig14-sized sweep (21 cells): serial {serial_seconds:.2f}s, "
        f"4 workers {fanned_seconds:.2f}s -> {speedup:.2f}x"
    )
    record_bench(
        "parallel_speedup_fig14",
        fanned_seconds,
        serial_seconds=round(serial_seconds, 4),
        speedup=round(speedup, 2),
        workers=4,
    )
    assert speedup >= 2.0, f"expected >=2x at 4 workers, got {speedup:.2f}x"


# Formerly-serial experiment grid (PR 4): table 6 trains six GNN-variant
# cells on one dataset and fans both training and eval per case.  Sized
# so the serial pass stays in seconds while each training cell is heavy
# enough to amortize fork/broadcast overhead.
TABLE6_SCALE = dataclasses.replace(
    QUICK,
    name="bench-table6-grid",
    num_tasks=8,
    num_devices=4,
    train_graphs=3,
    test_cases=4,
    episodes=8,
    num_networks=2,
    pairwise_cases=4,
)


@pytest.mark.skipif(
    available_workers() < 4, reason="wall-clock speedup needs >= 4 CPUs"
)
def test_parallel_speedup_table6_grid():
    began = time.perf_counter()
    serial = table6.run(TABLE6_SCALE, seed=0, workers=1)
    serial_seconds = time.perf_counter() - began
    began = time.perf_counter()
    fanned = table6.run(TABLE6_SCALE, seed=0, workers=4)
    fanned_seconds = time.perf_counter() - began
    assert serial.data == fanned.data
    speedup = serial_seconds / fanned_seconds
    print(
        f"table6 grid (6 training cells): serial {serial_seconds:.2f}s, "
        f"4 workers {fanned_seconds:.2f}s -> {speedup:.2f}x"
    )
    record_bench(
        "parallel_speedup_table6",
        fanned_seconds,
        serial_seconds=round(serial_seconds, 4),
        speedup=round(speedup, 2),
        workers=4,
    )
    assert speedup >= 2.0, f"expected >=2x at 4 workers, got {speedup:.2f}x"


def test_shard_roundtrip_matches_fork(tmp_path):
    """PR-5 shard backend: the full two-shard lifecycle on one host.

    Sequential local shards cannot beat the fork run (shard 0 computes
    every cell it needs; shard 1 and the merge are store loads) — this
    row tracks the *overhead* of store-mediated execution plus the
    byte-identity the sharding contract promises.  True speedup comes
    from concurrent shards on separate machines/terminals, which CI's
    sharded-equivalence job and tests/shard exercise.
    """
    from repro.shard import merge_shards, plan, run_shard

    began = time.perf_counter()
    fork = fig14.run(MICRO_SCALE, seed=0, workers=2)
    fork_seconds = time.perf_counter() - began

    began = time.perf_counter()
    for manifest in plan("fig14", 2, 0, MICRO_SCALE, tmp_path):
        run_shard(manifest)
    merged = merge_shards([tmp_path])
    shard_seconds = time.perf_counter() - began

    assert merged.to_json() == fork.to_json()
    overhead = shard_seconds / fork_seconds
    print(
        f"fig14 micro sweep: fork(2) {fork_seconds:.2f}s, "
        f"plan+2 runs+merge {shard_seconds:.2f}s ({overhead:.2f}x)"
    )
    record_bench(
        "parallel_shard_roundtrip_fig14",
        shard_seconds,
        fork_seconds=round(fork_seconds, 4),
        overhead=round(overhead, 2),
        shards=2,
    )
