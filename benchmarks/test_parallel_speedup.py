"""Parallel execution engine: wall-clock scaling on a fig14-sized sweep.

Fig. 14's grid — 7 GNN variants x 3 network settings, each cell an
independent train-and-evaluate run — is the repo's canonical
embarrassingly parallel workload.  The speedup benchmark times the
sweep serially and fanned out over 4 workers and asserts >=2x scaling
(on machines with at least 4 CPUs; the determinism half runs
everywhere and also guards the fan-out's correctness).
"""

import dataclasses
import time

import pytest

from repro.experiments import QUICK, fig14
from repro.parallel import available_workers

# Smaller than the quick preset so the timed serial pass stays in
# seconds, but the same 21-cell grid shape as the real figure.
SWEEP_SCALE = dataclasses.replace(
    QUICK,
    name="bench-parallel",
    num_tasks=8,
    num_devices=4,
    train_graphs=3,
    test_cases=3,
    num_networks=2,
    convergence_episodes=6,
    convergence_eval_every=3,
    convergence_eval_cases=2,
)

MICRO_SCALE = dataclasses.replace(
    SWEEP_SCALE,
    name="bench-parallel-micro",
    num_tasks=5,
    num_devices=3,
    train_graphs=2,
    test_cases=2,
    convergence_episodes=2,
    convergence_eval_every=1,
    convergence_eval_cases=1,
)


def timed(workers: int, scale=SWEEP_SCALE):
    began = time.perf_counter()
    report = fig14.run(scale, seed=0, workers=workers)
    return time.perf_counter() - began, report


def test_fanout_is_deterministic_and_cheap():
    """Fan-out must change nothing but wall clock, even on one core."""
    serial_seconds, serial = timed(1, MICRO_SCALE)
    fanned_seconds, fanned = timed(2, MICRO_SCALE)
    assert serial.data == fanned.data
    # Process startup + context broadcast overhead stays bounded; on a
    # single-CPU box the fanned run degrades to roughly serial speed.
    assert fanned_seconds < 3.0 * serial_seconds + 2.0
    print(
        f"fig14 micro sweep: serial {serial_seconds:.2f}s, "
        f"2 workers {fanned_seconds:.2f}s ({available_workers()} CPUs)"
    )


@pytest.mark.skipif(
    available_workers() < 4, reason="wall-clock speedup needs >= 4 CPUs"
)
def test_parallel_speedup_fig14_sweep():
    # Note: on SMT machines reporting 4 vCPUs over 2 physical cores the
    # 2x bar is tighter than it looks; the 21-cell sweep is sized to
    # amortize fork/broadcast overhead so the margin holds there too.
    serial_seconds, serial = timed(1)
    fanned_seconds, fanned = timed(4)
    assert serial.data == fanned.data
    speedup = serial_seconds / fanned_seconds
    print(
        f"fig14-sized sweep (21 cells): serial {serial_seconds:.2f}s, "
        f"4 workers {fanned_seconds:.2f}s -> {speedup:.2f}x"
    )
    assert speedup >= 2.0, f"expected >=2x at 4 workers, got {speedup:.2f}x"
