"""Micro-benchmark: scenario replay throughput (events/sec).

Replays the arrival-heavy ``flash-crowd`` preset — the configuration
where cross-event evaluator reuse matters most, since arrival events
leave the network untouched and the :class:`EvaluatorPool` keeps every
surviving problem's caches warm — and compares

* the production path — one pool per policy for the whole replay, and
* cold evaluators — a fresh :class:`PlacementEvaluator` per
  (event, graph), the configuration a naive per-event harness would use,

asserting the two agree on every reported value (reuse is a pure
optimization) and printing events/sec for CI visibility.
"""

import time

from repro.baselines import RandomPlacementPolicy, RandomTaskEftPolicy
from repro.scenarios import ScenarioRunner, DEFAULT_REGISTRY, materialize

REPEATS = 3


def best_of(repeats, fn):
    best, result = float("inf"), None
    for _ in range(repeats):
        began = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - began)
    return best, result


def policies():
    return {"random": RandomPlacementPolicy(), "task-eft": RandomTaskEftPolicy()}


def test_scenario_replay_throughput():
    materialized = materialize(DEFAULT_REGISTRY.get("flash-crowd"))
    num_events = materialized.num_events

    warm_s, warm = best_of(
        REPEATS, lambda: ScenarioRunner(materialized, reuse_evaluators=True).run(policies())
    )
    cold_s, cold = best_of(
        REPEATS, lambda: ScenarioRunner(materialized, reuse_evaluators=False).run(policies())
    )

    # Reuse is value-transparent: both paths report identical trajectories.
    for name in warm.reports:
        warm_steps = warm.reports[name].as_dict()["steps"]
        cold_steps = cold.reports[name].as_dict()["steps"]
        for a, b in zip(warm_steps, cold_steps):
            assert a["mean_value"] == b["mean_value"], name
            assert a["migration_cost_ms"] == b["migration_cost_ms"], name

    stats = warm.reports["task-eft"].evaluator_stats
    assert stats["hit_rate"] > 0.0, "reuse path should serve some lookups from cache"

    speedup = cold_s / warm_s
    print(
        f"\nscenario replay ({num_events} events, 2 policies + oracle): "
        f"reuse {num_events / warm_s:7.1f} events/s ({warm_s * 1e3:6.1f} ms), "
        f"cold {num_events / cold_s:7.1f} events/s ({cold_s * 1e3:6.1f} ms), "
        f"speedup x{speedup:.2f}, warm hit rate {stats['hit_rate']:.2f}"
    )
    # Both paths are timed back-to-back in-process; reuse must never lose
    # by more than noise.
    assert warm_s <= cold_s * 1.25, f"evaluator reuse slower than cold path (x{speedup:.2f})"
