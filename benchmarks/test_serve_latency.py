"""Micro-benchmark: warm serving latency vs the cold batch stack.

Starts an in-process :class:`PlacementServer`, drives it with the
seeded many-tenant load generator at client concurrency 4, and compares
the warm per-request p50 against a cold one-event
``repro scenario run`` subprocess — the full interpreter + import +
materialization bill every placement paid before the daemon existed.

The acceptance gate for placement-as-a-service: the warm request p50
must be at least 10x faster than the cold single-event run.  The load
summary (p50/p99 latency, requests/sec, cold comparison) is recorded
into ``results/BENCH_pr9.json``.
"""

import pathlib
import tempfile

from repro.serve.load import LoadConfig, format_load_summary, run_load
from repro.serve.server import PlacementServer, ServeConfig

from .conftest import record_bench

SPEEDUP_GATE = 10.0


def test_warm_request_p50_beats_cold_scenario_run():
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-", dir="/tmp") as tmp:
        socket_path = str(pathlib.Path(tmp) / "serve.sock")
        server = PlacementServer(ServeConfig(socket_path=socket_path))
        server.start()
        try:
            summary = run_load(
                LoadConfig(
                    socket_path=socket_path,
                    scenarios=("stable-cluster", "edge-churn"),
                    policy="task-eft",
                    clients=4,
                    seed=0,
                    backend="thread",
                    oracle=False,  # the cold reference runs --no-oracle
                    compare_cold=True,
                )
            )
        finally:
            server.stop()

    print(format_load_summary(summary))

    latency = summary["latency_ms"]
    assert summary["requests"] > 0
    assert 0.0 < latency["p50"] <= latency["p99"] <= latency["max"]
    assert summary["requests_per_second"] > 0

    # The point of serving: a warm request must dominate a cold run of
    # the batch stack for the same single placement event.
    assert summary["warm_speedup_vs_cold"] >= SPEEDUP_GATE, (
        f"warm p50 {latency['p50']:.2f} ms is only "
        f"{summary['warm_speedup_vs_cold']:.1f}x faster than a cold "
        f"single-event scenario run "
        f"({summary['cold_single_event_seconds']:.2f} s); need >= {SPEEDUP_GATE}x"
    )

    record_bench(
        "serve_request_latency",
        latency["p50"] / 1000.0,
        p50_ms=latency["p50"],
        p99_ms=latency["p99"],
        requests_per_second=summary["requests_per_second"],
        requests=summary["requests"],
        clients=summary["clients"],
        cold_single_event_seconds=summary["cold_single_event_seconds"],
        warm_speedup_vs_cold=summary["warm_speedup_vs_cold"],
    )
