"""Tables 1-2: measurement constants and the C·T + S latency fit."""

from repro.experiments import table1


def test_table1_latency_fit(run_experiment):
    report = run_experiment(table1)
    # The affine model reproduces Table 1 within a modest relative error.
    assert report.data["fit_rms"] < 0.30
    # Type C (GTX 1080 workstation) is the fastest device class.
    unit = report.data["unit_time"]
    assert unit["C"] < unit["A"] and unit["C"] < unit["B"]
