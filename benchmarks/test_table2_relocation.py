"""Table 2: relocation overheads drive a consistent relocation-cost model."""

import numpy as np
import pytest

from repro.casestudy import TABLE2_RELOCATION, TASK_KINDS
from repro.devices import Device, DeviceNetwork
from repro.sim import RelocationCostModel


def _net():
    devices = [
        Device(uid=0, speed=1.0, position=(0.0, 0.0)),
        Device(uid=1, speed=1.0, position=(100.0, 0.0)),
    ]
    bw = np.full((2, 2), 1000.0)
    np.fill_diagonal(bw, np.inf)
    return DeviceNetwork(devices, bw, np.zeros((2, 2)))


def test_table2_relocation(benchmark):
    model = RelocationCostModel(
        TABLE2_RELOCATION, device_types={0: "A", 1: "C"}
    )

    def compute_costs():
        return {
            kind: model.cost_ms(kind, _net(), 0, 1) for kind in TASK_KINDS
        }

    costs = benchmark.pedantic(compute_costs, rounds=1, iterations=1)
    print("relocation cost A->C (ms):", {k: round(v, 2) for k, v in costs.items()})
    # Camera relocation dominates (Table 2: 72 MB static data, ~4 s startup).
    assert costs["camera"] > costs["lidar"]
    assert costs["camera"] > costs["cav_fusion"]
    # All costs positive and finite.
    assert all(np.isfinite(v) and v > 0 for v in costs.values())
