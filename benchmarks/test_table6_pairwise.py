"""Table 6: pairwise placement-quality comparison."""

import numpy as np

from repro.experiments import table6


def test_table6_pairwise(run_experiment):
    report = run_experiment(table6)
    matrix = report.data["matrix"]
    methods = table6.METHODS
    # Completeness: every ordered pair present, percentages sum to 100.
    for a in methods:
        for b in methods:
            if a == b:
                continue
            better, equal, worse = matrix[f"{a}|{b}"]
            assert abs(better + equal + worse - 100.0) < 1e-6
            # Antisymmetry: a-vs-b mirrors b-vs-a.
            b2, e2, w2 = matrix[f"{b}|{a}"]
            assert abs(better - w2) < 1e-6 and abs(equal - e2) < 1e-6
    assert all(np.isfinite(v) for v in report.data["mean_final"].values())
