"""Table 7 / Fig. 17: policy running and training time per sample."""

import numpy as np

from repro.experiments import table7


def test_table7_running_time(run_experiment):
    report = run_experiment(table7)
    timing = report.data["table7"]
    variants = set(table7.VARIANTS) | {"placeto"}
    assert set(timing) == variants
    for variant, t in timing.items():
        assert t["infer"] > 0 and t["train"] > 0, variant
    # Paper shape: the no-GNN variant is the cheapest to run; the k-step
    # variants bound the cost of full-depth message passing.
    assert timing["giph-ne-pol"]["infer"] <= timing["giph"]["infer"]
    fig17 = report.data["fig17"]
    sizes = report.data["sizes"]
    for variant, series in fig17["infer"].items():
        assert len(series) == len(sizes), variant
        assert all(np.isfinite(x) and x > 0 for x in series), variant
