"""Disabled-mode telemetry overhead: span() must be near-free.

The instrumentation contract that lets hot paths (gnn forward, the
evaluator batch loop) stay instrumented unconditionally: with telemetry
off, ``span()`` is one attribute check returning a shared no-op object.
Times a tight loop of disabled spans and gates the per-call cost, and
records enabled-mode cost alongside for the trajectory file.
"""

import time

from repro.telemetry import reset, set_enabled, span

from .conftest import record_bench

CALLS = 200_000
# Generous CI gate (shared runners jitter); locally this lands well
# under 1 µs per disabled call.
MAX_DISABLED_US = 5.0


def time_span_loop(calls: int) -> float:
    start = time.perf_counter()
    for _ in range(calls):
        with span("bench.overhead"):
            pass
    return time.perf_counter() - start


def test_disabled_span_overhead():
    previous = set_enabled(False)
    try:
        time_span_loop(1000)  # warm up
        disabled_s = time_span_loop(CALLS)
    finally:
        set_enabled(previous)

    set_enabled(True)
    try:
        reset()
        enabled_s = time_span_loop(CALLS)
    finally:
        set_enabled(previous)
        reset()

    disabled_us = disabled_s / CALLS * 1e6
    enabled_us = enabled_s / CALLS * 1e6
    print(
        f"\nspan() per call: disabled {disabled_us:.3f} us, "
        f"enabled {enabled_us:.3f} us ({CALLS} calls)"
    )
    record_bench(
        "telemetry_overhead",
        disabled_s,
        calls=CALLS,
        disabled_us_per_call=disabled_us,
        enabled_us_per_call=enabled_us,
    )
    assert disabled_us < MAX_DISABLED_US
