#!/usr/bin/env python
"""Adapting placements to a changing device cluster (paper Fig. 6).

Trains a GiPH policy on one cluster, then lets the cluster churn —
devices leave, lower-capacity replacements join — and re-places the same
application after every change *without retraining*.  The same trained
policy keeps producing competitive placements because gpNet encodes the
(new) device features explicitly.

Run:  python examples/adaptive_cluster.py
"""

import numpy as np

from repro import GiPHAgent, MakespanObjective, PlacementProblem, ReinforceTrainer, run_search
from repro.baselines import heft_placement
from repro.core import ReinforceConfig, random_placement
from repro.devices import ChurnConfig, DeviceNetworkParams, generate_device_network, network_churn
from repro.graphs import TaskGraphParams, generate_task_graph
from repro.sim import cp_min_lower_bound


def main() -> None:
    rng = np.random.default_rng(3)
    objective = MakespanObjective()

    network = generate_device_network(
        DeviceNetworkParams(num_devices=8, support_prob=0.8), rng
    )
    graph = generate_task_graph(TaskGraphParams(num_tasks=10), rng)
    problem = PlacementProblem(graph, network)

    agent = GiPHAgent(rng)
    print(f"training on the initial {network.num_devices}-device cluster (20 episodes)...")
    ReinforceTrainer(agent, objective, ReinforceConfig(episodes=20)).train([problem], rng)

    churn = ChurnConfig(min_devices=6, max_devices=8, capacity_decay=0.7, num_changes=5)
    print(f"\n{'change':<22s} {'devices':>7s} {'GiPH SLR':>9s} {'HEFT SLR':>9s}")
    for event in network_churn(network, churn, rng):
        p = PlacementProblem(graph, event.network)
        bound = cp_min_lower_bound(p.cost_model)
        trace = run_search(agent, p, objective, random_placement(p, rng))
        heft_val = objective.evaluate(p.cost_model, heft_placement(p).placement)
        label = f"{event.kind} device {event.uid}"
        print(
            f"{label:<22s} {event.network.num_devices:>7d} "
            f"{trace.best_value / bound:>9.2f} {heft_val / bound:>9.2f}"
        )
    print("\nthe same policy adapted to every cluster state — no retraining.")


if __name__ == "__main__":
    main()
