#!/usr/bin/env python
"""Swapping objectives: makespan vs total cost vs energy (paper §6, B.8).

GiPH's reward is just the improvement of an objective function, so
optimizing something other than completion time is a one-line change.
This example trains three agents — makespan, total compute+communication
cost, and energy — on the same problem distribution and shows each wins
on its own metric.

Run:  python examples/cost_objectives.py
"""

import numpy as np

from repro import (
    EnergyObjective,
    GiPHAgent,
    MakespanObjective,
    PlacementProblem,
    ReinforceTrainer,
    TotalCostObjective,
    run_search,
)
from repro.core import ReinforceConfig, random_placement
from repro.devices import DeviceNetworkParams, generate_device_network
from repro.graphs import TaskGraphParams, generate_task_graph


def make_problem(rng):
    graph = generate_task_graph(TaskGraphParams(num_tasks=8), rng)
    network = generate_device_network(DeviceNetworkParams(num_devices=4), rng)
    return PlacementProblem(graph, network)


def main() -> None:
    rng = np.random.default_rng(5)
    objectives = {
        "makespan": MakespanObjective(),
        "total-cost": TotalCostObjective(),
        "energy": EnergyObjective(),
    }

    train = [make_problem(rng) for _ in range(4)]
    test = make_problem(rng)
    initial = random_placement(test, rng)

    # One agent per objective, identical training setup otherwise.
    agents = {}
    for name, objective in objectives.items():
        agent = GiPHAgent(np.random.default_rng(42), embedding="giph")
        print(f"training {name} agent (15 episodes)...")
        ReinforceTrainer(agent, objective, ReinforceConfig(episodes=15)).train(
            train, np.random.default_rng(1)
        )
        agents[name] = agent

    # Evaluate every agent's placement under every metric.
    print(f"\n{'agent trained on':<18s}" + "".join(f"{m:>14s}" for m in objectives))
    for name, agent in agents.items():
        trace = run_search(
            agent, test, objectives[name], initial, episode_length=2 * test.graph.num_tasks
        )
        row = [
            objectives[metric].evaluate(test.cost_model, trace.best_placement)
            for metric in objectives
        ]
        print(f"{name:<18s}" + "".join(f"{v:>14.2f}" for v in row))
    print("\nthe makespan-trained agent wins the makespan column while the")
    print("cost/energy agents win theirs (the two are closely correlated);")
    print("the reward function alone decides what GiPH optimizes.")


if __name__ == "__main__":
    main()
