#!/usr/bin/env python
"""Device placement for deep-learning computation graphs (paper §5.2).

Generates ENAS-style recurrent-cell graphs (200+ operators), groups
operators to a manageable node count, and trains GiPH to place the
groups across a simulated multi-device cluster — the classic
device-placement workload that motivated this line of research
(Mirhoseini et al., Placeto, GiPH).

Run:  python examples/deep_learning_placement.py
"""

import numpy as np

from repro import GiPHAgent, MakespanObjective, PlacementProblem, ReinforceTrainer, run_search
from repro.core import ReinforceConfig, random_placement
from repro.devices import DeviceNetworkParams, generate_device_network
from repro.graphs import group_operators, sample_cell_design, unroll_cell
from repro.sim import cp_min_lower_bound


def main() -> None:
    rng = np.random.default_rng(7)

    # An ENAS-style recurrent cell, unrolled over 22 timesteps at batch 96:
    # a computation graph of a few hundred operators.
    design = sample_cell_design(rng, num_nodes=10)
    graph = unroll_cell(design, steps=22, batch_size=96)
    print(f"unrolled cell: {graph.num_tasks} operators, {graph.num_edges} edges, "
          f"depth {graph.depth}")

    # Group operators (merge in-degree-1 lowest-cost into predecessor).
    grouped = group_operators(graph, target_size=16)
    print(f"grouped to {grouped.graph.num_tasks} placement groups "
          f"(largest group: {max(len(g) for g in grouped.groups)} ops)")

    # A simulated 5-device cluster (the paper uses 8; smaller here so the
    # example runs in seconds on the NumPy substrate).
    network = generate_device_network(
        DeviceNetworkParams(num_devices=5, support_prob=1.0), rng
    )
    problem = PlacementProblem(grouped.graph, network)
    objective = MakespanObjective()

    # Train on variants of the same cell family.
    train_graphs = [
        group_operators(
            unroll_cell(design, steps=int(rng.integers(18, 26)), batch_size=int(rng.integers(80, 128))),
            target_size=16,
        ).graph
        for _ in range(4)
    ]
    train_problems = [PlacementProblem(g, network) for g in train_graphs]

    agent = GiPHAgent(rng)
    print("training on 4 graph variants (15 episodes)...")
    ReinforceTrainer(agent, objective, ReinforceConfig(episodes=15)).train(
        train_problems, rng
    )

    initial = random_placement(problem, rng)
    trace = run_search(agent, problem, objective, initial)
    bound = cp_min_lower_bound(problem.cost_model)
    print(f"\ninitial makespan {trace.values[0]:9.1f}  (SLR {trace.values[0]/bound:.2f})")
    print(f"GiPH    makespan {trace.best_value:9.1f}  (SLR {trace.best_value/bound:.2f})")
    moved = [i for i, c in enumerate(trace.relocation_counts) if c > 0]
    print(f"groups relocated during search: {moved}")
    print(f"final device assignment: {trace.best_placement}")


if __name__ == "__main__":
    main()
