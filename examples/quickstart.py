#!/usr/bin/env python
"""Quickstart: train a GiPH policy and use it to place an application.

Covers the library's core loop end to end:

1. generate a random placement problem (task graph + device network);
2. train a GiPH agent with REINFORCE on a small problem distribution;
3. search for a placement on an *unseen* problem with the trained policy;
4. compare against random sampling and HEFT.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GiPHAgent, MakespanObjective, PlacementProblem, ReinforceTrainer, run_search
from repro.baselines import heft_placement
from repro.core import ReinforceConfig, random_placement
from repro.devices import DeviceNetworkParams, generate_device_network
from repro.graphs import TaskGraphParams, generate_task_graph
from repro.sim import cp_min_lower_bound


def make_problem(rng: np.random.Generator) -> PlacementProblem:
    graph = generate_task_graph(
        TaskGraphParams(num_tasks=14, shape=1.0, connect_prob=0.3), rng
    )
    network = generate_device_network(DeviceNetworkParams(num_devices=7), rng)
    return PlacementProblem(graph, network)


def main() -> None:
    rng = np.random.default_rng(0)
    objective = MakespanObjective()

    # 1-2. A small training distribution and a REINFORCE-trained agent.
    # (The paper trains for 200 episodes on 150 graphs; this miniature
    # budget keeps the example under a minute — expect modest gains here
    # and see the benchmark suite for the paper-scale comparison.)
    train_problems = [make_problem(rng) for _ in range(6)]
    agent = GiPHAgent(rng, embedding="giph")
    trainer = ReinforceTrainer(agent, objective, ReinforceConfig(episodes=40))
    print("training GiPH on 6 random problems (40 episodes)...")
    trainer.train(train_problems, rng)
    print(f"  reward of last episode: {trainer.history[-1].total_reward:+.2f}")

    # 3. Place an unseen problem: the policy relocates tasks step by step.
    problem = make_problem(rng)
    initial = random_placement(problem, rng)
    trace = run_search(agent, problem, objective, initial)
    bound = cp_min_lower_bound(problem.cost_model)

    print(f"\nunseen problem: {problem.graph.num_tasks} tasks on "
          f"{problem.network.num_devices} devices")
    print(f"  initial makespan: {trace.values[0]:8.2f}  (SLR {trace.values[0] / bound:.2f})")
    print(f"  GiPH best:        {trace.best_value:8.2f}  (SLR {trace.best_value / bound:.2f})")

    # 4. Reference points.
    random_best = min(
        objective.evaluate(problem.cost_model, random_placement(problem, rng))
        for _ in range(len(trace.values))
    )
    heft_value = objective.evaluate(problem.cost_model, heft_placement(problem).placement)
    print(f"  random sampling:  {random_best:8.2f}  (SLR {random_best / bound:.2f})")
    print(f"  HEFT:             {heft_value:8.2f}  (SLR {heft_value / bound:.2f})")
    print(f"\nGiPH relocation counts per task: {trace.relocation_counts}")


if __name__ == "__main__":
    main()
