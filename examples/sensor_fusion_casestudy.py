#!/usr/bin/env python
"""Cooperative sensor fusion for CAV intersections (paper §5.3).

Simulates traffic in a grid of RSU-equipped intersections, extracts
sensor-fusion placement cases (camera/LIDAR detection, per-CAV fusion,
RSU fusion) as vehicles move, and shows GiPH placing a pipeline under
the measured Jetson/GTX latency model and distance-decaying wireless
bandwidth — including the relocation-cost accounting of Fig. 11.

Run:  python examples/sensor_fusion_casestudy.py
"""

import numpy as np

from repro import GiPHAgent, MakespanObjective, ReinforceTrainer, run_search
from repro.casestudy import (
    TABLE2_RELOCATION,
    TraceConfig,
    TrafficConfig,
    extract_trace,
    fit_latency_model,
)
from repro.core import ReinforceConfig, random_placement
from repro.sim import RelocationCostModel, cp_min_lower_bound


def main() -> None:
    rng = np.random.default_rng(11)

    # Latency model fitted to the paper's Table 1 measurements.
    fit = fit_latency_model()
    print("fitted device features (T = ms/compute-unit, S = startup ms):")
    for t in ("A", "B", "C"):
        print(f"  type {t}: T={fit.unit_time[t]:.3f}, S={fit.startup[t]:.2f}")

    # A few minutes of traffic at a higher CAV fraction so the small
    # example reliably produces placement cases.
    config = TraceConfig(
        traffic=TrafficConfig(num_vehicles=400, duration_s=150.0, cav_fraction=0.3),
        max_cases=8,
    )
    scenarios = extract_trace(config, rng, fit=fit)
    print(f"\nextracted {len(scenarios)} placement cases from the trace")

    train = [s.problem for s in scenarios[:-1]]
    scenario = scenarios[-1]
    problem = scenario.problem
    print(f"evaluation case: intersection {scenario.intersection_id} at "
          f"t={scenario.time_s:.0f}s, {scenario.num_cavs} CAV(s), "
          f"{problem.graph.num_tasks} tasks on {problem.network.num_devices} devices")

    objective = MakespanObjective()
    agent = GiPHAgent(rng)
    print("training on the other trace cases (12 episodes)...")
    ReinforceTrainer(agent, objective, ReinforceConfig(episodes=12)).train(train, rng)

    initial = random_placement(problem, rng)
    trace = run_search(agent, problem, objective, initial)
    bound = cp_min_lower_bound(problem.cost_model)
    print(f"\ninitial pipeline latency {trace.values[0]:8.1f} ms "
          f"(SLR {trace.values[0]/bound:.2f})")
    print(f"GiPH    pipeline latency {trace.best_value:8.1f} ms "
          f"(SLR {trace.best_value/bound:.2f})")

    # Relocation cost of adopting the found placement (Fig. 11 accounting).
    model = RelocationCostModel(
        TABLE2_RELOCATION,
        {uid: t for uid, t in scenario.device_types.items() if t != "CIS"},
    )
    total = 0.0
    network = problem.network
    for i, (old, new) in enumerate(zip(initial, trace.best_placement)):
        kind = scenario.task_kinds[i]
        if old == new or kind not in model.profiles:
            continue
        cost = model.cost_ms(kind, network, network.devices[old].uid, network.devices[new].uid)
        total += cost
        print(f"  relocate {kind:<11s} task {i}: {cost:8.1f} ms")
    for freq in (1.0, 10.0, 30.0):
        print(f"relocation cost amortized at {freq:>4.0f} Hz: {total / freq:8.1f} ms/run")


if __name__ == "__main__":
    main()
