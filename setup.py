"""Setup shim for environments without the `wheel` package.

Allows `pip install -e . --no-build-isolation --no-use-pep517` offline;
all real metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
