"""repro — reproduction of GiPH: Generalizable Placement Learning for
Adaptive Heterogeneous Computing (MLSys 2023).

Subpackages
-----------
* :mod:`repro.nn` — NumPy autograd / neural-network substrate.
* :mod:`repro.graphs` — task graphs: structures and generators.
* :mod:`repro.devices` — heterogeneous device networks and churn.
* :mod:`repro.sim` — discrete-event runtime simulator, metrics, objectives.
* :mod:`repro.runtime` — batched/caching placement scoring (PlacementEvaluator).
* :mod:`repro.core` — GiPH itself: gpNet, MDP, GNNs, policy, REINFORCE.
* :mod:`repro.baselines` — HEFT, EFT hybrids, Placeto, RNN placer.
* :mod:`repro.scenarios` — declarative dynamic-cluster scenarios + replay.
* :mod:`repro.casestudy` — CAV sensor-fusion case study.
* :mod:`repro.experiments` — runners regenerating every paper table/figure.

Quickstart
----------
>>> import numpy as np
>>> from repro import GiPHAgent, PlacementProblem, ReinforceTrainer, run_search
>>> from repro.graphs import TaskGraphParams, generate_task_graph
>>> from repro.devices import DeviceNetworkParams, generate_device_network
>>> from repro.sim import MakespanObjective
>>> rng = np.random.default_rng(0)
>>> graph = generate_task_graph(TaskGraphParams(num_tasks=10), rng)
>>> network = generate_device_network(DeviceNetworkParams(num_devices=4), rng)
>>> problem = PlacementProblem(graph, network)
>>> agent = GiPHAgent(rng)
>>> stats = ReinforceTrainer(agent, MakespanObjective()).train([problem], rng, episodes=2)
>>> len(stats)
2
"""

from .core import (
    GiPHAgent,
    PlacementProblem,
    ReinforceConfig,
    ReinforceTrainer,
    SearchTrace,
    random_placement,
    run_search,
)
from .runtime import EvaluatorStats, PlacementEvaluator
from .scenarios import DEFAULT_REGISTRY, AdaptationReport, ScenarioRunner, ScenarioSpec
from .sim import EnergyObjective, MakespanObjective, TotalCostObjective, simulate

__version__ = "1.0.0"

__all__ = [
    "GiPHAgent",
    "PlacementProblem",
    "PlacementEvaluator",
    "EvaluatorStats",
    "ReinforceConfig",
    "ReinforceTrainer",
    "SearchTrace",
    "random_placement",
    "run_search",
    "MakespanObjective",
    "TotalCostObjective",
    "EnergyObjective",
    "simulate",
    "ScenarioSpec",
    "ScenarioRunner",
    "AdaptationReport",
    "DEFAULT_REGISTRY",
    "__version__",
]
