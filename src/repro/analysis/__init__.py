"""``repro lint``: AST-based invariant analysis over the source tree.

Every major bug class this reproduction has fixed by hand was an
*invariant* violation, not a logic error — shared advancing RNGs and
hardcoded seeds that broke worker-count independence (PRs 3-4), agents
sampling from internal RNGs instead of caller streams, metrics absorbed
on both sides of a merge, cache-mutating evaluation escaping the serve
daemon's single drain thread.  Each was caught late by expensive
equivalence suites.  This package catches them at diff time: the
contracts the codebase states only in docstrings and CHANGES entries
are mechanized as AST rules.

Layout
------
:mod:`~repro.analysis.loader`
    Parses every module under the package root once and resolves the
    intra-package import graph rules can traverse.
:mod:`~repro.analysis.findings`
    The :class:`Finding` model — ``file:line``, rule id, message, fix
    hint.
:mod:`~repro.analysis.suppressions`
    Inline ``# repro: lint-ok[rule-id]`` waivers.
:mod:`~repro.analysis.baseline`
    The tracked baseline file (``lint-baseline.json``) recording
    intentionally-kept pre-existing findings with justifications.
:mod:`~repro.analysis.engine`
    Ties it together: run the rule portfolio, apply suppressions and
    the baseline, render text/JSON.
:mod:`~repro.analysis.rules`
    The rule portfolio itself (one module per contract family).

Usage::

    repro lint                      # whole tree, blocking in CI
    repro lint --rule rng-constant-seed
    repro lint --baseline update    # re-record pre-existing findings
    repro lint --json findings.json
"""

from __future__ import annotations

from .baseline import Baseline, BaselineEntry, default_baseline_path
from .engine import LintResult, findings_payload, render_text, run_lint
from .findings import Finding
from .loader import LintTree, ModuleInfo, load_tree
from .rules import ALL_RULES, get_rules, rule_ids

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintResult",
    "LintTree",
    "ModuleInfo",
    "default_baseline_path",
    "findings_payload",
    "get_rules",
    "load_tree",
    "render_text",
    "rule_ids",
    "run_lint",
]
