"""The tracked lint baseline: pre-existing findings, kept on purpose.

``lint-baseline.json`` (repo root, committed) records findings that
predate a rule or are intentional, each with a ``justification``.  The
engine subtracts matching findings from a run, so ``repro lint`` stays
zero on a clean tree while new violations still fail.

Entries match by ``(rule, path, code)`` — the stripped source line, not
its number — so unrelated edits that shift lines don't invalidate the
baseline, while editing the flagged line itself (the moment the
contract should be re-examined) does.  Identical flagged lines in one
file consume one entry each.

``repro lint --baseline update`` rewrites the file from the current
findings, preserving justifications of entries that survive; new
entries get a placeholder justification to fill in before committing.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

from .findings import Finding

__all__ = ["Baseline", "BaselineEntry", "default_baseline_path"]

_PLACEHOLDER = "TODO: justify or fix"


def default_baseline_path(package_dir: pathlib.Path) -> pathlib.Path:
    """``lint-baseline.json`` at the repo root (``<root>/src/repro`` layout),
    falling back to a sibling of the package for non-standard checkouts."""
    candidates = [
        package_dir.parent.parent / "lint-baseline.json",  # <repo>/src/repro
        package_dir.parent / "lint-baseline.json",
    ]
    for candidate in candidates:
        if candidate.exists():
            return candidate
    return candidates[0]


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    code: str
    line: int = 0  # informational; matching ignores it
    justification: str = _PLACEHOLDER

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.code)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "justification": self.justification,
        }


class Baseline:
    """A loaded baseline file (missing file = empty baseline)."""

    def __init__(self, entries: list[BaselineEntry], path: pathlib.Path | None = None):
        self.entries = entries
        self.path = path

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "Baseline":
        path = pathlib.Path(path)
        if not path.exists():
            return cls([], path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries = [
            BaselineEntry(
                rule=str(entry["rule"]),
                path=str(entry["path"]),
                code=str(entry["code"]),
                line=int(entry.get("line", 0)),
                justification=str(entry.get("justification", _PLACEHOLDER)),
            )
            for entry in payload.get("entries", [])
        ]
        return cls(entries, path)

    def split(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding]]:
        """``(new, baselined)`` — each entry absorbs at most one finding."""
        budget: dict[tuple[str, str, str], int] = {}
        for entry in self.entries:
            budget[entry.fingerprint] = budget.get(entry.fingerprint, 0) + 1
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            if budget.get(finding.fingerprint, 0) > 0:
                budget[finding.fingerprint] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined

    def updated(self, findings: list[Finding]) -> "Baseline":
        """A baseline covering exactly ``findings``, keeping old justifications."""
        justifications: dict[tuple[str, str, str], list[str]] = {}
        for entry in self.entries:
            justifications.setdefault(entry.fingerprint, []).append(entry.justification)
        entries = []
        for finding in sorted(findings):
            kept = justifications.get(finding.fingerprint)
            justification = kept.pop(0) if kept else _PLACEHOLDER
            entries.append(
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.rel,
                    code=finding.code,
                    line=finding.line,
                    justification=justification,
                )
            )
        return Baseline(entries, self.path)

    def write(self, path: str | pathlib.Path | None = None) -> pathlib.Path:
        target = pathlib.Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("baseline has no path to write to")
        payload = {
            "version": 1,
            "entries": [entry.as_dict() for entry in self.entries],
        }
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )
        return target
