"""The lint engine: run rules, apply suppressions and the baseline.

``run_lint`` is the single entry point used by the CLI, the tests, and
the speed benchmark.  The pipeline is: parse the tree once, run every
selected rule over every module (plus each rule's cross-module
``finish`` pass), dedupe, drop inline-suppressed findings, subtract the
baseline, and hand back a :class:`LintResult` with all four buckets so
callers can render or assert on any of them.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from .baseline import Baseline, default_baseline_path
from .findings import Finding
from .loader import LintTree, load_tree
from .rules import LintContext, Rule, get_rules
from .suppressions import collect_suppressions

__all__ = ["LintResult", "findings_payload", "render_text", "run_lint"]


def _default_package_dir() -> pathlib.Path:
    """The installed ``repro`` package directory (``<repo>/src/repro``)."""
    return pathlib.Path(__file__).resolve().parent.parent


@dataclass
class LintResult:
    """Outcome of one lint run, bucketed.

    ``findings`` are the live violations (what makes the exit code
    non-zero); ``suppressed`` were waived inline, ``baselined`` were
    absorbed by the tracked baseline file.
    """

    findings: list[Finding]
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    modules: int = 0
    rules: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


def run_lint(
    root: str | pathlib.Path | None = None,
    rule_ids: list[str] | None = None,
    baseline_path: str | pathlib.Path | None = None,
    baseline_mode: str = "apply",
    package: str = "repro",
) -> LintResult:
    """Lint the package tree under ``root`` (default: this installation).

    ``baseline_mode``: ``"apply"`` subtracts baseline entries,
    ``"ignore"`` reports everything, ``"update"`` rewrites the baseline
    file from the current findings (preserving justifications) and then
    reports clean.
    """
    if baseline_mode not in ("apply", "ignore", "update"):
        raise ValueError(f"unknown baseline mode {baseline_mode!r}")
    package_dir = pathlib.Path(root) if root is not None else _default_package_dir()
    tree = load_tree(package_dir, package=package)
    rules = get_rules(rule_ids)
    raw = _run_rules(tree, rules)
    live, suppressed = _apply_suppressions(tree, raw)

    result = LintResult(
        findings=live,
        suppressed=suppressed,
        modules=len(tree),
        rules=[rule.id for rule in rules],
    )
    if baseline_mode == "ignore":
        return result

    path = (
        pathlib.Path(baseline_path)
        if baseline_path is not None
        else default_baseline_path(package_dir)
    )
    baseline = Baseline.load(path)
    if baseline_mode == "update":
        baseline.updated(live).write(path)
        result.baselined = live
        result.findings = []
        return result
    new, baselined = baseline.split(live)
    result.findings = new
    result.baselined = baselined
    return result


def _run_rules(tree: LintTree, rules: list[Rule]) -> list[Finding]:
    ctx = LintContext(tree)
    found: list[Finding] = []
    for module in tree:
        for rule in rules:
            found.extend(rule.check_module(module, ctx))
    for rule in rules:
        found.extend(rule.finish(ctx))
    # Dedupe exact repeats (e.g. an assign inside nested span bodies is
    # reached once per enclosing `with`), keep stable order.
    seen: set[tuple] = set()
    unique: list[Finding] = []
    for finding in sorted(found):
        key = (finding.rel, finding.line, finding.col, finding.rule, finding.message)
        if key in seen:
            continue
        seen.add(key)
        unique.append(finding)
    return unique


def _apply_suppressions(
    tree: LintTree, findings: list[Finding]
) -> tuple[list[Finding], list[Finding]]:
    waivers = {module.rel: collect_suppressions(module) for module in tree}
    live: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        waiver = waivers.get(finding.rel)
        if waiver is not None and waiver.is_suppressed(finding.line, finding.rule):
            suppressed.append(finding)
        else:
            live.append(finding)
    return live, suppressed


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report, one block per finding."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(f"{finding.location}: [{finding.rule}] {finding.message}")
        if finding.code:
            lines.append(f"    {finding.code}")
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    summary = (
        f"{len(result.findings)} finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{len(result.suppressed)} suppressed "
        f"({result.modules} modules, {len(result.rules)} rules)"
    )
    if verbose:
        for finding in result.baselined:
            lines.append(f"baselined {finding.location}: [{finding.rule}] {finding.message}")
        for finding in result.suppressed:
            lines.append(f"suppressed {finding.location}: [{finding.rule}]")
    if lines:
        lines.append("")
    lines.append(summary)
    return "\n".join(lines)


def findings_payload(result: LintResult) -> dict:
    """JSON-serializable payload for ``repro lint --json`` / CI artifacts."""
    return {
        "version": 1,
        "clean": result.clean,
        "modules": result.modules,
        "rules": result.rules,
        "findings": [finding.as_dict() for finding in result.findings],
        "baselined": [finding.as_dict() for finding in result.baselined],
        "suppressed": [finding.as_dict() for finding in result.suppressed],
    }
