"""The finding model: one invariant violation at one source location."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    ``rel`` is the package-relative path (``serve/server.py``) so
    findings — and the baseline entries made from them — stay stable
    across checkouts; renderers join it with the lint root for
    clickable ``src/repro/...:line`` locations.  ``code`` carries the
    stripped source line, which doubles as the baseline fingerprint
    (line numbers drift, the flagged code rarely does).
    """

    rel: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""
    code: str = ""

    @property
    def location(self) -> str:
        return f"{self.rel}:{self.line}"

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-free identity used for baseline matching."""
        return (self.rule, self.rel, self.code)

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.rel,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "code": self.code,
        }
