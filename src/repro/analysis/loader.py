"""Module loading and the intra-package import graph.

The loader walks a package directory once, parses every ``.py`` file to
an AST, and resolves each module's imports *within the package* to
dotted module names — the import graph cross-module rules (e.g. the
drain-thread ownership check) traverse.  Parsing happens exactly once
per file per lint run; rules share the :class:`ModuleInfo` objects.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["LintTree", "ModuleInfo", "load_tree"]


@dataclass
class ModuleInfo:
    """One parsed source module of the linted package."""

    name: str  # dotted module name, e.g. "repro.serve.server"
    rel: str  # package-relative posix path, e.g. "serve/server.py"
    path: pathlib.Path
    source: str
    tree: ast.Module
    lines: list[str] = field(repr=False)
    imports: set[str] = field(default_factory=set)  # resolved intra-package names

    def line_text(self, line: int) -> str:
        """The stripped source text of a 1-based line (``""`` if absent)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    @property
    def package(self) -> str:
        """The dotted package this module lives in."""
        parts = self.name.split(".")
        if self.rel.endswith("__init__.py"):
            return self.name
        return ".".join(parts[:-1])


class LintTree:
    """Every module of the linted package, plus the import graph."""

    def __init__(self, root: pathlib.Path, package: str, modules: list[ModuleInfo]):
        self.root = root
        self.package = package
        self.modules = modules
        self.by_name = {m.name: m for m in modules}
        self.by_rel = {m.rel: m for m in modules}
        _resolve_imports(self)

    def __iter__(self) -> Iterator[ModuleInfo]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)

    def get_rel(self, rel: str) -> ModuleInfo | None:
        return self.by_rel.get(rel)

    def importers_of(self, name: str) -> list[ModuleInfo]:
        """Modules whose resolved imports include ``name``."""
        return [m for m in self.modules if name in m.imports]


def _module_name(package: str, rel: pathlib.Path) -> str:
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package, *parts]) if parts else package


def load_tree(package_dir: str | pathlib.Path, package: str = "repro") -> LintTree:
    """Parse every ``.py`` file under ``package_dir`` into a :class:`LintTree`.

    ``package_dir`` is the directory of the package itself (the one
    holding its ``__init__.py``); ``package`` names it.  Files that do
    not parse raise ``SyntaxError`` — a tree that cannot be analyzed
    should fail loudly, not lint partially.
    """
    root = pathlib.Path(package_dir).resolve()
    modules: list[ModuleInfo] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        if "__pycache__" in rel.parts:
            continue
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        modules.append(
            ModuleInfo(
                name=_module_name(package, rel),
                rel=rel.as_posix(),
                path=path,
                source=source,
                tree=tree,
                lines=source.splitlines(),
            )
        )
    return LintTree(root, package, modules)


def _resolve_imports(tree: LintTree) -> None:
    """Fill each module's ``imports`` with resolved intra-package names.

    Resolution is name-based (no code execution): absolute imports keep
    only those under the linted package; relative imports are expanded
    against the importing module's package.  ``from pkg import thing``
    records ``pkg.thing`` when that is a known module, else ``pkg``.
    """
    known = set(tree.by_name)

    def record(module: ModuleInfo, candidate: str) -> None:
        if candidate in known:
            module.imports.add(candidate)
            return
        # Trim trailing attributes until a known module (or nothing) is left.
        while "." in candidate:
            candidate = candidate.rsplit(".", 1)[0]
            if candidate in known:
                module.imports.add(candidate)
                return

    for module in tree:
        package_parts = module.package.split(".")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == tree.package or alias.name.startswith(
                        tree.package + "."
                    ):
                        record(module, alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0:
                    base = node.module or ""
                    if not (base == tree.package or base.startswith(tree.package + ".")):
                        continue
                else:
                    # Relative: climb level-1 packages above this module's.
                    anchor = package_parts[: len(package_parts) - (node.level - 1)]
                    if not anchor:
                        continue
                    base = ".".join(anchor + ([node.module] if node.module else []))
                record(module, base)
                for alias in node.names:
                    record(module, f"{base}.{alias.name}")
