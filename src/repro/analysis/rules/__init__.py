"""The rule portfolio: one module per contract family.

``ALL_RULES`` maps rule id -> factory.  Factories (not instances) so
every run gets fresh rule objects — some rules accumulate cross-module
state between ``check_module`` and ``finish``.
"""

from __future__ import annotations

from typing import Callable

from .base import LintContext, Rule
from .concurrency import DrainThreadOwnershipRule, FanoutPickleSafetyRule
from .reports import CanonicalJsonRule, VolatileKeyDriftRule
from .rng import RngConstantSeedRule, RngStoredAdvancingRule
from .telemetry_purity import StatsDoubleAbsorbRule, TelemetryPurityRule

__all__ = [
    "ALL_RULES",
    "LintContext",
    "Rule",
    "get_rules",
    "rule_ids",
]

_RULE_CLASSES: tuple[type[Rule], ...] = (
    RngConstantSeedRule,
    RngStoredAdvancingRule,
    TelemetryPurityRule,
    StatsDoubleAbsorbRule,
    VolatileKeyDriftRule,
    CanonicalJsonRule,
    FanoutPickleSafetyRule,
    DrainThreadOwnershipRule,
)

ALL_RULES: dict[str, Callable[[], Rule]] = {cls.id: cls for cls in _RULE_CLASSES}


def rule_ids() -> list[str]:
    return list(ALL_RULES)


def get_rules(ids: list[str] | None = None) -> list[Rule]:
    """Fresh instances of the selected rules (all when ``ids`` is None)."""
    if ids is None:
        return [factory() for factory in ALL_RULES.values()]
    unknown = [rule_id for rule_id in ids if rule_id not in ALL_RULES]
    if unknown:
        known = ", ".join(ALL_RULES)
        raise KeyError(f"unknown rule id(s) {unknown}; known: {known}")
    return [ALL_RULES[rule_id]() for rule_id in ids]
