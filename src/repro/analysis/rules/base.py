"""Rule interface, lint context, and shared AST helpers."""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..findings import Finding
from ..loader import LintTree, ModuleInfo

__all__ = [
    "LintContext",
    "Rule",
    "call_name",
    "dotted_name",
    "is_constant_seed",
    "iter_functions",
]


class LintContext:
    """Per-run state shared by every rule.

    Holds the parsed tree (with its import graph) and lazily extracted
    cross-module facts — e.g. the ``VOLATILE_DATA_KEYS`` set, read from
    the scanned source itself (never imported), so a fixture tree in a
    test carries its own contract definitions.
    """

    def __init__(self, tree: LintTree):
        self.tree = tree
        self._volatile_keys: frozenset[str] | None | bool = False  # False = unread

    def volatile_keys(self) -> frozenset[str] | None:
        """String elements of ``VOLATILE_DATA_KEYS`` in ``experiments/base.py``.

        ``None`` when the module or the assignment is absent (partial
        fixture trees) — rules needing it must then stay quiet rather
        than flag everything.
        """
        if self._volatile_keys is False:
            self._volatile_keys = self._read_volatile_keys()
        return self._volatile_keys  # type: ignore[return-value]

    def _read_volatile_keys(self) -> frozenset[str] | None:
        module = self.tree.get_rel("experiments/base.py")
        if module is None:
            return None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "VOLATILE_DATA_KEYS" not in targets:
                continue
            keys = {
                element.value
                for element in ast.walk(node.value)
                if isinstance(element, ast.Constant) and isinstance(element.value, str)
            }
            return frozenset(keys)
        return None


class Rule:
    """One mechanized invariant.

    ``check_module`` runs per module; ``finish`` runs once after every
    module was visited, for rules that aggregate cross-module facts
    (e.g. duplicate absorb prefixes).  Subclasses fill the class
    attributes — they feed ``repro lint --list-rules``, the README rule
    table drift guard, and finding rendering.
    """

    id: str = ""
    title: str = ""
    protects: str = ""  # the contract, one sentence
    hint: str = ""  # default fix hint attached to findings

    def check_module(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        return ()

    def finish(self, ctx: LintContext) -> Iterable[Finding]:
        return ()

    def finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        line = getattr(node, "lineno", 0)
        return Finding(
            rel=module.rel,
            line=line,
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            hint=self.hint if hint is None else hint,
            code=module.line_text(line),
        )


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, ``""`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def call_name(call: ast.Call) -> str:
    """Dotted name of a call's callee (``""`` for computed callees)."""
    return dotted_name(call.func)


def _is_constant_number(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and not isinstance(node.value, bool)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_constant_number(node.operand)
    return False


def is_constant_seed(node: ast.AST) -> bool:
    """True when a seed expression is fully hardcoded.

    A scalar literal is hardcoded; a list/tuple seed key is hardcoded
    only when *every* element is — ``[seed, 0, 1]`` derives from a name
    and passes, ``[0, 1]`` does not.
    """
    if _is_constant_number(node):
        return True
    if isinstance(node, (ast.List, ast.Tuple)):
        return bool(node.elts) and all(_is_constant_number(e) for e in node.elts)
    return False


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef, str | None]]:
    """Yield ``(qualname, function node, enclosing class name)`` for every
    function in a module, including methods and nested functions."""

    def walk(
        node: ast.AST, prefix: str, cls: str | None
    ) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef, str | None]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, child, cls
                yield from walk(child, f"{qual}.<locals>.", cls)
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.", child.name)

    yield from walk(tree, "", None)
