"""Concurrency-boundary rules.

Two contracts with no runtime guard today:

* payloads and contexts crossing an :class:`ExecutionBackend` boundary
  are pickled (fork) or must at least be treated as shippable — a
  closure capturing a socket, lock, open store handle, or live
  ``EvaluatorPool`` dies at pickle time on one backend and silently
  shares mutable state on another;
* the serve daemon's shared evaluator caches are single-threaded by
  routing every cache-mutating evaluation through the
  ``RequestBatcher`` drain thread — a handler that calls
  ``evaluate``/``evaluate_many`` directly reintroduces the race the
  batcher exists to prevent.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from ..loader import ModuleInfo
from .base import LintContext, Rule, call_name, iter_functions

__all__ = ["DrainThreadOwnershipRule", "FanoutPickleSafetyRule"]

# Constructors whose results must never ride a fan-out payload/context.
# Matched on the callee's last dotted segment, except `open` (exact).
_UNPICKLABLE_LAST = {
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "socket",
    "EvaluatorPool",
    "RequestBatcher",
    "WorkerPool",
    "ThreadPoolExecutor",
    "RunStore",
}

_FANOUT_ATTRS = {"fanout", "pool"}

_MUTATING_ATTRS = {"evaluate", "evaluate_many"}
_MUTATING_NAMES = {"coalesce_evaluate"}

# The two modules allowed to mutate evaluator caches in the serve
# package: the batcher's drain thread owns shared-pool evaluation, and
# sessions run the batch path (per-tenant pools serialized by the
# per-session lock).
_DRAIN_OWNERS = ("serve/batcher.py", "serve/session.py")


def _is_unpicklable_constructor(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    name = call_name(value)
    if name == "open":
        return True
    return name.rsplit(".", 1)[-1] in _UNPICKLABLE_LAST


def _free_names(fn: ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names a function loads but does not bind itself (approximate)."""
    args = fn.args
    bound = {
        a.arg
        for a in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]
    }
    loaded: set[str] = set()
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Load):
                    loaded.add(node.id)
                else:
                    bound.add(node.id)
            elif isinstance(node, ast.comprehension):
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
    return loaded - bound


class FanoutPickleSafetyRule(Rule):
    """Fan-out payloads must not capture known-unpicklable objects."""

    id = "fanout-pickle-safety"
    title = "unpicklable capture crosses a fan-out"
    protects = (
        "backend interchangeability: a task closure or broadcast context "
        "holding a socket/lock/open store/live pool pickles on fork and "
        "shard backends (crash) or aliases mutable state on thread/inline "
        "ones (race) — the same call site must work on every backend"
    )
    hint = (
        "pass plain data (paths, specs, seed keys) and reconstruct the "
        "resource inside the task; see _TrainGridContext/_EvalContext for "
        "the broadcast-context idiom"
    )

    def check_module(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        for qualname, function, _cls in iter_functions(module.tree):
            yield from self._check_scope(module, qualname, function)

    def _check_scope(
        self,
        module: ModuleInfo,
        qualname: str,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterable[Finding]:
        tainted: dict[str, str] = {}
        local_defs: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and _is_unpicklable_constructor(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tainted[target.id] = call_name(node.value)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not function:
                    local_defs[node.name] = node
            elif isinstance(node, ast.withitem):
                if _is_unpicklable_constructor(node.context_expr) and isinstance(
                    node.optional_vars, ast.Name
                ):
                    tainted[node.optional_vars.id] = call_name(node.context_expr)
        if not tainted:
            return
        for node in ast.walk(function):
            if not (
                isinstance(node, ast.Call)
                and (
                    (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr in _FANOUT_ATTRS
                    )
                    or (isinstance(node.func, ast.Name) and node.func.id == "fanout")
                )
            ):
                continue
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            for argument in arguments:
                if isinstance(argument, ast.Name) and argument.id in tainted:
                    yield self.finding(
                        module,
                        argument,
                        f"{argument.id} (a {tainted[argument.id]}) is shipped "
                        "across a fan-out boundary; it cannot pickle and must "
                        "not be shared between workers",
                    )
                    continue
                captured: set[str] = set()
                if isinstance(argument, ast.Lambda):
                    captured = _free_names(argument) & set(tainted)
                elif isinstance(argument, ast.Name) and argument.id in local_defs:
                    captured = _free_names(local_defs[argument.id]) & set(tainted)
                for name in sorted(captured):
                    yield self.finding(
                        module,
                        argument,
                        f"task function captures {name} (a {tainted[name]}) "
                        "across a fan-out boundary; reconstruct it inside the "
                        "task from plain data instead",
                    )


class DrainThreadOwnershipRule(Rule):
    """Only the batcher drain loop / batch path may mutate evaluator caches."""

    id = "drain-thread-ownership"
    title = "evaluator mutation outside the drain thread"
    protects = (
        "the serve daemon's lock-free shared evaluator caches: connection "
        "threads submit to the RequestBatcher and wait — if a server "
        "handler (or anything it reaches) evaluates directly, two threads "
        "mutate one LRU concurrently"
    )
    hint = (
        "route the scoring through self.batcher.submit/submit_many (the "
        "drain thread owns all cache-mutating evaluation), or move the "
        "logic into the session batch path"
    )

    def check_module(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not module.rel.startswith("serve/") or module.rel in _DRAIN_OWNERS:
            return
        graph, functions = self._call_graph(module)
        entries = [
            qual
            for qual, (_node, cls) in functions.items()
            if cls is not None
            and cls.endswith("Server")
            and (
                qual.endswith(("._dispatch", "._serve_request"))
                or qual.split(".")[-1].startswith("_handle")
            )
        ]
        reachable = self._reachable(graph, entries)
        for qual, (node, _cls) in functions.items():
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                name = call_name(call)
                last = name.rsplit(".", 1)[-1]
                mutating = (
                    isinstance(call.func, ast.Attribute) and call.func.attr in _MUTATING_ATTRS
                ) or last in _MUTATING_NAMES
                if not mutating:
                    continue
                if name.startswith("self.batcher."):
                    continue
                via = (
                    f" (reachable from request handler {self._entry_path(graph, entries, qual)})"
                    if qual in reachable
                    else ""
                )
                yield self.finding(
                    module,
                    call,
                    f"{qual} calls {name or last}() outside the batcher drain "
                    f"thread{via}; shared evaluator caches are single-threaded "
                    "by contract",
                )

    @staticmethod
    def _call_graph(
        module: ModuleInfo,
    ) -> tuple[dict[str, set[str]], dict[str, tuple[ast.AST, str | None]]]:
        """Intra-module call graph: ``self.m()`` and bare ``f()`` edges."""
        functions: dict[str, tuple[ast.AST, str | None]] = {}
        for qualname, node, cls in iter_functions(module.tree):
            functions[qualname] = (node, cls)
        graph: dict[str, set[str]] = {qual: set() for qual in functions}
        for qual, (node, cls) in functions.items():
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                name = call_name(call)
                if name.startswith("self.") and name.count(".") == 1 and cls:
                    callee = f"{cls}.{name.split('.')[1]}"
                    if callee in functions:
                        graph[qual].add(callee)
                elif name and "." not in name and name in functions:
                    graph[qual].add(name)
        return graph, functions

    @staticmethod
    def _reachable(graph: dict[str, set[str]], entries: list[str]) -> set[str]:
        seen: set[str] = set()
        stack = list(entries)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(graph.get(current, ()))
        return seen

    @staticmethod
    def _entry_path(
        graph: dict[str, set[str]], entries: list[str], target: str
    ) -> str:
        """Shortest entry -> target chain, rendered ``a -> b -> c``."""
        from collections import deque

        queue = deque([(entry, [entry]) for entry in sorted(entries)])
        seen: set[str] = set()
        while queue:
            current, path = queue.popleft()
            if current == target:
                return " -> ".join(path)
            if current in seen:
                continue
            seen.add(current)
            for callee in sorted(graph.get(current, ())):
                queue.append((callee, path + [callee]))
        return target
