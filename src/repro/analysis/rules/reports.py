"""Report-path rules: volatile-key coverage and canonical JSON.

Two contracts guard the byte-identical-merge guarantee
(`ExperimentReport.to_json` equal at any worker/shard count):

* every run-dependent field written into report data (wall-clock
  timings, cache-provenance counters) must be listed in
  ``VOLATILE_DATA_KEYS`` so ``stable_data()`` strips it — a timing key
  that drifts in breaks shard-merge equality one experiment at a time;
* every ``json.dumps`` on a protocol/report/store path must pass
  ``sort_keys=True`` — key order is dict-insertion order, so an
  unsorted dump makes "canonical" bytes depend on construction order.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from ..findings import Finding
from ..loader import ModuleInfo
from .base import LintContext, Rule, call_name

__all__ = ["CanonicalJsonRule", "VolatileKeyDriftRule"]

# Modules whose dict keys end up inside ExperimentReport.data: the
# experiment modules themselves plus the stats blocks they embed.
REPORT_DATA_SCOPES = (
    "experiments/",
    "core/gnn.py",
    "runtime/evaluator.py",
    "scenarios/report.py",
)

# A key that names wall-clock time or cache provenance is volatile by
# nature; everything else in a report must be a pure function of
# (experiment, seed, scale, code).
VOLATILE_KEY_PATTERN = re.compile(
    r".*(_seconds|_ms|_wall|_cache)$|^(elapsed|wall)(_.*)?$"
)

# Paths where serialized bytes are compared, fingerprinted, or spoken
# over the wire — the canonical-encoding surface.
CANONICAL_JSON_SCOPES = (
    "serve/protocol.py",
    "store/",
    "shard/",
    "telemetry/events.py",
    "experiments/base.py",
    "core/serialization.py",
)


class VolatileKeyDriftRule(Rule):
    """Timing/cache keys written into report data must be declared volatile."""

    id = "volatile-key-drift"
    title = "undeclared volatile report key"
    protects = (
        "byte-identical shard merges: stable_data() can only strip the "
        "run-dependent keys it knows about, so every timing/cache key in "
        "report data must appear in VOLATILE_DATA_KEYS"
    )
    hint = (
        "add the key to VOLATILE_DATA_KEYS in experiments/base.py (and "
        "re-run the shard equivalence suite), or rename it if it is "
        "actually deterministic"
    )

    def check_module(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not module.rel.startswith(REPORT_DATA_SCOPES):
            return
        declared = ctx.volatile_keys()
        if declared is None:
            return  # no contract definition in this tree: nothing to check against
        for node in ast.walk(module.tree):
            keys: list[tuple[ast.AST, str]] = []
            if isinstance(node, ast.Dict):
                keys = [
                    (key, key.value)
                    for key in node.keys
                    if isinstance(key, ast.Constant) and isinstance(key.value, str)
                ]
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        keys.append((target, target.slice.value))
            for anchor, key in keys:
                if VOLATILE_KEY_PATTERN.fullmatch(key) and key not in declared:
                    yield self.finding(
                        module,
                        anchor,
                        f"report-data key {key!r} looks run-dependent (timing/"
                        "cache pattern) but is not in VOLATILE_DATA_KEYS — "
                        "stable_data() would keep it and shard merges diverge",
                    )


class CanonicalJsonRule(Rule):
    """No non-sort_keys json.dumps on protocol/report/store paths."""

    id = "canonical-json"
    title = "non-canonical json.dumps"
    protects = (
        "byte-stable protocol frames, store addresses, and report JSON: "
        "unsorted dumps make bytes depend on dict construction order"
    )
    hint = "pass sort_keys=True (and fixed separators where bytes are compared)"

    def check_module(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not module.rel.startswith(CANONICAL_JSON_SCOPES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if not (name == "json.dumps" or name.endswith(".json.dumps") or name == "dumps"):
                continue
            sort_keys = next(
                (kw.value for kw in node.keywords if kw.arg == "sort_keys"), None
            )
            if sort_keys is None:
                yield self.finding(
                    module,
                    node,
                    "json.dumps without sort_keys=True on a canonical path: "
                    "output bytes depend on dict insertion order",
                )
            elif isinstance(sort_keys, ast.Constant) and sort_keys.value is not True:
                yield self.finding(
                    module,
                    node,
                    "json.dumps with sort_keys disabled on a canonical path",
                )
