"""RNG discipline rules.

The determinism contract (PRs 3-4): every stream of randomness derives
from an explicit identity — ``task_rng([seed, index])`` keys, per-cell
``default_rng([seed, stage, cell])`` seed lists, or a caller-provided
generator — never from a hardcoded constant or a shared advancing
generator stashed at module/instance scope.  Both failure modes broke
worker-count independence before they were hunted down by equivalence
suites; these rules catch them at diff time.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from ..loader import ModuleInfo
from .base import LintContext, Rule, call_name, is_constant_seed

__all__ = ["RngConstantSeedRule", "RngStoredAdvancingRule"]

# Entry-point modules where a user-facing `--seed` argument legitimately
# becomes the root generator.  Everything else must derive streams.
ENTRY_WHITELIST = ("cli.py", "__main__.py")

# Packages whose classes take part in fan-outs and replays: an instance
# field holding an advancing generator there is state that travels with
# pickled contexts and breaks run/worker independence.
STATEFUL_SCOPES = ("baselines/", "experiments/", "scenarios/")

_RNG_CONSTRUCTORS = ("default_rng", "task_rng")


def _seed_argument(call: ast.Call) -> ast.AST | None:
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "seed":
            return keyword.value
    return None


class RngConstantSeedRule(Rule):
    """No hardcoded or missing seeds outside the CLI/entry whitelist."""

    id = "rng-constant-seed"
    title = "hardcoded default_rng seed"
    protects = (
        "worker-count and run independence: streams derive from task_rng/"
        "seed-list keys, not constants baked into library code"
    )
    hint = (
        "derive the stream from the caller's seed or a seed-list key "
        "(default_rng([seed, stage, cell]) / task_rng), or thread a seed "
        "parameter through from the entry point"
    )

    def check_module(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if module.rel in ENTRY_WHITELIST:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            last = name.rsplit(".", 1)[-1]
            if name in ("np.random.seed", "numpy.random.seed"):
                yield self.finding(
                    module,
                    node,
                    "np.random.seed mutates the process-global legacy rng; "
                    "use an explicit Generator stream",
                )
                continue
            if last == "RandomState":
                yield self.finding(
                    module,
                    node,
                    "legacy np.random.RandomState has no seed-list derivation; "
                    "use np.random.default_rng with a derived key",
                )
                continue
            if last not in _RNG_CONSTRUCTORS:
                continue
            seed = _seed_argument(node)
            if seed is None:
                yield self.finding(
                    module,
                    node,
                    f"unseeded {last}() is nondeterministic: every run draws a "
                    "different stream",
                )
            elif is_constant_seed(seed):
                yield self.finding(
                    module,
                    node,
                    f"hardcoded seed in {last}({ast.unparse(seed)}): library code "
                    "must derive streams from the caller's seed, not constants",
                )


class RngStoredAdvancingRule(Rule):
    """No module-level or instance-stored advancing generators in
    baselines/, experiments/, scenarios/."""

    id = "rng-stored-advancing"
    title = "stored advancing rng"
    protects = (
        "comparability of fanned-out cells: a generator stored at module or "
        "instance scope advances with call order, so results depend on which "
        "other work ran first (the exact bug class of PR 4's agent fixes)"
    )
    hint = (
        "pass the stream in per call (policy.search(..., rng=...)) or derive "
        "a fresh default_rng([...]) from the task's identity at the use site"
    )

    def check_module(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not module.rel.startswith(STATEFUL_SCOPES):
            return
        # Module-level: X = default_rng(...) at top level of the module.
        for node in module.tree.body:
            value = getattr(node, "value", None)
            if (
                isinstance(node, (ast.Assign, ast.AnnAssign))
                and isinstance(value, ast.Call)
                and call_name(value).rsplit(".", 1)[-1] in _RNG_CONSTRUCTORS
            ):
                yield self.finding(
                    module,
                    node,
                    "module-level rng advances across every caller in import "
                    "order — results change with what else ran",
                )
        # Instance-level: self.<attr> = <rng expression> anywhere in a class.
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                if self._is_rng_expression(node.value):
                    yield self.finding(
                        module,
                        target,
                        f"self.{target.attr} stores an advancing rng on the "
                        "instance; its draws depend on call history, not on "
                        "the task's identity",
                    )

    @staticmethod
    def _is_rng_expression(value: ast.AST) -> bool:
        if isinstance(value, ast.Call):
            return call_name(value).rsplit(".", 1)[-1] in _RNG_CONSTRUCTORS
        if isinstance(value, ast.Name):
            return value.id == "rng" or value.id.endswith("_rng")
        return False
