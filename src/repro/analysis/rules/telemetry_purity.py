"""Telemetry purity rules.

PR 7's contract: telemetry is observational only — report bytes are
identical with ``REPRO_TELEMETRY=off``.  Two mechanized consequences:

* the ``telemetry/`` package must stay a leaf (it may not import
  report-bearing modules) and must never write through to report state;
* instance-scoped stats may be absorbed into the metrics registry at
  exactly one merge point per prefix — absorbing on both sides of a
  merge (parent and child, or inside a fanned-out task *and* at its
  merge) double-counts, the bug class ``Metrics.absorb``'s docstring
  warns about in prose.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from ..loader import ModuleInfo
from .base import LintContext, Rule, call_name, dotted_name, iter_functions

__all__ = ["StatsDoubleAbsorbRule", "TelemetryPurityRule"]

_REPORT_MARKERS = ("report", "data")


def _target_touches_report_state(target: ast.AST) -> bool:
    """True when an assignment target writes into report-bearing state:
    an attribute/subscript chain passing through ``report``/``.data``."""
    node = target
    while isinstance(node, ast.Subscript):
        node = node.value
    chain = dotted_name(node)
    if not chain:
        return False
    parts = chain.split(".")
    # `data[...] = ...` on a bare local name is fine; `x.data[...] = ...`
    # and `report.anything = ...` are report-state writes.
    if len(parts) >= 2 and parts[-1] in _REPORT_MARKERS:
        return True
    return parts[0] == "report" and len(parts) >= 2


class TelemetryPurityRule(Rule):
    """telemetry/ is a leaf package and span bodies don't mutate reports."""

    id = "telemetry-purity"
    title = "telemetry must stay observational"
    protects = (
        "the report-bytes-identical-with-telemetry-off guarantee: the "
        "telemetry package cannot reach report-bearing modules, and "
        "instrumented regions cannot write report state as a side effect "
        "of being traced"
    )
    hint = (
        "move the mutation out of the telemetry package / span body; "
        "telemetry may observe state, never own or edit it"
    )

    def check_module(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if module.rel.startswith("telemetry/"):
            yield from self._check_telemetry_module(module, ctx)
        else:
            yield from self._check_span_bodies(module)

    def _check_telemetry_module(
        self, module: ModuleInfo, ctx: LintContext
    ) -> Iterable[Finding]:
        package = ctx.tree.package
        telemetry_pkg = f"{package}.telemetry"
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for imported in self._imported_names(module, node, package):
                    if imported.startswith(package) and not (
                        imported == telemetry_pkg
                        or imported.startswith(telemetry_pkg + ".")
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"telemetry imports {imported}: the telemetry package "
                            "must stay a leaf so instrumentation can never feed "
                            "back into reports",
                        )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if _target_touches_report_state(target):
                        yield self.finding(
                            module,
                            target,
                            "telemetry writes report-bearing state "
                            f"({ast.unparse(target)}); collectors observe, "
                            "they never mutate",
                        )

    @staticmethod
    def _imported_names(
        module: ModuleInfo, node: ast.Import | ast.ImportFrom, package: str
    ) -> list[str]:
        if isinstance(node, ast.Import):
            return [alias.name for alias in node.names]
        if node.level == 0:
            return [node.module or ""]
        parts = module.package.split(".")
        anchor = parts[: len(parts) - (node.level - 1)]
        if not anchor:
            return []
        base = ".".join(anchor + ([node.module] if node.module else []))
        return [base]

    def _check_span_bodies(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.With):
                continue
            if not any(
                isinstance(item.context_expr, ast.Call)
                and call_name(item.context_expr).rsplit(".", 1)[-1] == "span"
                for item in node.items
            ):
                continue
            for statement in node.body:
                for child in ast.walk(statement):
                    if isinstance(child, (ast.Assign, ast.AugAssign)):
                        targets = (
                            child.targets
                            if isinstance(child, ast.Assign)
                            else [child.target]
                        )
                        for target in targets:
                            if _target_touches_report_state(target):
                                yield self.finding(
                                    module,
                                    target,
                                    "report-bearing state mutated inside a "
                                    f"span body ({ast.unparse(target)}): spans "
                                    "must be removable without changing reports",
                                )


class StatsDoubleAbsorbRule(Rule):
    """Each stats prefix is absorbed at exactly one merge point."""

    id = "stats-double-absorb"
    title = "symmetric stats absorption"
    protects = (
        "metric integrity across merges: a prefix absorbed at several "
        "sites, or inside a fanned-out task whose deltas already ship "
        "home, counts the same work twice"
    )
    hint = (
        "absorb instance-scoped stats once, parent-side, at the merge "
        "point; worker-side activity reaches the registry via task deltas"
    )

    def __init__(self) -> None:
        # prefix literal -> [(module, function qualname, call node)]
        self._absorbs: dict[str, list[tuple[ModuleInfo, str, ast.Call]]] = {}

    def check_module(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        fanout_fns = self._fanout_task_functions(module)
        for qualname, function, _cls in iter_functions(module.tree):
            for node in ast.walk(function):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "absorb"
                    and node.args
                ):
                    continue
                prefix_node = node.args[0]
                prefix = (
                    prefix_node.value
                    if isinstance(prefix_node, ast.Constant)
                    and isinstance(prefix_node.value, str)
                    else None
                )
                if prefix is not None:
                    self._absorbs.setdefault(prefix, []).append(
                        (module, qualname, node)
                    )
                base_name = qualname.split(".", 1)[0]
                if base_name in fanout_fns:
                    yield self.finding(
                        module,
                        node,
                        f"{qualname} absorbs stats but is fanned out as a task "
                        "function; its metrics delta already ships home with "
                        "the task result, so the merge double-counts",
                    )

    @staticmethod
    def _fanout_task_functions(module: ModuleInfo) -> set[str]:
        """Names passed as the task function of a ``.fanout(...)`` call."""
        names: set[str] = set()
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "fanout"
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                names.add(node.args[0].id)
        return names

    def finish(self, ctx: LintContext) -> Iterable[Finding]:
        for prefix, sites in sorted(self._absorbs.items()):
            if len(sites) <= 1:
                continue
            locations = ", ".join(
                f"{m.rel}:{node.lineno} ({qual})" for m, qual, node in sites
            )
            for module, qualname, node in sites:
                yield self.finding(
                    module,
                    node,
                    f"stats prefix {prefix!r} is absorbed at {len(sites)} sites "
                    f"({locations}); a merged run folds it more than once",
                )
        self._absorbs.clear()
