"""Inline suppressions: ``# repro: lint-ok[rule-id]``.

A suppression comment waives findings of the named rule(s) on its own
line, or — when the comment stands alone — on the next line that holds
code.  ``# repro: lint-ok`` with no bracket waives every rule (reserve
it for generated code); ``lint-ok[a, b]`` lists several rule ids.
Suppressions are for code with a *local* reason that belongs next to
it; pre-existing findings without one go in the baseline file instead.
"""

from __future__ import annotations

import re

from .loader import ModuleInfo

__all__ = ["Suppressions", "collect_suppressions"]

_PATTERN = re.compile(r"#\s*repro:\s*lint-ok(?:\[([^\]]*)\])?")
_ALL = "*"


class Suppressions:
    """Per-module map of line -> waived rule ids."""

    def __init__(self, by_line: dict[int, set[str]]):
        self._by_line = by_line

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        waived = self._by_line.get(line)
        return waived is not None and (rule_id in waived or _ALL in waived)

    def __bool__(self) -> bool:
        return bool(self._by_line)


def collect_suppressions(module: ModuleInfo) -> Suppressions:
    """Scan a module's source for suppression comments.

    Works on raw lines rather than the AST so comments survive exactly
    where the author put them.  A comment-only line forwards its waiver
    to the next non-blank, non-comment line (the statement it guards).
    """
    by_line: dict[int, set[str]] = {}
    pending: set[str] | None = None
    for lineno, text in enumerate(module.lines, start=1):
        stripped = text.strip()
        match = _PATTERN.search(text)
        if match:
            ids = (
                {part.strip() for part in match.group(1).split(",") if part.strip()}
                if match.group(1) is not None
                else {_ALL}
            )
            if stripped.startswith("#"):
                pending = (pending or set()) | ids
            else:
                by_line.setdefault(lineno, set()).update(ids)
            continue
        if pending is not None and stripped and not stripped.startswith("#"):
            by_line.setdefault(lineno, set()).update(pending)
            pending = None
    return Suppressions(by_line)
