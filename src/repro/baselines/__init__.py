"""Baseline placement algorithms evaluated against GiPH (paper §5)."""

from .base import AdaptivePolicy, SearchPolicy, trace_from_values
from .eft import eft_device, eft_estimates
from .giph_policy import GiPHSearchPolicy
from .heft import HeftSchedule, heft_placement, upward_ranks
from .placeto import PlacetoAgent, PlacetoTrainer, placeto_node_features
from .random_policies import RandomPlacementPolicy, RandomTaskEftPolicy
from .rnn_placer import RnnPlacer, RnnPlacerPolicy, RnnPlacerResult, operator_embeddings
from .task_eft import TaskEftAgent, TaskEftTrainer, build_task_view

__all__ = [
    "SearchPolicy",
    "AdaptivePolicy",
    "trace_from_values",
    "eft_device",
    "eft_estimates",
    "GiPHSearchPolicy",
    "HeftSchedule",
    "heft_placement",
    "upward_ranks",
    "PlacetoAgent",
    "PlacetoTrainer",
    "placeto_node_features",
    "RandomPlacementPolicy",
    "RandomTaskEftPolicy",
    "RnnPlacer",
    "RnnPlacerPolicy",
    "RnnPlacerResult",
    "operator_embeddings",
    "TaskEftAgent",
    "TaskEftTrainer",
    "build_task_view",
]
