"""Common interface for the search-based placement policies of §5.

Every policy (GiPH, Placeto, random variants, the EFT hybrids) exposes
``search(...) -> SearchTrace`` so the experiment harness can sweep them
uniformly and plot best-so-far curves against search steps.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from ..core.placement import PlacementProblem
from ..core.search import SearchTrace
from ..sim.objectives import Objective

__all__ = ["SearchPolicy", "trace_from_values"]


class SearchPolicy(Protocol):
    """A placement-search policy evaluated step by step."""

    name: str

    def search(
        self,
        problem: PlacementProblem,
        objective: Objective,
        initial_placement: Sequence[int],
        episode_length: int,
        rng: np.random.Generator,
    ) -> SearchTrace:
        ...


def trace_from_values(
    placements: Sequence[tuple[int, ...]],
    values: Sequence[float],
    num_tasks: int,
    relocation_counts: Sequence[int] | None = None,
) -> SearchTrace:
    """Assemble a :class:`SearchTrace` from a placement/value series."""
    if len(placements) != len(values) or not values:
        raise ValueError("placements and values must be equal-length and non-empty")
    best_over_time: list[float] = []
    best_value = float("inf")
    best_placement = placements[0]
    for placement, value in zip(placements, values):
        if value < best_value:
            best_value = value
            best_placement = placement
        best_over_time.append(best_value)
    return SearchTrace(
        best_placement=tuple(best_placement),
        best_value=best_value,
        best_over_time=tuple(best_over_time),
        values=tuple(values),
        relocation_counts=tuple(relocation_counts or [0] * num_tasks),
    )
