"""Common interface for the search-based placement policies of §5.

Every policy (GiPH, Placeto, random variants, the EFT hybrids) exposes
``search(...) -> SearchTrace`` so the experiment harness can sweep them
uniformly and plot best-so-far curves against search steps.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from ..core.placement import PlacementProblem
from ..core.search import SearchTrace
from ..runtime.evaluator import PlacementEvaluator
from ..sim.objectives import Objective

__all__ = ["SearchPolicy", "AdaptivePolicy", "make_evaluator", "trace_from_values"]


class SearchPolicy(Protocol):
    """A placement-search policy evaluated step by step.

    ``evaluator`` optionally supplies the shared scoring path for the
    (problem, objective) pair — the experiment harness passes one per
    case so it can batch evaluations and report cache statistics; a
    policy creates its own when none is given.

    ``adapt`` is the streaming hook the scenario engine calls before
    re-placement with each :class:`repro.scenarios.ScenarioEvent`;
    stateless policies inherit the no-op from :class:`AdaptivePolicy`.
    """

    name: str

    def search(
        self,
        problem: PlacementProblem,
        objective: Objective,
        initial_placement: Sequence[int],
        episode_length: int,
        rng: np.random.Generator,
        evaluator: PlacementEvaluator | None = None,
    ) -> SearchTrace:
        ...

    def adapt(self, event: object) -> None:
        ...


class AdaptivePolicy:
    """Default streaming-adaptation behavior for search policies.

    The scenario engine (:mod:`repro.scenarios`) announces every cluster
    or workload change through ``adapt(event)`` before asking the policy
    to re-place.  Policies that keep per-cluster state (retrainable
    placers, device statistics) override this; search-only policies
    inherit the no-op.
    """

    def adapt(self, event: object) -> None:
        return None


def make_evaluator(
    problem: PlacementProblem,
    objective: Objective,
    evaluator: PlacementEvaluator | None,
) -> PlacementEvaluator:
    """Validate a caller-supplied evaluator or create a private one."""
    if evaluator is None:
        return PlacementEvaluator(problem, objective)
    if evaluator.problem is not problem or evaluator.objective is not objective:
        raise ValueError("evaluator must be bound to the search's problem and objective")
    return evaluator


def trace_from_values(
    placements: Sequence[tuple[int, ...]],
    values: Sequence[float],
    num_tasks: int,
    relocation_counts: Sequence[int] | None = None,
) -> SearchTrace:
    """Assemble a :class:`SearchTrace` from a placement/value series."""
    if len(placements) != len(values) or not values:
        raise ValueError("placements and values must be equal-length and non-empty")
    best_over_time: list[float] = []
    best_value = float("inf")
    best_placement = placements[0]
    for placement, value in zip(placements, values):
        if value < best_value:
            best_value = value
            best_placement = placement
        best_over_time.append(best_value)
    return SearchTrace(
        best_placement=tuple(best_placement),
        best_value=best_value,
        best_over_time=tuple(best_over_time),
        values=tuple(values),
        relocation_counts=tuple(relocation_counts or [0] * num_tasks),
    )
