"""EFT device selection for search-based baselines (paper §5).

Given the current placement's timeline, estimate each candidate device's
earliest finish time for one task and pick the minimizer.  This is
HEFT's device-selection rule adapted to incremental search: the estimate
reuses the simulated timeline of the *current* placement rather than
re-simulating every candidate.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.placement import PlacementProblem
from ..sim.executor import SimResult, simulate

__all__ = ["eft_estimates", "eft_device"]


def eft_estimates(
    problem: PlacementProblem,
    placement: Sequence[int],
    task: int,
    timeline: SimResult | None = None,
) -> dict[int, float]:
    """Estimated finish time of ``task`` on each feasible device.

    EFT(i, d) = max(data-ready(i, d), device-ready(d)) + w_{i,d}, with
    data-ready from the parents' current finish times and device-ready
    from the device's last finish in the current timeline (its own
    current device is credited with the task's own slot).
    """
    graph, cm = problem.graph, problem.cost_model
    placement = list(placement)
    if timeline is None:
        timeline = simulate(graph, problem.network, placement, cm)

    estimates: dict[int, float] = {}
    for d in problem.feasible_sets[task]:
        ready = 0.0
        for p in graph.parents[task]:
            ready = max(ready, timeline.finish[p] + cm.comm_time((p, task), placement[p], d))
        device_ready = float(timeline.device_last_finish[d])
        if d == placement[task]:
            # The task itself is the device's load; don't double count it.
            device_ready = min(device_ready, float(timeline.start[task]))
        estimates[d] = max(ready, device_ready) + cm.compute_time(task, d)
    return estimates


def eft_device(
    problem: PlacementProblem,
    placement: Sequence[int],
    task: int,
    timeline: SimResult | None = None,
) -> int:
    """The feasible device with the minimum estimated finish time."""
    estimates = eft_estimates(problem, placement, task, timeline)
    return min(estimates, key=lambda d: (estimates[d], d))
