"""Adapter presenting a trained GiPH agent through the SearchPolicy protocol."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.agent import GiPHAgent
from ..core.features import FeatureConfig
from ..core.placement import PlacementProblem
from ..core.search import SearchTrace, run_search
from ..runtime.evaluator import PlacementEvaluator
from ..sim.objectives import Objective
from .base import AdaptivePolicy

__all__ = ["GiPHSearchPolicy"]


class GiPHSearchPolicy(AdaptivePolicy):
    """Wraps a (trained) :class:`GiPHAgent` for the experiment harness."""

    def __init__(
        self,
        agent: GiPHAgent,
        name: str = "giph",
        greedy: bool = False,
        feature_config: FeatureConfig | None = None,
    ) -> None:
        self.agent = agent
        self.name = name
        self.greedy = greedy
        self.feature_config = feature_config

    def search(
        self,
        problem: PlacementProblem,
        objective: Objective,
        initial_placement: Sequence[int],
        episode_length: int,
        rng: np.random.Generator,
        evaluator: PlacementEvaluator | None = None,
    ) -> SearchTrace:
        # The agent samples with its own rng; reseed it from the caller's
        # stream so evaluation sweeps are reproducible end to end.
        self.agent.rng = rng
        return run_search(
            self.agent,
            problem,
            objective,
            initial_placement,
            episode_length=episode_length,
            greedy=self.greedy,
            feature_config=self.feature_config,
            evaluator=evaluator,
        )
