"""HEFT: Heterogeneous Earliest Finish Time (Topcuoglu et al., 2002).

The paper's state-of-the-art heuristic benchmark (§5).  Tasks are
prioritized by *upward rank* (mean compute + mean communication along the
critical path to the exit) and assigned, in rank order, to the feasible
device minimizing earliest finish time under an insertion-based policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.placement import PlacementProblem

__all__ = ["HeftSchedule", "heft_placement", "upward_ranks"]


@dataclass(frozen=True)
class HeftSchedule:
    """HEFT's own schedule estimate alongside the placement it chose."""

    placement: tuple[int, ...]
    start: np.ndarray
    finish: np.ndarray
    makespan: float
    priority_order: tuple[int, ...]


def upward_ranks(problem: PlacementProblem) -> np.ndarray:
    """rank_u(i) = w̄_i + max_{j ∈ children(i)} (c̄_ij + rank_u(j))."""
    graph, cm = problem.graph, problem.cost_model
    rank = np.zeros(graph.num_tasks)
    for i in reversed(graph.topo_order):
        best_child = 0.0
        for j in graph.children[i]:
            best_child = max(best_child, cm.mean_comm_time((i, j)) + rank[j])
        rank[i] = cm.mean_compute_time(i) + best_child
    return rank


def _earliest_slot(
    busy: list[tuple[float, float]], ready: float, duration: float
) -> float:
    """Earliest start >= ready on a device with ``busy`` intervals
    (insertion-based policy: idle gaps may be used)."""
    if not busy:
        return ready
    # Gap before the first interval.
    if ready + duration <= busy[0][0]:
        return ready
    for (s1, e1), (s2, _) in zip(busy, busy[1:]):
        candidate = max(ready, e1)
        if candidate + duration <= s2:
            return candidate
    return max(ready, busy[-1][1])


def heft_placement(problem: PlacementProblem) -> HeftSchedule:
    """Run HEFT; returns the placement and HEFT's internal schedule.

    The returned placement is evaluated with the runtime simulator for
    comparability with search policies (HEFT's insertion-based schedule
    estimate differs slightly from the FIFO execution model, which is why
    the simulated makespan can deviate from ``HeftSchedule.makespan``).
    """
    graph, cm = problem.graph, problem.cost_model
    order = tuple(int(i) for i in np.argsort(-upward_ranks(problem), kind="stable"))

    placement = [-1] * graph.num_tasks
    start = np.zeros(graph.num_tasks)
    finish = np.zeros(graph.num_tasks)
    busy: list[list[tuple[float, float]]] = [[] for _ in range(problem.network.num_devices)]

    for i in order:
        best = None  # (eft, est, device)
        for d in problem.feasible_sets[i]:
            ready = 0.0
            for p in graph.parents[i]:
                if placement[p] < 0:
                    # Unscheduled parent (possible: rank ordering is not
                    # always a topological order when comm costs dominate);
                    # fall back to its mean-cost bound.
                    ready = max(ready, cm.mean_compute_time(p) + cm.mean_comm_time((p, i)))
                else:
                    ready = max(ready, finish[p] + cm.comm_time((p, i), placement[p], d))
            w = cm.compute_time(i, d)
            est = _earliest_slot(busy[d], ready, w)
            eft = est + w
            if best is None or eft < best[0]:
                best = (eft, est, d)
        eft, est, d = best
        placement[i] = d
        start[i], finish[i] = est, eft
        busy[d].append((est, eft))
        busy[d].sort()

    return HeftSchedule(
        placement=tuple(placement),
        start=start,
        finish=finish,
        makespan=float(finish.max()),
        priority_order=order,
    )
