"""Placeto baseline (Addanki et al., 2019), as characterized in the paper.

Placeto also performs incremental placement improvement, but differs
from GiPH in exactly the ways the paper isolates:

* it traverses each node **once**, in a fixed order, so it cannot revisit
  earlier decisions within an episode;
* its graph embedding covers the **task graph only** — device-network
  features are absent, which is why it degrades under noise and across
  device networks (Figs. 4-6);
* its policy head outputs a fixed-size distribution over devices, tying
  the trained network to a specific device count.

Architecture follows Table 4/5's Placeto row: 5 raw node features,
8 message-passing steps, node summary of dimension 5·2·4 = 40 (per-node
forward/backward embeddings, parent-aggregated, child-aggregated and
graph-pooled views), policy MLP 40 -> 32 -> num_devices.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..core.placement import PlacementProblem
from ..core.reinforce import average_reward_baseline, discounted_returns
from ..core.search import SearchTrace
from ..nn import MLP, Adam, Linear, Module, Parameter, Tensor, concat, no_grad
from ..nn import functional as F
from ..runtime.evaluator import EvaluatorPool, PlacementEvaluator
from ..sim.objectives import Objective
from .base import AdaptivePolicy, make_evaluator, trace_from_values

__all__ = ["PlacetoAgent", "PlacetoTrainer", "placeto_node_features"]


def placeto_node_features(
    problem: PlacementProblem,
    placement: Sequence[int],
    current_node: int,
    placed: np.ndarray,
) -> np.ndarray:
    """Placeto's 5 per-operator features (paper §B.7).

    (1) average compute time, (2) average output data bytes, (3) current
    placement (normalized device index), (4) is-current indicator,
    (5) already-placed-this-episode indicator.  Note the absence of any
    device-network capability feature — Placeto's crucial limitation.
    """
    graph = problem.graph
    cm = problem.cost_model
    m = problem.network.num_devices
    rows = []
    for i in range(graph.num_tasks):
        rows.append(
            [
                cm.mean_compute_time(i),
                graph.data_out(i),
                placement[i] / max(m - 1, 1),
                1.0 if i == current_node else 0.0,
                1.0 if placed[i] else 0.0,
            ]
        )
    feats = np.array(rows)
    scale = np.abs(feats).mean(axis=0)
    return feats / np.where(scale > 1e-12, scale, 1.0)


class _PlacetoEmbedding(Module):
    """k-step two-way message passing over the task graph (no edge feats)."""

    def __init__(self, rng: np.random.Generator, node_dim: int = 5, embed_dim: int = 5, steps: int = 8) -> None:
        self.pre = MLP([node_dim, node_dim, embed_dim], rng)
        self.fwd_msg = Linear(embed_dim, embed_dim, rng)
        self.fwd_agg = Linear(embed_dim, embed_dim, rng)
        self.bwd_msg = Linear(embed_dim, embed_dim, rng)
        self.bwd_agg = Linear(embed_dim, embed_dim, rng)
        self.steps = steps
        self.embed_dim = embed_dim
        self.out_dim = embed_dim * 2 * 4

    def _propagate(self, e0, src, dst, msg_layer, agg_layer, n):
        e = e0
        for _ in range(self.steps):
            if len(src) == 0:
                agg = Tensor(np.zeros((n, self.embed_dim)))
            else:
                msg = msg_layer(e[src]).relu()
                agg = F.segment_mean(msg, dst, n)
            e = agg_layer(agg).relu() + e0
        return e

    def forward(self, problem: PlacementProblem, features: np.ndarray) -> Tensor:
        """Node summaries of dim embed·2·4: per-node forward/backward
        embeddings plus parent-aggregated and child-aggregated views
        (zeros where a node has no parents/children), mirroring Placeto's
        grouped summaries."""
        graph = problem.graph
        n = graph.num_tasks
        src = np.array([u for (u, _) in graph.edges], dtype=np.int64)
        dst = np.array([v for (_, v) in graph.edges], dtype=np.int64)
        e0 = self.pre(Tensor(features))
        e_fwd = self._propagate(e0, src, dst, self.fwd_msg, self.fwd_agg, n)
        e_bwd = self._propagate(e0, dst, src, self.bwd_msg, self.bwd_agg, n)
        node = concat([e_fwd, e_bwd], axis=1)
        if len(src) == 0:
            parents = Tensor(np.zeros((n, 2 * self.embed_dim)))
            children = Tensor(np.zeros((n, 2 * self.embed_dim)))
        else:
            parents = F.segment_mean(node[src], dst, n)
            children = F.segment_mean(node[dst], src, n)
        pooled = node.mean(axis=0, keepdims=True) + Tensor(np.zeros((n, 2 * self.embed_dim)))
        return concat([node, parents, children, pooled], axis=1)


class PlacetoAgent(AdaptivePolicy):
    """Placeto: single-visit node traversal with a per-device softmax head.

    ``num_devices`` is baked into the policy head — the architectural
    reason Placeto cannot transfer across clusters of different sizes.
    """

    name = "placeto"

    def __init__(self, rng: np.random.Generator, num_devices: int) -> None:
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        self.num_devices = num_devices
        self.embedding = _PlacetoEmbedding(rng)
        self.head = MLP([self.embedding.out_dim, 32, num_devices], rng)
        self.rng = rng

    def parameters(self) -> Iterator[Parameter]:
        yield from self.embedding.parameters()
        yield from self.head.parameters()

    def device_log_probs(
        self,
        problem: PlacementProblem,
        placement: Sequence[int],
        node: int,
        placed: np.ndarray,
    ) -> Tensor:
        """Masked device distribution for ``node``.

        Networks *smaller* than the head are handled by masking the
        surplus outputs (devices can leave the cluster mid-deployment,
        Fig. 6); larger networks cannot be represented at all — the
        fixed-size head is Placeto's structural limitation.
        """
        if problem.network.num_devices > self.num_devices:
            raise ValueError(
                f"Placeto head built for {self.num_devices} devices; "
                f"network has {problem.network.num_devices} — retraining required"
            )
        feats = placeto_node_features(problem, placement, node, placed)
        embeddings = self.embedding(problem, feats)
        logits = self.head(embeddings[node])
        mask = np.zeros(self.num_devices, dtype=bool)
        mask[list(problem.feasible_sets[node])] = True
        return F.masked_log_softmax(logits, mask)

    def choose_device(
        self,
        problem: PlacementProblem,
        placement: Sequence[int],
        node: int,
        placed: np.ndarray,
        greedy: bool = False,
    ) -> tuple[int, Tensor]:
        log_probs = self.device_log_probs(problem, placement, node, placed)
        probs = np.exp(log_probs.data)
        probs /= probs.sum()
        if greedy:
            device = int(np.argmax(probs))
        else:
            device = int(self.rng.choice(self.num_devices, p=probs))
        return device, log_probs[device]

    # -- evaluation -------------------------------------------------------------

    def search(
        self,
        problem: PlacementProblem,
        objective: Objective,
        initial_placement: Sequence[int],
        episode_length: int,
        rng: np.random.Generator,
        evaluator: PlacementEvaluator | None = None,
    ) -> SearchTrace:
        """Traverse nodes once per |V| steps; restart a fresh traversal
        when the budget allows (paper §5: "we start a new search episode
        for Placeto after |V| steps")."""
        # Per-case stream discipline (see TaskEftAgent.search): device
        # sampling must draw from the caller's rng, not a generator whose
        # state depends on previously searched cases.
        # repro: lint-ok[rng-stored-advancing]  (rebinds to the per-case stream)
        self.rng = rng
        evaluator = make_evaluator(problem, objective, evaluator)
        placement = list(problem.validate_placement(initial_placement))
        placements = [tuple(placement)]
        values = [evaluator.evaluate(placement)]
        relocations = np.zeros(problem.graph.num_tasks, dtype=int)
        n = problem.graph.num_tasks
        traversal = list(problem.graph.topo_order)
        placed = np.zeros(n, dtype=bool)
        position = 0
        for _ in range(episode_length):
            if position == len(traversal):  # new episode
                position = 0
                placed = np.zeros(n, dtype=bool)
            node = traversal[position]
            with no_grad():
                device, _ = self.choose_device(problem, placement, node, placed)
            if device != placement[node]:
                relocations[node] += 1
            placement[node] = device
            placed[node] = True
            position += 1
            placements.append(tuple(placement))
            values.append(evaluator.evaluate(placement))
        return trace_from_values(placements, values, n, relocations.tolist())


class PlacetoTrainer:
    """REINFORCE over Placeto's traversal episodes."""

    def __init__(
        self,
        agent: PlacetoAgent,
        objective: Objective,
        learning_rate: float = 0.01,
        gamma: float = 0.97,
        grad_clip: float = 10.0,
    ) -> None:
        self.agent = agent
        self.objective = objective
        self.gamma = gamma
        self.grad_clip = grad_clip
        self.optimizer = Adam(list(agent.parameters()), lr=learning_rate)
        self._evaluators = EvaluatorPool(objective)

    def run_episode(self, problem: PlacementProblem, rng: np.random.Generator) -> float:
        from ..core.placement import random_placement

        evaluator = self._evaluators.get(problem)
        placement = list(random_placement(problem, rng))
        value = evaluator.evaluate(placement)
        placed = np.zeros(problem.graph.num_tasks, dtype=bool)
        log_probs: list[Tensor] = []
        rewards: list[float] = []
        for node in problem.graph.topo_order:
            device, log_prob = self.agent.choose_device(problem, placement, node, placed)
            placement[node] = device
            placed[node] = True
            new_value = evaluator.evaluate(placement)
            rewards.append(value - new_value)
            log_probs.append(log_prob)
            value = new_value

        returns = discounted_returns(rewards, self.gamma)
        baseline = average_reward_baseline(rewards)
        discount = self.gamma ** np.arange(len(rewards))
        advantages = discount * (returns - baseline)
        loss = sum(lp * float(-adv) for lp, adv in zip(log_probs, advantages))
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.clip_grad_norm(self.grad_clip)
        self.optimizer.step()
        return float(sum(rewards))

    def train(
        self,
        problems: Sequence[PlacementProblem],
        rng: np.random.Generator,
        episodes: int,
    ) -> list[float]:
        if not problems:
            raise ValueError("training needs at least one problem")
        return [
            self.run_episode(problems[int(rng.integers(0, len(problems)))], rng)
            for _ in range(episodes)
        ]
