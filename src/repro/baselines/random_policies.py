"""Random baselines: placement sampling and random-task + EFT (paper §5)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.placement import PlacementProblem, random_placement
from ..core.search import SearchTrace
from ..sim.objectives import Objective
from .base import trace_from_values
from .eft import eft_device

__all__ = ["RandomPlacementPolicy", "RandomTaskEftPolicy"]


class RandomPlacementPolicy:
    """Random placement sampling: a fresh uniform feasible placement per
    step — "representative of the average placement quality"."""

    name = "random"

    def search(
        self,
        problem: PlacementProblem,
        objective: Objective,
        initial_placement: Sequence[int],
        episode_length: int,
        rng: np.random.Generator,
    ) -> SearchTrace:
        placements = [problem.validate_placement(initial_placement)]
        values = [objective.evaluate(problem.cost_model, placements[0])]
        for _ in range(episode_length):
            placement = random_placement(problem, rng)
            placements.append(placement)
            values.append(objective.evaluate(problem.cost_model, placement))
        return trace_from_values(placements, values, problem.graph.num_tasks)


class RandomTaskEftPolicy:
    """Random task selection + EFT device selection: HEFT adapted into a
    search policy — pick a uniformly random task each step and relocate
    it to its earliest-finish-time device."""

    name = "random-task-eft"

    def search(
        self,
        problem: PlacementProblem,
        objective: Objective,
        initial_placement: Sequence[int],
        episode_length: int,
        rng: np.random.Generator,
    ) -> SearchTrace:
        placement = list(problem.validate_placement(initial_placement))
        placements = [tuple(placement)]
        values = [objective.evaluate(problem.cost_model, placement)]
        relocations = np.zeros(problem.graph.num_tasks, dtype=int)
        for _ in range(episode_length):
            task = int(rng.integers(0, problem.graph.num_tasks))
            device = eft_device(problem, placement, task)
            if device != placement[task]:
                relocations[task] += 1
            placement[task] = device
            placements.append(tuple(placement))
            values.append(objective.evaluate(problem.cost_model, placement))
        return trace_from_values(
            placements, values, problem.graph.num_tasks, relocations.tolist()
        )
