"""Random baselines: placement sampling and random-task + EFT (paper §5)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.placement import PlacementProblem, random_placement
from ..core.search import SearchTrace
from ..runtime.evaluator import PlacementEvaluator
from ..sim.objectives import Objective
from .base import AdaptivePolicy, make_evaluator, trace_from_values
from .eft import eft_device

__all__ = ["RandomPlacementPolicy", "RandomTaskEftPolicy"]


class RandomPlacementPolicy(AdaptivePolicy):
    """Random placement sampling: a fresh uniform feasible placement per
    step — "representative of the average placement quality".

    Candidates are independent of each other's scores, so the whole
    episode is drawn up front and scored in one
    :meth:`PlacementEvaluator.evaluate_many` batch.
    """

    name = "random"

    def search(
        self,
        problem: PlacementProblem,
        objective: Objective,
        initial_placement: Sequence[int],
        episode_length: int,
        rng: np.random.Generator,
        evaluator: PlacementEvaluator | None = None,
    ) -> SearchTrace:
        evaluator = make_evaluator(problem, objective, evaluator)
        placements = [problem.validate_placement(initial_placement)]
        placements += [random_placement(problem, rng) for _ in range(episode_length)]
        values = evaluator.evaluate_many(placements)
        return trace_from_values(placements, values.tolist(), problem.graph.num_tasks)


class RandomTaskEftPolicy(AdaptivePolicy):
    """Random task selection + EFT device selection: HEFT adapted into a
    search policy — pick a uniformly random task each step and relocate
    it to its earliest-finish-time device."""

    name = "random-task-eft"

    def search(
        self,
        problem: PlacementProblem,
        objective: Objective,
        initial_placement: Sequence[int],
        episode_length: int,
        rng: np.random.Generator,
        evaluator: PlacementEvaluator | None = None,
    ) -> SearchTrace:
        evaluator = make_evaluator(problem, objective, evaluator)
        placement = list(problem.validate_placement(initial_placement))
        placements = [tuple(placement)]
        values = [evaluator.evaluate(placement)]
        relocations = np.zeros(problem.graph.num_tasks, dtype=int)
        for _ in range(episode_length):
            task = int(rng.integers(0, problem.graph.num_tasks))
            # EFT reads the current placement's noise-free timeline, which
            # the evaluator already has cached from scoring it.
            device = eft_device(
                problem, placement, task, timeline=evaluator.timeline(placement)
            )
            if device != placement[task]:
                relocations[task] += 1
            placement[task] = device
            placements.append(tuple(placement))
            values.append(evaluator.evaluate(placement))
        return trace_from_values(
            placements, values, problem.graph.num_tasks, relocations.tolist()
        )
