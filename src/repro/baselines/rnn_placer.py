"""RNN-based placer (hierarchical device placement style, Mirhoseini 2018).

The paper's per-instance RL baseline: a sequence-to-sequence model — a
bi-LSTM encoder over operator embeddings and a unidirectional LSTM
decoder with attention — emits a device for each operator in topological
order.  It neither generalizes across graphs nor across networks, so the
paper retrains it on every test case, drawing 4 placement samples per
update "until the latency is no longer improved" (§5).

Operator embedding (§B.7 / Table 4): one-hot hardware requirement ∥
compute scalar ∥ out-edge data bytes (padded to max out-degree) ∥
adjacency row — total dim  n_type + 1 + max(d_out) + n_nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.placement import PlacementProblem
from ..core.search import SearchTrace
from ..nn import Adam, AdditiveAttention, BiLSTM, Linear, LSTMCell, Tensor, concat, no_grad
from ..nn import functional as F
from ..runtime.evaluator import PlacementEvaluator
from ..sim.objectives import Objective
from .base import AdaptivePolicy, make_evaluator, trace_from_values

__all__ = ["RnnPlacer", "RnnPlacerResult", "RnnPlacerPolicy", "operator_embeddings"]


def operator_embeddings(problem: PlacementProblem) -> np.ndarray:
    """Static per-operator input features for the seq2seq model."""
    graph = problem.graph
    n = graph.num_tasks
    num_types = max(graph.requirements) + 1
    max_out = max((len(graph.children[i]) for i in range(n)), default=0)

    rows = []
    for i in range(n):
        onehot = np.zeros(num_types)
        onehot[graph.requirements[i]] = 1.0
        out_bytes = np.zeros(max(max_out, 1))
        for k, child in enumerate(graph.children[i]):
            out_bytes[k] = graph.edges[(i, child)]
        adjacency = np.zeros(n)
        adjacency[list(graph.children[i])] = 1.0
        rows.append(np.concatenate([onehot, [graph.compute[i]], out_bytes, adjacency]))
    feats = np.array(rows)
    scale = np.abs(feats).mean(axis=0)
    return feats / np.where(scale > 1e-12, scale, 1.0)


@dataclass(frozen=True)
class RnnPlacerResult:
    """Training outcome on one instance."""

    best_placement: tuple[int, ...]
    best_value: float
    values_per_update: tuple[float, ...]  # best-so-far after each update
    updates: int


class RnnPlacer:
    """Per-instance seq2seq placement policy.

    Built for one (G, N): input embedding dims depend on the graph and
    the output head on the device count, which is precisely why this
    baseline requires retraining whenever either changes.
    """

    def __init__(
        self,
        problem: PlacementProblem,
        rng: np.random.Generator,
        hidden: int = 16,
        learning_rate: float = 0.01,
    ) -> None:
        self.problem = problem
        self.rng = rng
        self.features = operator_embeddings(problem)
        self.order = list(problem.graph.topo_order)
        m = problem.network.num_devices
        input_dim = self.features.shape[1]
        self.encoder = BiLSTM(input_dim, hidden, rng)
        mem_dim = 2 * hidden
        self.decoder = LSTMCell(mem_dim + m, hidden, rng)
        self.attention = AdditiveAttention(hidden, mem_dim, hidden, rng)
        self.head = Linear(hidden + mem_dim, m, rng)
        self.num_devices = m
        params = (
            list(self.encoder.parameters())
            + list(self.decoder.parameters())
            + list(self.attention.parameters())
            + list(self.head.parameters())
        )
        self.optimizer = Adam(params, lr=learning_rate)

    # -- sampling ---------------------------------------------------------------

    def sample_placement(self, greedy: bool = False) -> tuple[tuple[int, ...], Tensor]:
        """Decode one placement; returns (placement, total log-prob)."""
        memory = self.encoder(Tensor(self.features[self.order]))
        state = self.decoder.initial_state()
        prev_onehot = np.zeros(self.num_devices)
        placement = [0] * self.problem.graph.num_tasks
        total_log_prob: Tensor | None = None
        for t, op in enumerate(self.order):
            step_in = concat([memory[t], Tensor(prev_onehot)], axis=-1)
            h, c = self.decoder(step_in, state)
            state = (h, c)
            context = self.attention(h, memory)
            logits = self.head(concat([h, context], axis=-1))
            mask = np.zeros(self.num_devices, dtype=bool)
            mask[list(self.problem.feasible_sets[op])] = True
            log_probs = F.masked_log_softmax(logits, mask)
            probs = np.exp(log_probs.data)
            probs /= probs.sum()
            if greedy:
                device = int(np.argmax(probs))
            else:
                device = int(self.rng.choice(self.num_devices, p=probs))
            placement[op] = device
            lp = log_probs[device]
            total_log_prob = lp if total_log_prob is None else total_log_prob + lp
            prev_onehot = np.zeros(self.num_devices)
            prev_onehot[device] = 1.0
        return tuple(placement), total_log_prob

    # -- training -----------------------------------------------------------------

    def fit(
        self,
        objective: Objective,
        samples_per_update: int = 4,
        max_updates: int = 50,
        patience: int = 5,
    ) -> RnnPlacerResult:
        """Train on this instance until the latency stops improving."""
        best_value = float("inf")
        best_placement: tuple[int, ...] | None = None
        curve: list[float] = []
        stall = 0
        updates = 0
        for updates in range(1, max_updates + 1):
            sampled = [self.sample_placement() for _ in range(samples_per_update)]
            values = [
                objective.evaluate(self.problem.cost_model, placement)
                for placement, _ in sampled
            ]
            improved = False
            for (placement, _), value in zip(sampled, values):
                if value < best_value:
                    best_value, best_placement = value, placement
                    improved = True
            # REINFORCE with the batch mean as baseline: maximize -value.
            baseline = float(np.mean(values))
            loss = sum(
                lp * float(value - baseline)  # -(reward - baseline), reward = -value
                for (_, lp), value in zip(sampled, values)
            )
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.clip_grad_norm(10.0)
            self.optimizer.step()
            curve.append(best_value)
            stall = 0 if improved else stall + 1
            if stall >= patience:
                break
        assert best_placement is not None
        return RnnPlacerResult(best_placement, best_value, tuple(curve), updates)

    def place(self, greedy: bool = True) -> tuple[int, ...]:
        """Decode a placement without building an autograd graph."""
        with no_grad():
            placement, _ = self.sample_placement(greedy=greedy)
        return placement


class RnnPlacerPolicy(AdaptivePolicy):
    """The RNN placer through the :class:`SearchPolicy` protocol.

    Because the model is per-instance (encoder dims depend on the graph,
    the decoder head on the device count), ``search`` trains a *fresh*
    placer on each problem — the paper's "w/ retraining" adaptivity
    baseline (Fig. 6), and the correct behavior under the scenario
    engine's ``adapt(event)`` streaming: every cluster change forces a
    retrain.
    """

    name = "rnn-placer"

    def __init__(
        self,
        samples_per_update: int = 4,
        max_updates: int = 8,
        patience: int = 3,
    ) -> None:
        self.samples_per_update = samples_per_update
        self.max_updates = max_updates
        self.patience = patience

    def search(
        self,
        problem: PlacementProblem,
        objective: Objective,
        initial_placement: Sequence[int],
        episode_length: int,
        rng: np.random.Generator,
        evaluator: PlacementEvaluator | None = None,
    ) -> SearchTrace:
        evaluator = make_evaluator(problem, objective, evaluator)
        placer = RnnPlacer(problem, rng)
        fit = placer.fit(
            objective,
            samples_per_update=self.samples_per_update,
            max_updates=self.max_updates,
            patience=self.patience,
        )
        initial = problem.validate_placement(initial_placement)
        placements = [initial] + [fit.best_placement] * episode_length
        values = [evaluator.evaluate(initial)] + [fit.best_value] * episode_length
        return trace_from_values(placements, values, problem.graph.num_tasks)
