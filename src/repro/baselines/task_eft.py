"""GiPH-task-EFT: RL task selection + EFT device selection (paper §5, B.6).

The gpNet ablation: "without using gpNet, selecting a task and deciding
where to place it are done separately".  The agent embeds the *task
graph* (one node per task, annotated with its current placement) rather
than the joint task×device gpNet, scores tasks, and delegates the device
choice to EFT.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..core.gnn import TwoWayMessagePassing
from ..core.gpnet import GpNet
from ..core.placement import PlacementProblem
from ..core.policy import ScorePolicy
from ..core.reinforce import average_reward_baseline, discounted_returns
from ..core.search import SearchTrace
from ..nn import Adam, Parameter, Tensor, no_grad
from ..runtime.evaluator import EvaluatorPool, PlacementEvaluator
from ..sim.executor import SimResult, simulate
from ..sim.objectives import Objective
from .base import AdaptivePolicy, make_evaluator, trace_from_values
from .eft import eft_device

__all__ = ["build_task_view", "TaskEftAgent", "TaskEftTrainer"]


def build_task_view(
    problem: PlacementProblem, placement: Sequence[int], timeline: SimResult | None = None
) -> GpNet:
    """The task graph as a degenerate gpNet: one (pivot) node per task.

    Node features: [C_i, SP_{M(i)}, w_{i,M(i)}, scheduled start time];
    edge features: [B_ij, 1/BW, DL, c_ij] under the current placement.
    Reusing the GpNet container lets the GiPH GNN run unchanged on the
    task-level graph.
    """
    graph, cm = problem.graph, problem.cost_model
    placement = problem.validate_placement(placement)
    if timeline is None:
        timeline = simulate(graph, problem.network, placement, cm)
    speeds = problem.network.speeds

    node_features = np.array(
        [
            [
                graph.compute[i],
                speeds[placement[i]],
                cm.compute_time(i, placement[i]),
                timeline.start[i],
            ]
            for i in range(graph.num_tasks)
        ]
    )
    scale = np.abs(node_features).mean(axis=0)
    node_features = node_features / np.where(scale > 1e-12, scale, 1.0)

    with np.errstate(divide="ignore"):
        inv_bw = np.where(
            np.isinf(problem.network.bandwidth), 0.0, 1.0 / problem.network.bandwidth
        )
    src, dst, efeat = [], [], []
    for (u, v), data in graph.edges.items():
        du, dv = placement[u], placement[v]
        src.append(u)
        dst.append(v)
        efeat.append(
            [data, inv_bw[du, dv], problem.network.delay[du, dv], cm.comm_time((u, v), du, dv)]
        )
    edge_features = np.array(efeat) if efeat else np.zeros((0, 4))
    if len(edge_features):
        escale = np.abs(edge_features).mean(axis=0)
        edge_features = edge_features / np.where(escale > 1e-12, escale, 1.0)

    return GpNet(
        task_of=np.arange(graph.num_tasks, dtype=np.int64),
        device_of=np.array(placement, dtype=np.int64),
        is_pivot=np.ones(graph.num_tasks, dtype=bool),
        options=tuple(np.array([i]) for i in range(graph.num_tasks)),
        edge_src=np.array(src, dtype=np.int64),
        edge_dst=np.array(dst, dtype=np.int64),
        node_features=node_features,
        edge_features=edge_features,
        placement=placement,
    )


class TaskEftAgent(AdaptivePolicy):
    """Task-selection policy with EFT device selection."""

    name = "giph-task-eft"

    def __init__(self, rng: np.random.Generator) -> None:
        self.embedding = TwoWayMessagePassing(rng)
        self.policy = ScorePolicy(self.embedding.out_dim, rng)
        self.rng = rng

    def parameters(self) -> Iterator[Parameter]:
        yield from self.embedding.parameters()
        yield from self.policy.parameters()

    def select_task(
        self,
        problem: PlacementProblem,
        placement: Sequence[int],
        last_task: int | None,
        greedy: bool = False,
        timeline: SimResult | None = None,
    ) -> tuple[int, Tensor]:
        """Sample a task to relocate; returns (task, log-prob tensor)."""
        view = build_task_view(problem, placement, timeline=timeline)
        embeddings = self.embedding(view)
        mask = np.ones(problem.graph.num_tasks, dtype=bool)
        if last_task is not None and problem.graph.num_tasks > 1:
            mask[last_task] = False
        return self.policy.sample(embeddings, mask, self.rng, greedy=greedy)

    def search(
        self,
        problem: PlacementProblem,
        objective: Objective,
        initial_placement: Sequence[int],
        episode_length: int,
        rng: np.random.Generator,
        evaluator: PlacementEvaluator | None = None,
    ) -> SearchTrace:
        # Sample from the caller's per-case stream (as GiPHSearchPolicy
        # does): leaving the agent's internal rng advancing across cases
        # couples a case's result to which cases ran before it — and on
        # which worker — breaking worker-count independence.
        # Rebinding TO the caller's stream is the fix, not the bug.
        # repro: lint-ok[rng-stored-advancing]
        self.rng = rng
        evaluator = make_evaluator(problem, objective, evaluator)
        placement = list(problem.validate_placement(initial_placement))
        placements = [tuple(placement)]
        values = [evaluator.evaluate(placement)]
        relocations = np.zeros(problem.graph.num_tasks, dtype=int)
        last_task: int | None = None
        for _ in range(episode_length):
            # One cached timeline serves both the task view and EFT.
            timeline = evaluator.timeline(placement)
            with no_grad():
                task, _ = self.select_task(problem, placement, last_task, timeline=timeline)
            device = eft_device(problem, placement, task, timeline=timeline)
            if device != placement[task]:
                relocations[task] += 1
            placement[task] = device
            last_task = task
            placements.append(tuple(placement))
            values.append(evaluator.evaluate(placement))
        return trace_from_values(
            placements, values, problem.graph.num_tasks, relocations.tolist()
        )


class TaskEftTrainer:
    """REINFORCE over the task-selection policy (device choice fixed to EFT)."""

    def __init__(
        self,
        agent: TaskEftAgent,
        objective: Objective,
        learning_rate: float = 0.01,
        gamma: float = 0.97,
        grad_clip: float = 10.0,
    ) -> None:
        self.agent = agent
        self.objective = objective
        self.gamma = gamma
        self.grad_clip = grad_clip
        self.optimizer = Adam(list(agent.parameters()), lr=learning_rate)
        self._evaluators = EvaluatorPool(objective)

    def run_episode(
        self,
        problem: PlacementProblem,
        rng: np.random.Generator,
        episode_length: int | None = None,
    ) -> float:
        """One on-policy episode + gradient step; returns total reward."""
        from ..core.placement import random_placement

        evaluator = self._evaluators.get(problem)
        steps = episode_length or 2 * problem.graph.num_tasks
        placement = list(random_placement(problem, rng))
        value = evaluator.evaluate(placement)
        log_probs: list[Tensor] = []
        rewards: list[float] = []
        last_task: int | None = None
        for _ in range(steps):
            timeline = evaluator.timeline(placement)
            task, log_prob = self.agent.select_task(
                problem, placement, last_task, timeline=timeline
            )
            placement[task] = eft_device(problem, placement, task, timeline=timeline)
            last_task = task
            new_value = evaluator.evaluate(placement)
            rewards.append(value - new_value)
            log_probs.append(log_prob)
            value = new_value

        returns = discounted_returns(rewards, self.gamma)
        baseline = average_reward_baseline(rewards)
        discount = self.gamma ** np.arange(len(rewards))
        advantages = discount * (returns - baseline)
        loss = sum(lp * float(-adv) for lp, adv in zip(log_probs, advantages))
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.clip_grad_norm(self.grad_clip)
        self.optimizer.step()
        return float(sum(rewards))

    def train(
        self,
        problems: Sequence[PlacementProblem],
        rng: np.random.Generator,
        episodes: int,
    ) -> list[float]:
        if not problems:
            raise ValueError("training needs at least one problem")
        return [
            self.run_episode(problems[int(rng.integers(0, len(problems)))], rng)
            for _ in range(episodes)
        ]
