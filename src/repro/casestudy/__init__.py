"""Cooperative sensor-fusion case study (paper §5.3): traffic simulation,
pipeline construction, measured latency/relocation models."""

from .comms import bandwidth_matrix, mbps_to_bytes_per_ms, wireless_bandwidth_mbps
from .devicemodel import LatencyFit, fit_latency_model
from .measurements import (
    DEVICE_POWER_WATTS,
    DEVICE_TYPES,
    TABLE1_MEAN_MS,
    TABLE1_STD_MS,
    TABLE2_RELOCATION,
    TASK_KINDS,
)
from .pipeline import (
    PIN_BASE,
    REQ_COMPUTE,
    REQ_GPU,
    CaseStudyScenario,
    EdgeDeviceLayout,
    PipelineConfig,
    SensorFusionBuilder,
)
from .trace import TraceConfig, extract_trace
from .traffic import (
    Intersection,
    TrafficConfig,
    TrafficSimulation,
    TrafficSnapshot,
    VehicleState,
)

__all__ = [
    "wireless_bandwidth_mbps",
    "mbps_to_bytes_per_ms",
    "bandwidth_matrix",
    "LatencyFit",
    "fit_latency_model",
    "TASK_KINDS",
    "DEVICE_TYPES",
    "TABLE1_MEAN_MS",
    "TABLE1_STD_MS",
    "TABLE2_RELOCATION",
    "DEVICE_POWER_WATTS",
    "REQ_COMPUTE",
    "REQ_GPU",
    "PIN_BASE",
    "PipelineConfig",
    "EdgeDeviceLayout",
    "CaseStudyScenario",
    "SensorFusionBuilder",
    "TraceConfig",
    "extract_trace",
    "TrafficConfig",
    "TrafficSimulation",
    "TrafficSnapshot",
    "VehicleState",
    "Intersection",
]
