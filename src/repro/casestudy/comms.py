"""Case-study communication model (paper §B.4).

Wireless bandwidth decays exponentially with distance:

    BW(d) = 60 · exp(−d / 100) Mbps

Infrastructure cameras are wired to their RSU at a fixed high rate.
Bandwidths are converted to bytes/ms so the simulator's time unit is
milliseconds throughout the case study.
"""

from __future__ import annotations

import numpy as np

__all__ = ["wireless_bandwidth_mbps", "mbps_to_bytes_per_ms", "bandwidth_matrix"]

#: Wired CIS -> RSU link rate (Mbps).
WIRED_MBPS = 1000.0

#: Floor so far-apart devices remain technically connected (the paper
#: attaches very high cost to non-links rather than removing them).
MIN_MBPS = 1e-3


def wireless_bandwidth_mbps(distance_m: float) -> float:
    """BW = 60·exp(−d/100) Mbps, floored at MIN_MBPS."""
    if distance_m < 0:
        raise ValueError("distance must be non-negative")
    return max(60.0 * float(np.exp(-distance_m / 100.0)), MIN_MBPS)


def mbps_to_bytes_per_ms(mbps: float) -> float:
    """1 Mbps = 10^6 bits/s = 125 bytes/ms."""
    return mbps * 125.0


def bandwidth_matrix(
    positions: list[tuple[float, float]],
    wired_pairs: set[tuple[int, int]] | None = None,
) -> np.ndarray:
    """(m, m) bandwidth matrix in bytes/ms from device positions.

    ``wired_pairs`` (symmetric, by index) get the wired rate regardless
    of distance.  Diagonal is +inf (local transfer is free).
    """
    m = len(positions)
    pos = np.asarray(positions, dtype=np.float64)
    wired_pairs = wired_pairs or set()
    bw = np.empty((m, m))
    for i in range(m):
        for j in range(m):
            if i == j:
                bw[i, j] = np.inf
            elif (i, j) in wired_pairs or (j, i) in wired_pairs:
                bw[i, j] = mbps_to_bytes_per_ms(WIRED_MBPS)
            else:
                d = float(np.hypot(*(pos[i] - pos[j])))
                bw[i, j] = mbps_to_bytes_per_ms(wireless_bandwidth_mbps(d))
    return bw
