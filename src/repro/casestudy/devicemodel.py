"""Case-study latency model: fit C_i·T_j + S_j = µ_ij (paper §B.4).

The paper defines an average compute requirement C per task and a pair
of compute features (T, S) per device type — T is ms per unit of
compute, S the startup time — fit so the model reproduces Table 1's
measured means.  The bilinear system is solved with ``scipy``'s bounded
least squares; C_camera anchors the (scale-invariant) compute unit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from .measurements import DEVICE_TYPES, TABLE1_MEAN_MS, TASK_KINDS

__all__ = ["LatencyFit", "fit_latency_model"]


@dataclass(frozen=True)
class LatencyFit:
    """Fitted per-task compute requirements and per-type device features.

    ``compute[kind]`` = C_i; ``unit_time[type]`` = T_j (ms per compute
    unit); ``startup[type]`` = S_j (ms).
    """

    compute: dict[str, float]
    unit_time: dict[str, float]
    startup: dict[str, float]

    def predicted_ms(self, kind: str, device_type: str) -> float:
        """Model runtime µ̂_ij = C_i·T_j + S_j."""
        return self.compute[kind] * self.unit_time[device_type] + self.startup[device_type]

    def relative_rms_error(self) -> float:
        """Fit quality against Table 1 (relative RMS over all 12 cells)."""
        errs = [
            (self.predicted_ms(k, t) - TABLE1_MEAN_MS[k][t]) / TABLE1_MEAN_MS[k][t]
            for k in TASK_KINDS
            for t in DEVICE_TYPES
        ]
        return float(np.sqrt(np.mean(np.square(errs))))


def fit_latency_model(anchor_compute: float = 50.0) -> LatencyFit:
    """Fit (C, T, S) to Table 1 by bounded nonlinear least squares.

    ``anchor_compute`` pins C_camera, removing the C·T scale degeneracy.
    Residuals are relative (each cell weighted by 1/µ_ij) so the
    millisecond-scale Type-C column isn't drowned out by the 250 ms
    RSU-fusion cells.
    """
    n_tasks, n_types = len(TASK_KINDS), len(DEVICE_TYPES)
    mu = np.array([[TABLE1_MEAN_MS[k][t] for t in DEVICE_TYPES] for k in TASK_KINDS])

    def unpack(x):
        compute = np.concatenate([[anchor_compute], x[: n_tasks - 1]])
        unit = x[n_tasks - 1 : n_tasks - 1 + n_types]
        startup = x[n_tasks - 1 + n_types :]
        return compute, unit, startup

    def residuals(x):
        compute, unit, startup = unpack(x)
        pred = np.outer(compute, unit) + startup[None, :]
        return ((pred - mu) / mu).ravel()

    x0 = np.concatenate(
        [
            np.full(n_tasks - 1, anchor_compute),
            np.full(n_types, mu.mean() / anchor_compute),
            np.full(n_types, 1.0),
        ]
    )
    lower = np.concatenate(
        [np.full(n_tasks - 1, 1e-6), np.full(n_types, 1e-9), np.zeros(n_types)]
    )
    result = least_squares(residuals, x0, bounds=(lower, np.inf))
    compute, unit, startup = unpack(result.x)
    return LatencyFit(
        compute=dict(zip(TASK_KINDS, compute.tolist())),
        unit_time=dict(zip(DEVICE_TYPES, unit.tolist())),
        startup=dict(zip(DEVICE_TYPES, startup.tolist())),
    )
