"""Real-world measurements from the paper's case study (Tables 1 and 2).

Table 1: running time (ms, mean ± std) of each sensor-fusion task on
Jetson Nano (Type A), Jetson TX2 (Type B) and Core i7 7700K + GTX 1080
(Type C).  Table 2: relocation overhead of each task measured in a
small-scale deployment.  These constants are the paper's own hardware
reduction; the simulated case study starts from the same numbers.
"""

from __future__ import annotations

from ..sim.relocation import TaskRelocationProfile

__all__ = [
    "TASK_KINDS",
    "DEVICE_TYPES",
    "TABLE1_MEAN_MS",
    "TABLE1_STD_MS",
    "TABLE2_RELOCATION",
    "DEVICE_POWER_WATTS",
]

#: Task kinds, in Table-1 row order.
TASK_KINDS = ("camera", "lidar", "cav_fusion", "rsu_fusion")

#: Device types, in Table-1 column order.
DEVICE_TYPES = ("A", "B", "C")

#: Table 1 means (ms): rows = TASK_KINDS, columns = DEVICE_TYPES.
TABLE1_MEAN_MS: dict[str, dict[str, float]] = {
    "camera": {"A": 53.0, "B": 36.0, "C": 9.0},
    "lidar": {"A": 14.0, "B": 7.0, "C": 3.0},
    "cav_fusion": {"A": 35.0, "B": 35.0, "C": 11.0},
    "rsu_fusion": {"A": 250.0, "B": 250.0, "C": 28.0},
}

#: Table 1 standard deviations (ms).
TABLE1_STD_MS: dict[str, dict[str, float]] = {
    "camera": {"A": 22.0, "B": 8.0, "C": 4.0},
    "lidar": {"A": 3.0, "B": 3.0, "C": 2.0},
    "cav_fusion": {"A": 9.0, "B": 4.0, "C": 9.0},
    "rsu_fusion": {"A": 430.0, "B": 370.0, "C": 22.0},
}

#: Table 2: relocation overhead per task.  Startup times were measured on
#: Types A and C; Type B (between A and C in capability) is interpolated
#: geometrically, documented as a substitution in DESIGN.md.
TABLE2_RELOCATION: dict[str, TaskRelocationProfile] = {
    "camera": TaskRelocationProfile(
        migration_bytes=11494.0,
        static_init_kbytes=72173.525,
        startup_ms_by_type={"A": 4273.73, "B": 1843.0, "C": 794.66},
    ),
    "lidar": TaskRelocationProfile(
        migration_bytes=560.0,
        static_init_kbytes=24.576,
        startup_ms_by_type={"A": 60.98, "B": 23.8, "C": 9.26},
    ),
    "cav_fusion": TaskRelocationProfile(
        migration_bytes=11796.0,
        static_init_kbytes=38.110,
        startup_ms_by_type={"A": 0.39, "B": 0.21, "C": 0.11},
    ),
    "rsu_fusion": TaskRelocationProfile(
        migration_bytes=20907.0,
        static_init_kbytes=38.950,
        startup_ms_by_type={"A": 2.83, "B": 1.68, "C": 1.00},
    ),
}

#: Nominal sustained power draw per device type (watts), used by the
#: energy objective: Jetson Nano ~10 W, Jetson TX2 ~15 W, i7 + GTX1080
#: ~250 W under load.
DEVICE_POWER_WATTS: dict[str, float] = {"A": 10.0, "B": 15.0, "C": 250.0}
