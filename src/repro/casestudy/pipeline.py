"""Sensor-fusion application pipelines for CAV intersection management.

Builds, for one traffic snapshot and one intersection, the dataflow task
graph of Fig. 8(b) — infrastructure-camera and CAV sensor acquisition,
GPU detection tasks, per-CAV fusion, RSU fusion, and per-CAV actuation —
together with the device network in range (RSU, CISs, CAVs, nearby edge
devices) under the fitted latency model.

Hardware-requirement scheme (the paper's placement constraints):

* ``REQ_COMPUTE`` (1): any compute device (fusion tasks);
* ``REQ_GPU`` (2): GPU-equipped devices — all of types A/B/C but not
  sensor-only infrastructure cameras (detection tasks "need to run on
  GPUs", §5.3);
* ``PIN_BASE + k``: pinned to one concrete device (sensor acquisition on
  its sensor, actuation on its CAV).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.placement import PlacementProblem
from ..devices.network import Device, DeviceNetwork
from ..graphs.task_graph import TaskGraph
from ..sim.latency import CostModel
from .comms import bandwidth_matrix
from .devicemodel import LatencyFit
from .measurements import DEVICE_POWER_WATTS
from .traffic import Intersection, TrafficSnapshot

__all__ = [
    "REQ_COMPUTE",
    "REQ_GPU",
    "PIN_BASE",
    "PipelineConfig",
    "EdgeDeviceLayout",
    "CaseStudyScenario",
    "SensorFusionBuilder",
]

REQ_COMPUTE = 1
REQ_GPU = 2
PIN_BASE = 100


@dataclass(frozen=True)
class PipelineConfig:
    """Data sizes (bytes) and fleet layout of the case study.

    Defaults follow §5.3: 40 extra edge devices (10 A / 10 B / 20 C)
    scattered over the area; data volumes approximate the Andert &
    Shrivastava (2022) pipelines (compressed camera frames, LIDAR point
    clouds, compact detection/fusion messages).
    """

    camera_frame_bytes: float = 150_000.0
    lidar_cloud_bytes: float = 60_000.0
    detection_bytes: float = 20_000.0
    fusion_bytes: float = 20_000.0
    plan_bytes: float = 5_000.0
    edge_devices_a: int = 10
    edge_devices_b: int = 10
    edge_devices_c: int = 20
    edge_device_radius_m: float = 400.0

    def __post_init__(self) -> None:
        for name in (
            "camera_frame_bytes",
            "lidar_cloud_bytes",
            "detection_bytes",
            "fusion_bytes",
            "plan_bytes",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if min(self.edge_devices_a, self.edge_devices_b, self.edge_devices_c) < 0:
            raise ValueError("edge device counts must be non-negative")


@dataclass(frozen=True)
class EdgeDeviceLayout:
    """Positions and types of the extra roadside edge devices."""

    positions: tuple[tuple[float, float], ...]
    types: tuple[str, ...]

    @staticmethod
    def random(
        config: PipelineConfig,
        area: tuple[float, float],
        rng: np.random.Generator,
    ) -> "EdgeDeviceLayout":
        count = config.edge_devices_a + config.edge_devices_b + config.edge_devices_c
        xs = rng.uniform(0.0, area[0], size=count)
        ys = rng.uniform(0.0, area[1], size=count)
        types = ["A"] * config.edge_devices_a + ["B"] * config.edge_devices_b + [
            "C"
        ] * config.edge_devices_c
        return EdgeDeviceLayout(
            positions=tuple((float(x), float(y)) for x, y in zip(xs, ys)),
            types=tuple(types),
        )


@dataclass(frozen=True)
class CaseStudyScenario:
    """One placement case extracted from the trace (paper: 900+ of these)."""

    problem: PlacementProblem
    task_kinds: tuple[str, ...]  # per task: sensor/camera/lidar/cav_fusion/rsu_fusion/actuation
    device_types: dict[int, str]  # device uid -> "A"/"B"/"C"/"CIS"
    intersection_id: int
    time_s: float
    num_cavs: int


class SensorFusionBuilder:
    """Builds :class:`CaseStudyScenario` instances from traffic snapshots."""

    def __init__(
        self,
        fit: LatencyFit,
        config: PipelineConfig,
        layout: EdgeDeviceLayout,
        interaction_radius_m: float = 400.0,
    ) -> None:
        self.fit = fit
        self.config = config
        self.layout = layout
        self.interaction_radius_m = interaction_radius_m

    # -- device helpers -------------------------------------------------------

    @staticmethod
    def _cav_type(vid: int) -> str:
        """CAV onboard compute: Jetson Nano or TX2 (Fig. 10), by vehicle."""
        return "A" if vid % 2 == 0 else "B"

    def _device(
        self, uid: int, dtype: str, position: tuple[float, float], pins: set[int]
    ) -> Device:
        if dtype == "CIS":
            return Device(
                uid=uid,
                speed=1e-3,
                supports=frozenset(pins),
                compute_power=1.0,
                position=position,
            )
        return Device(
            uid=uid,
            speed=1.0 / self.fit.unit_time[dtype],
            supports=frozenset({REQ_COMPUTE, REQ_GPU} | pins),
            compute_power=DEVICE_POWER_WATTS[dtype],
            position=position,
        )

    # -- scenario construction ---------------------------------------------------

    def build_scenario(
        self, snapshot: TrafficSnapshot, intersection: Intersection
    ) -> CaseStudyScenario | None:
        """The placement case for one intersection at one instant.

        Returns None when no CAV interacts with the intersection (no
        pipeline to place).
        """
        cavs = snapshot.cavs_near(intersection, self.interaction_radius_m)
        if not cavs:
            return None

        devices: list[Device] = []
        device_types: dict[int, str] = {}
        positions: list[tuple[float, float]] = []
        wired_pairs: set[tuple[int, int]] = set()
        pin_of: dict[int, int] = {}  # device uid -> its pin requirement
        next_pin = PIN_BASE

        def add_device(uid: int, dtype: str, position: tuple[float, float], pinned: bool):
            nonlocal next_pin
            pins: set[int] = set()
            if pinned:
                pins.add(next_pin)
                pin_of[uid] = next_pin
                next_pin += 1
            devices.append(self._device(uid, dtype, position, pins))
            device_types[uid] = dtype
            positions.append(position)

        # RSU (type C) at the intersection; index 0.
        rsu_uid = 1000 + intersection.iid
        add_device(rsu_uid, "C", intersection.position, pinned=True)

        # Four wired infrastructure cameras around the intersection.
        cis_uids = []
        for cam in range(intersection.num_cameras):
            uid = 2000 + intersection.iid * 10 + cam
            dx, dy = [(15.0, 15.0), (-15.0, 15.0), (15.0, -15.0), (-15.0, -15.0)][cam % 4]
            pos = (intersection.position[0] + dx, intersection.position[1] + dy)
            add_device(uid, "CIS", pos, pinned=True)
            wired_pairs.add((0, len(devices) - 1))  # wired to the RSU
            cis_uids.append(uid)

        # Interacting CAVs.
        cav_uids = []
        for v in cavs:
            uid = 3000 + v.vid
            add_device(uid, self._cav_type(v.vid), v.position, pinned=True)
            cav_uids.append(uid)

        # Edge devices within range of the intersection.
        ix, iy = intersection.position
        for k, (pos, dtype) in enumerate(zip(self.layout.positions, self.layout.types)):
            if np.hypot(pos[0] - ix, pos[1] - iy) <= self.config.edge_device_radius_m:
                add_device(4000 + k, dtype, pos, pinned=False)

        uid_index = {d.uid: i for i, d in enumerate(devices)}

        # -- task graph (Fig. 8b) ------------------------------------------------
        cfg = self.config
        compute: list[float] = []
        kinds: list[str] = []
        reqs: list[int] = []
        edges: dict[tuple[int, int], float] = {}

        def add_task(kind: str, requirement: int) -> int:
            compute.append(0.0 if kind in ("sensor", "actuation") else self.fit.compute[kind])
            kinds.append(kind)
            reqs.append(requirement)
            return len(compute) - 1

        rsu_fusion = add_task("rsu_fusion", REQ_COMPUTE)

        for uid in cis_uids:
            acq = add_task("sensor", pin_of[uid])
            proc = add_task("camera", REQ_GPU)
            edges[(acq, proc)] = cfg.camera_frame_bytes
            edges[(proc, rsu_fusion)] = cfg.detection_bytes

        actuations = []
        for uid in cav_uids:
            cam_acq = add_task("sensor", pin_of[uid])
            cam_proc = add_task("camera", REQ_GPU)
            lid_acq = add_task("sensor", pin_of[uid])
            lid_proc = add_task("lidar", REQ_GPU)
            fusion = add_task("cav_fusion", REQ_COMPUTE)
            act = add_task("actuation", pin_of[uid])
            edges[(cam_acq, cam_proc)] = cfg.camera_frame_bytes
            edges[(lid_acq, lid_proc)] = cfg.lidar_cloud_bytes
            edges[(cam_proc, fusion)] = cfg.detection_bytes
            edges[(lid_proc, fusion)] = cfg.detection_bytes
            edges[(fusion, rsu_fusion)] = cfg.fusion_bytes
            edges[(rsu_fusion, act)] = cfg.plan_bytes
            actuations.append(act)

        graph = TaskGraph(
            compute=tuple(compute),
            edges=edges,
            requirements=tuple(reqs),
            name=f"fusion-i{intersection.iid}-t{int(snapshot.time_s)}",
        )

        bw = bandwidth_matrix(positions, wired_pairs)
        delay = np.zeros((len(devices), len(devices)))
        network = DeviceNetwork(
            devices, bw, delay, name=f"net-i{intersection.iid}-t{int(snapshot.time_s)}"
        )

        # Affine latency model: w = C_i·T_j + S_j for processing tasks on
        # compute devices; 0 for instantaneous sensor/actuation tasks.
        w = np.zeros((graph.num_tasks, network.num_devices))
        for i, kind in enumerate(kinds):
            if kind in ("sensor", "actuation"):
                continue
            for j, d in enumerate(devices):
                dtype = device_types[d.uid]
                if dtype == "CIS":
                    w[i, j] = 1e9  # sensor-only device; infeasible anyway
                else:
                    w[i, j] = self.fit.predicted_ms(kind, dtype)
        cost_model = CostModel(graph, network, compute_matrix=w)

        return CaseStudyScenario(
            problem=PlacementProblem(graph, network, cost_model),
            task_kinds=tuple(kinds),
            device_types=device_types,
            intersection_id=intersection.iid,
            time_s=snapshot.time_s,
            num_cavs=len(cavs),
        )
