"""Trace extraction: traffic simulation -> placement cases (paper §5.3).

"We evaluate GiPH and other search-based policies on over 900 placement
cases that are extracted from the application trace."  This module runs
the mobility model, walks every (snapshot, intersection) pair with at
least one interacting CAV, and yields the corresponding scenarios.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..store import active_store, fingerprint
from .devicemodel import LatencyFit, fit_latency_model
from .pipeline import CaseStudyScenario, EdgeDeviceLayout, PipelineConfig, SensorFusionBuilder
from .traffic import TrafficConfig, TrafficSimulation

__all__ = ["TraceConfig", "extract_trace", "extract_trace_cached", "trace_key"]


@dataclass(frozen=True)
class TraceConfig:
    """End-to-end configuration of the case-study trace extraction."""

    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    max_cases: int | None = None  # stop after this many scenarios
    max_cavs_per_case: int = 6  # cap pipeline width to keep cases tractable


def extract_trace(
    config: TraceConfig, rng: np.random.Generator, fit: LatencyFit | None = None
) -> list[CaseStudyScenario]:
    """Simulate traffic and extract one scenario per active intersection
    per snapshot."""
    fit = fit or fit_latency_model()
    sim = TrafficSimulation(config.traffic, rng)
    area = (
        (config.traffic.grid_cols - 1) * config.traffic.block_meters,
        (config.traffic.grid_rows - 1) * config.traffic.block_meters,
    )
    layout = EdgeDeviceLayout.random(config.pipeline, area, rng)
    builder = SensorFusionBuilder(
        fit, config.pipeline, layout, interaction_radius_m=config.traffic.interaction_radius_m
    )

    scenarios: list[CaseStudyScenario] = []
    for snapshot in sim.snapshots():
        for intersection in sim.intersections:
            cavs = snapshot.cavs_near(intersection, config.traffic.interaction_radius_m)
            if not cavs:
                continue
            if len(cavs) > config.max_cavs_per_case:
                # Keep the nearest CAVs; wide intersections otherwise blow
                # up the pipeline (the paper's RSUs plan per-approach).
                ix, iy = intersection.position
                nearest = sorted(
                    cavs,
                    key=lambda v: (v.position[0] - ix) ** 2 + (v.position[1] - iy) ** 2,
                )[: config.max_cavs_per_case]
                from .traffic import TrafficSnapshot

                snapshot_slice = TrafficSnapshot(snapshot.time_s, tuple(nearest))
            else:
                snapshot_slice = snapshot
            scenario = builder.build_scenario(snapshot_slice, intersection)
            if scenario is not None:
                scenarios.append(scenario)
            if config.max_cases is not None and len(scenarios) >= config.max_cases:
                return scenarios
    return scenarios


def trace_key(config: TraceConfig, stream: Sequence[int]) -> dict:
    """Cache key of one trace extraction: full config + seed stream.

    The extraction is a pure function of ``(config, stream)`` — the
    traffic simulation, the edge-device layout, and the scenario walk
    all draw exclusively from ``default_rng(list(stream))`` — which is
    what makes memoizing it sound.
    """
    return {
        "kind": "case-study-trace",
        "config": dataclasses.asdict(config),
        "stream": list(stream),
    }


# In-process memo: trace fingerprint -> scenario list.  Small LRU — a
# session touches a handful of (scale, stream) combinations at most.
_MEMO_MAX = 8
_MEMO: OrderedDict[str, list[CaseStudyScenario]] = OrderedDict()


def extract_trace_cached(
    config: TraceConfig, stream: Sequence[int], fit: LatencyFit | None = None
) -> tuple[list[CaseStudyScenario], str]:
    """Memoized :func:`extract_trace` keyed by ``(config, stream)``.

    Returns ``(scenarios, source)`` where ``source`` is ``"memory"``
    (in-process memo), ``"store"`` (the process-wide
    :func:`repro.store.active_store` — how shard runs and repeated CLI
    invocations share one extraction), or ``"extracted"`` (computed here
    and published to both cache layers).  fig9 and fig11 used to run
    this simulation three times between them per (scale, seed); routed
    through here they pay for each distinct stream once per store.

    Callers must treat the returned scenarios as read-only: the memo
    hands the same objects to every in-process caller (exactly like the
    shared dataset objects the experiment harness already broadcasts).

    Only default-fit extractions are cached: a custom ``fit`` is not
    part of the cache key, so caching it would serve its scenarios to
    default-fit callers (and vice versa) — those calls bypass both
    cache layers instead.
    """
    if fit is not None:
        return extract_trace(config, np.random.default_rng(list(stream)), fit=fit), (
            "extracted"
        )
    key = trace_key(config, stream)
    address = fingerprint(key)
    store = active_store()
    if address in _MEMO:
        _MEMO.move_to_end(address)
        if store is not None:
            # Publish memory-cached extractions too: a trace first
            # extracted before the store was installed (or by a plain
            # run sharing this process) must still reach shard peers
            # and the merge pass.
            store.save("trace", key, _MEMO[address])
        return _MEMO[address], "memory"

    source = "extracted"
    scenarios: list[CaseStudyScenario] | None = None
    if store is not None and store.has("trace", key):
        scenarios = store.load("trace", key)
        source = "store"
    if scenarios is None:
        scenarios = extract_trace(config, np.random.default_rng(list(stream)))
        if store is not None:
            store.save("trace", key, scenarios)
    _MEMO[address] = scenarios
    while len(_MEMO) > _MEMO_MAX:
        _MEMO.popitem(last=False)
    return scenarios, source
