"""Trace extraction: traffic simulation -> placement cases (paper §5.3).

"We evaluate GiPH and other search-based policies on over 900 placement
cases that are extracted from the application trace."  This module runs
the mobility model, walks every (snapshot, intersection) pair with at
least one interacting CAV, and yields the corresponding scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .devicemodel import LatencyFit, fit_latency_model
from .pipeline import CaseStudyScenario, EdgeDeviceLayout, PipelineConfig, SensorFusionBuilder
from .traffic import TrafficConfig, TrafficSimulation

__all__ = ["TraceConfig", "extract_trace"]


@dataclass(frozen=True)
class TraceConfig:
    """End-to-end configuration of the case-study trace extraction."""

    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    max_cases: int | None = None  # stop after this many scenarios
    max_cavs_per_case: int = 6  # cap pipeline width to keep cases tractable


def extract_trace(
    config: TraceConfig, rng: np.random.Generator, fit: LatencyFit | None = None
) -> list[CaseStudyScenario]:
    """Simulate traffic and extract one scenario per active intersection
    per snapshot."""
    fit = fit or fit_latency_model()
    sim = TrafficSimulation(config.traffic, rng)
    area = (
        (config.traffic.grid_cols - 1) * config.traffic.block_meters,
        (config.traffic.grid_rows - 1) * config.traffic.block_meters,
    )
    layout = EdgeDeviceLayout.random(config.pipeline, area, rng)
    builder = SensorFusionBuilder(
        fit, config.pipeline, layout, interaction_radius_m=config.traffic.interaction_radius_m
    )

    scenarios: list[CaseStudyScenario] = []
    for snapshot in sim.snapshots():
        for intersection in sim.intersections:
            cavs = snapshot.cavs_near(intersection, config.traffic.interaction_radius_m)
            if not cavs:
                continue
            if len(cavs) > config.max_cavs_per_case:
                # Keep the nearest CAVs; wide intersections otherwise blow
                # up the pipeline (the paper's RSUs plan per-approach).
                ix, iy = intersection.position
                nearest = sorted(
                    cavs,
                    key=lambda v: (v.position[0] - ix) ** 2 + (v.position[1] - iy) ** 2,
                )[: config.max_cavs_per_case]
                from .traffic import TrafficSnapshot

                snapshot_slice = TrafficSnapshot(snapshot.time_s, tuple(nearest))
            else:
                snapshot_slice = snapshot
            scenario = builder.build_scenario(snapshot_slice, intersection)
            if scenario is not None:
                scenarios.append(scenario)
            if config.max_cases is not None and len(scenarios) >= config.max_cases:
                return scenarios
    return scenarios
