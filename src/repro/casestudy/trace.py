"""Trace extraction: traffic simulation -> placement cases (paper §5.3).

"We evaluate GiPH and other search-based policies on over 900 placement
cases that are extracted from the application trace."  This module runs
the mobility model, walks every (snapshot, intersection) pair with at
least one interacting CAV, and yields the corresponding scenarios.

Cold extractions can fan contiguous snapshot windows across processes
(:func:`extract_trace_windowed`).  This is sound because the walk is a
pure function of ``(config, stream)``: :class:`TrafficSimulation`
consumes all of its randomness in ``__init__`` and ``snapshot(t)`` is a
pure lookup, so every worker can rebuild the identical simulated world
from the seed stream and evaluate its own slice of the snapshot times.
The windowed walk is bit-identical to the serial one (pinned by
``tests/casestudy/test_trace_parallel.py``), which is what lets the
cached entry point share one cache key for both.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..parallel.backends import (
    ExecutionBackend,
    ExecutionBackendError,
    resolve_backend,
)
from ..parallel.pool import get_context
from ..store import active_store, fingerprint
from .devicemodel import LatencyFit, fit_latency_model
from .pipeline import CaseStudyScenario, EdgeDeviceLayout, PipelineConfig, SensorFusionBuilder
from .traffic import TrafficConfig, TrafficSimulation, TrafficSnapshot

__all__ = [
    "TraceConfig",
    "extract_trace",
    "extract_trace_windowed",
    "extract_trace_cached",
    "trace_key",
]


@dataclass(frozen=True)
class TraceConfig:
    """End-to-end configuration of the case-study trace extraction."""

    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    max_cases: int | None = None  # stop after this many scenarios
    max_cavs_per_case: int = 6  # cap pipeline width to keep cases tractable


def _build_world(
    config: TraceConfig, rng: np.random.Generator, fit: LatencyFit
) -> tuple[TrafficSimulation, SensorFusionBuilder]:
    """Deterministically rebuild the simulated world from ``rng``.

    Consumes the generator in a fixed order (simulation first, then the
    device layout) so the serial walk and every window worker derive the
    identical world from equal seed streams.
    """
    sim = TrafficSimulation(config.traffic, rng)
    area = (
        (config.traffic.grid_cols - 1) * config.traffic.block_meters,
        (config.traffic.grid_rows - 1) * config.traffic.block_meters,
    )
    layout = EdgeDeviceLayout.random(config.pipeline, area, rng)
    builder = SensorFusionBuilder(
        fit, config.pipeline, layout, interaction_radius_m=config.traffic.interaction_radius_m
    )
    return sim, builder


def _scan_snapshot(
    sim: TrafficSimulation,
    builder: SensorFusionBuilder,
    config: TraceConfig,
    snapshot: TrafficSnapshot,
) -> list[CaseStudyScenario]:
    """All scenarios of one snapshot, in intersection order.

    Pure given its arguments (``build_scenario`` draws no randomness),
    so the trace is the concatenation of per-snapshot scans in time
    order — the invariant the windowed extraction rests on.
    """
    scenarios: list[CaseStudyScenario] = []
    for intersection in sim.intersections:
        cavs = snapshot.cavs_near(intersection, config.traffic.interaction_radius_m)
        if not cavs:
            continue
        if len(cavs) > config.max_cavs_per_case:
            # Keep the nearest CAVs; wide intersections otherwise blow
            # up the pipeline (the paper's RSUs plan per-approach).
            ix, iy = intersection.position
            nearest = sorted(
                cavs,
                key=lambda v: (v.position[0] - ix) ** 2 + (v.position[1] - iy) ** 2,
            )[: config.max_cavs_per_case]
            snapshot_slice = TrafficSnapshot(snapshot.time_s, tuple(nearest))
        else:
            snapshot_slice = snapshot
        scenario = builder.build_scenario(snapshot_slice, intersection)
        if scenario is not None:
            scenarios.append(scenario)
    return scenarios


def extract_trace(
    config: TraceConfig, rng: np.random.Generator, fit: LatencyFit | None = None
) -> list[CaseStudyScenario]:
    """Simulate traffic and extract one scenario per active intersection
    per snapshot."""
    fit = fit or fit_latency_model()
    sim, builder = _build_world(config, rng, fit)

    scenarios: list[CaseStudyScenario] = []
    for snapshot in sim.snapshots():
        scenarios.extend(_scan_snapshot(sim, builder, config, snapshot))
        if config.max_cases is not None and len(scenarios) >= config.max_cases:
            return scenarios[: config.max_cases]
    return scenarios


@dataclass(frozen=True)
class _WindowContext:
    """Broadcast state of a windowed extraction (one pickle per pool).

    Ships the parent-computed :class:`LatencyFit` so workers skip the
    scipy fitting stage; the seed ``stream`` travels instead of a
    generator because every worker must rebuild the world from the
    stream's *initial* state.
    """

    config: TraceConfig
    stream: tuple[int, ...]
    fit: LatencyFit


def _extract_window(window: tuple[int, int]) -> list[CaseStudyScenario]:
    """Worker: scenarios of snapshot-index window ``[start, stop)``."""
    ctx: _WindowContext = get_context()
    config = ctx.config
    sim, builder = _build_world(config, np.random.default_rng(list(ctx.stream)), ctx.fit)
    times = config.traffic.snapshot_times()[window[0] : window[1]]
    scenarios: list[CaseStudyScenario] = []
    for t in times:
        scenarios.extend(_scan_snapshot(sim, builder, config, sim.snapshot(float(t))))
        if config.max_cases is not None and len(scenarios) >= config.max_cases:
            # Any scenario beyond the cap already has >= max_cases
            # predecessors within this window alone, so it cannot be
            # among the first max_cases of the merged trace either —
            # truncating here loses nothing the serial walk would keep.
            return scenarios[: config.max_cases]
    return scenarios


def extract_trace_windowed(
    config: TraceConfig,
    stream: Sequence[int],
    fit: LatencyFit | None = None,
    workers: int = 1,
    backend: ExecutionBackend | None = None,
    num_windows: int | None = None,
) -> list[CaseStudyScenario]:
    """Window-parallel :func:`extract_trace`, bit-identical to serial.

    Splits the snapshot times into ``num_windows`` (default: one per
    worker) contiguous windows and fans them over ``backend`` (default:
    inline/fork sized by ``workers``).  Each worker rebuilds the
    simulated world from ``default_rng(list(stream))`` — cheap next to
    the snapshot walk — and scans only its own window; windows merge in
    time order and truncate to ``config.max_cases``, reproducing the
    serial early-stop exactly.

    Only direct-execution backends are accepted: a store-conditional
    backend (shard/merge) would skip fan-out legs whose cells exist,
    desynchronizing the positional window merge.
    """
    fit = fit or fit_latency_model()
    resolved = resolve_backend(backend, workers)
    if resolved.name not in ("inline", "fork"):
        raise ExecutionBackendError(
            f"trace windows need a direct-execution backend, got {resolved.name!r}; "
            "shard runs parallelize extraction per shard via workers instead"
        )
    times = config.traffic.snapshot_times()
    if num_windows is None:
        num_windows = max(1, min(len(times), resolved.workers))
    bounds = np.linspace(0, len(times), num_windows + 1).astype(int)
    windows = [(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:]) if b > a]
    context = _WindowContext(config, tuple(int(s) for s in stream), fit)
    chunks = resolved.fanout(_extract_window, windows, context)
    scenarios = [scenario for chunk in chunks for scenario in chunk]
    if config.max_cases is not None:
        scenarios = scenarios[: config.max_cases]
    return scenarios


def trace_key(config: TraceConfig, stream: Sequence[int]) -> dict:
    """Cache key of one trace extraction: full config + seed stream.

    The extraction is a pure function of ``(config, stream)`` — the
    traffic simulation, the edge-device layout, and the scenario walk
    all draw exclusively from ``default_rng(list(stream))`` — which is
    what makes memoizing it sound.
    """
    return {
        "kind": "case-study-trace",
        "config": dataclasses.asdict(config),
        "stream": list(stream),
    }


def _extract(
    config: TraceConfig, stream: Sequence[int], fit: LatencyFit | None, workers: int
) -> list[CaseStudyScenario]:
    """Serial or windowed extraction — same result either way."""
    if workers != 1:
        return extract_trace_windowed(config, stream, fit=fit, workers=workers)
    return extract_trace(config, np.random.default_rng(list(stream)), fit=fit)


# In-process memo: trace fingerprint -> scenario list.  Small LRU — a
# session touches a handful of (scale, stream) combinations at most.
_MEMO_MAX = 8
_MEMO: OrderedDict[str, list[CaseStudyScenario]] = OrderedDict()


def extract_trace_cached(
    config: TraceConfig,
    stream: Sequence[int],
    fit: LatencyFit | None = None,
    workers: int = 1,
) -> tuple[list[CaseStudyScenario], str]:
    """Memoized :func:`extract_trace` keyed by ``(config, stream)``.

    Returns ``(scenarios, source)`` where ``source`` is ``"memory"``
    (in-process memo), ``"store"`` (the process-wide
    :func:`repro.store.active_store` — how shard runs and repeated CLI
    invocations share one extraction), or ``"extracted"`` (computed here
    and published to both cache layers).  fig9 and fig11 used to run
    this simulation three times between them per (scale, seed); routed
    through here they pay for each distinct stream once per store.

    Callers must treat the returned scenarios as read-only: the memo
    hands the same objects to every in-process caller (exactly like the
    shared dataset objects the experiment harness already broadcasts).

    Only default-fit extractions are cached: a custom ``fit`` is not
    part of the cache key, so caching it would serve its scenarios to
    default-fit callers (and vice versa) — those calls bypass both
    cache layers instead.

    ``workers > 1`` routes cold extractions through
    :func:`extract_trace_windowed`.  The windowed walk is bit-identical
    to the serial one, so worker count never enters the cache key — a
    serial run and a parallel run publish interchangeable entries.
    """
    if fit is not None:
        return _extract(config, stream, fit, workers), "extracted"
    key = trace_key(config, stream)
    address = fingerprint(key)
    store = active_store()
    if address in _MEMO:
        _MEMO.move_to_end(address)
        if store is not None:
            # Publish memory-cached extractions too: a trace first
            # extracted before the store was installed (or by a plain
            # run sharing this process) must still reach shard peers
            # and the merge pass.
            store.save("trace", key, _MEMO[address])
        return _MEMO[address], "memory"

    source = "extracted"
    scenarios: list[CaseStudyScenario] | None = None
    if store is not None and store.has("trace", key):
        scenarios = store.load("trace", key)
        source = "store"
    if scenarios is None:
        scenarios = _extract(config, stream, None, workers)
        if store is not None:
            store.save("trace", key, scenarios)
    _MEMO[address] = scenarios
    while len(_MEMO) > _MEMO_MAX:
        _MEMO.popitem(last=False)
    return scenarios, source
