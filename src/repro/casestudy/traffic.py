"""Grid-road traffic simulation (SUMO substitute, paper §5.3).

The paper simulates a 6-block area of Tempe AZ with SUMO: 36 RSUs at
major intersections, four infrastructure cameras each, and an hour of
traffic (3 980 vehicles, 10 % connected) sampled every 10 s.  SUMO is
unavailable offline, so this module provides a microscopic grid-road
mobility model producing the same artifact the placement experiments
consume: time-stamped positions of connected vehicles relative to the
fixed infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TrafficConfig", "Intersection", "VehicleState", "TrafficSnapshot", "TrafficSimulation"]


@dataclass(frozen=True)
class TrafficConfig:
    """Mobility-model parameters mirroring the paper's SUMO setup.

    Defaults give the paper's scale: a 6×6 intersection grid (36 RSUs),
    one hour of traffic with 3 980 vehicles at 10 % CAV penetration,
    snapshots every 10 s, 400 m interaction radius.
    """

    grid_rows: int = 6
    grid_cols: int = 6
    block_meters: float = 200.0
    duration_s: float = 3600.0
    snapshot_interval_s: float = 10.0
    num_vehicles: int = 3980
    cav_fraction: float = 0.10
    speed_mps: tuple[float, float] = (8.0, 16.0)
    interaction_radius_m: float = 400.0

    def __post_init__(self) -> None:
        if self.grid_rows < 1 or self.grid_cols < 1:
            raise ValueError("grid must have at least one intersection")
        if self.duration_s <= 0 or self.snapshot_interval_s <= 0:
            raise ValueError("durations must be positive")
        if not 0.0 <= self.cav_fraction <= 1.0:
            raise ValueError("cav_fraction must be in [0, 1]")
        if self.num_vehicles < 0:
            raise ValueError("num_vehicles must be non-negative")
        if self.speed_mps[0] <= 0 or self.speed_mps[1] < self.speed_mps[0]:
            raise ValueError("speed range invalid")

    @property
    def num_intersections(self) -> int:
        return self.grid_rows * self.grid_cols

    def snapshot_times(self) -> np.ndarray:
        """Sampling times of the trace, shared by the serial and the
        windowed trace walks (a window is a slice of this array)."""
        return np.arange(
            self.snapshot_interval_s,
            self.duration_s + 1e-9,
            self.snapshot_interval_s,
        )


@dataclass(frozen=True)
class Intersection:
    """An RSU-equipped intersection with four infrastructure cameras."""

    iid: int
    position: tuple[float, float]
    num_cameras: int = 4


@dataclass(frozen=True)
class VehicleState:
    """One vehicle's state at a snapshot instant."""

    vid: int
    position: tuple[float, float]
    is_cav: bool


@dataclass(frozen=True)
class TrafficSnapshot:
    """All vehicle states at one sample time (10 s cadence in the paper)."""

    time_s: float
    vehicles: tuple[VehicleState, ...]

    def cavs(self) -> tuple[VehicleState, ...]:
        return tuple(v for v in self.vehicles if v.is_cav)

    def cavs_near(self, intersection: Intersection, radius_m: float) -> tuple[VehicleState, ...]:
        ix, iy = intersection.position
        return tuple(
            v
            for v in self.cavs()
            if (v.position[0] - ix) ** 2 + (v.position[1] - iy) ** 2 <= radius_m**2
        )


class TrafficSimulation:
    """Vehicles random-walking the grid's road segments.

    Vehicles spawn uniformly over the hour at a random intersection,
    drive along grid roads at a constant per-vehicle speed, turn
    uniformly at intersections, and despawn after their trip time.
    """

    def __init__(self, config: TrafficConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng
        self.intersections = tuple(
            Intersection(
                iid=r * config.grid_cols + c,
                position=(c * config.block_meters, r * config.block_meters),
            )
            for r in range(config.grid_rows)
            for c in range(config.grid_cols)
        )
        n = config.num_vehicles
        self._spawn = np.sort(rng.uniform(0.0, config.duration_s, size=n))
        self._trip_s = rng.uniform(120.0, 900.0, size=n)
        self._speed = rng.uniform(*config.speed_mps, size=n)
        self._is_cav = rng.random(n) < config.cav_fraction
        # Random grid-walk itinerary per vehicle: a start node and a
        # sequence of moves; positions are interpolated along segments.
        self._start_node = rng.integers(0, config.num_intersections, size=n)
        self._routes = [self._random_route(int(s)) for s in self._start_node]

    def _random_route(self, start: int, hops: int = 64) -> np.ndarray:
        cfg = self.config
        route = [start]
        node = start
        for _ in range(hops):
            r, c = divmod(node, cfg.grid_cols)
            moves = []
            if r > 0:
                moves.append(node - cfg.grid_cols)
            if r < cfg.grid_rows - 1:
                moves.append(node + cfg.grid_cols)
            if c > 0:
                moves.append(node - 1)
            if c < cfg.grid_cols - 1:
                moves.append(node + 1)
            prev = route[-2] if len(route) >= 2 else None
            if len(moves) > 1 and prev in moves:
                moves.remove(prev)  # avoid immediate U-turns when possible
            node = int(self.rng.choice(moves))
            route.append(node)
        return np.array(route)

    def _position(self, vid: int, t: float) -> tuple[float, float] | None:
        """Vehicle position at absolute time t, or None if not on road."""
        cfg = self.config
        spawn = self._spawn[vid]
        if t < spawn or t > spawn + self._trip_s[vid] or t > cfg.duration_s:
            return None
        distance = (t - spawn) * self._speed[vid]
        route = self._routes[vid]
        seg, offset = divmod(distance, cfg.block_meters)
        seg = int(seg)
        if seg >= len(route) - 1:
            return None  # route exhausted; vehicle has left the area
        a, b = route[seg], route[seg + 1]
        ar, ac = divmod(int(a), cfg.grid_cols)
        br, bc = divmod(int(b), cfg.grid_cols)
        frac = offset / cfg.block_meters
        x = (ac + (bc - ac) * frac) * cfg.block_meters
        y = (ar + (br - ar) * frac) * cfg.block_meters
        return (float(x), float(y))

    def snapshot(self, t: float) -> TrafficSnapshot:
        """Vehicle states at time ``t``."""
        states = []
        for vid in range(self.config.num_vehicles):
            pos = self._position(vid, t)
            if pos is not None:
                states.append(VehicleState(vid=vid, position=pos, is_cav=bool(self._is_cav[vid])))
        return TrafficSnapshot(time_s=t, vehicles=tuple(states))

    def snapshots(self) -> list[TrafficSnapshot]:
        """The full trace at the configured sampling cadence."""
        return [self.snapshot(float(t)) for t in self.config.snapshot_times()]
