"""Command-line interface mirroring the paper artifact's main.py workflow.

Subcommands (Artifact Appendix A.5-A.6):

* ``train``       — train a GiPH policy on synthetic data and save a run
                    directory with model checkpoints and episodic stats;
* ``test``        — load a checkpoint and evaluate it on fresh test cases
                    against random / HEFT references;
* ``generate``    — sample task graphs and device networks and describe
                    them (the Generate_data.ipynb equivalent);
* ``experiment``  — run one of the paper's table/figure experiments,
                    on a selectable execution backend;
* ``serve``       — long-lived placement daemon answering JSON-lines
                    requests over a local socket (see repro.serve);
* ``load``        — seeded many-tenant load generator against the
                    daemon, reporting p50/p99 latency and req/s;
* ``shard``       — plan/run/merge an experiment split across processes
                    or machines (file-based transport, see repro.shard);
* ``trace``       — render the telemetry span tree of a run's JSONL
                    event log(s) (see repro.telemetry);
* ``bench``       — fold the per-PR benchmark JSON files into one
                    trajectory table and gate perf regressions;
* ``lint``        — AST invariant analysis over the source tree: RNG
                    discipline, telemetry purity, canonical JSON,
                    fan-out pickle safety (see repro.analysis).

Status/progress lines go to stderr through the ``REPRO_LOG`` leveled
logger (debug|info|quiet); stdout carries only primary results.

Usage:  python -m repro train --episodes 50 --logdir runs
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from .telemetry import log

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GiPH reproduction: train/evaluate placement policies",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a GiPH policy on synthetic data")
    train.add_argument("--episodes", type=int, default=50)
    train.add_argument("--num-tasks", type=int, default=12)
    train.add_argument("--num-devices", type=int, default=6)
    train.add_argument("--train-graphs", type=int, default=8)
    train.add_argument("--embedding", default="giph",
                       help="giph | giph-<k> | giph-ne | graphsage-ne | giph-ne-pol")
    train.add_argument("--objective", default="makespan",
                       choices=["makespan", "total-cost", "energy"])
    train.add_argument("--lr", type=float, default=0.01)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--logdir", default="runs")
    train.add_argument("--batch-episodes", type=int, default=1, metavar="K",
                       help="episodes per gradient update; K>1 collects them "
                            "against snapshot weights (K=1: serial semantics)")
    train.add_argument("--workers", type=int, default=1,
                       help="processes collecting batched episodes (needs "
                            "--batch-episodes > 1 to fan out; 0 = all CPUs)")

    test = sub.add_parser("test", help="evaluate a saved policy on fresh cases")
    test.add_argument("--run-folder", required=True,
                      help="run directory created by `repro train`")
    test.add_argument("--num-testing-cases", type=int, default=20)
    test.add_argument("--noise", type=float, default=0.0)
    test.add_argument("--seed", type=int, default=1)
    test.add_argument("--workers", type=int, default=1,
                      help="evaluate test cases on this many processes "
                           "(results are worker-count independent; 0 = all CPUs)")

    gen = sub.add_parser("generate", help="sample and describe synthetic data")
    gen.add_argument("--num-tasks", type=int, default=12)
    gen.add_argument("--num-devices", type=int, default=6)
    gen.add_argument("--count", type=int, default=3)
    gen.add_argument("--seed", type=int, default=0)

    # Help strings are generated from the experiments registry (ids and
    # which run() signatures accept `workers`), so they cannot go stale
    # the way a hand-maintained list did.
    from .experiments.registry import (
        EXPERIMENT_IDS,
        parallel_experiment_ids,
        serial_experiment_ids,
    )

    exp = sub.add_parser("experiment", help="run a paper table/figure experiment")
    exp.add_argument("id", help="|".join(EXPERIMENT_IDS))
    exp.add_argument("--scale", default=None, choices=["quick", "paper"])
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument("--workers", type=int, default=1,
                     help="worker processes fanning out the experiment's "
                          f"train/eval grid ({', '.join(parallel_experiment_ids())}; "
                          f"serial by design: {', '.join(serial_experiment_ids())}); "
                          "results are worker-count independent (0 = all CPUs)")
    exp.add_argument("--backend", default=None, choices=["inline", "fork", "shard"],
                     help="execution backend (default: inline at --workers 1, fork "
                          "otherwise); an explicit 'fork' without --workers uses all "
                          "CPUs; 'shard' plans/runs/merges locally in one go — "
                          "reports are backend-independent")
    exp.add_argument("--shards", type=int, default=2,
                     help="shard count for --backend shard")
    exp.add_argument("--out", default=None,
                     help="plan directory for --backend shard "
                          "(default: runs/shards/<id>-seed<seed>-<scale>)")
    exp.add_argument("--json", default=None, metavar="PATH",
                     help="also write the report JSON to PATH: the canonical "
                          "(byte-stable) report plus a 'runtime' key holding "
                          "volatile timings, metrics registry counters, and "
                          "store/trace-cache hit rates")

    shard = sub.add_parser(
        "shard", help="split an experiment across processes/machines (repro.shard)"
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)
    plan = shard_sub.add_parser("plan", help="write N shard manifests for a run")
    plan.add_argument("id", help="|".join(parallel_experiment_ids()))
    plan.add_argument("--shards", type=int, required=True)
    plan.add_argument("--seed", type=int, default=0)
    plan.add_argument("--scale", default=None, choices=["quick", "paper"])
    plan.add_argument("--out", default=None,
                      help="plan directory (default: runs/shards/<id>-seed<seed>-<scale>)")
    plan.add_argument("--store", default=None,
                      help="result store directory (default: <out>/store; relative "
                           "paths resolve against the manifest location)")
    srun = shard_sub.add_parser("run", help="execute one shard manifest")
    srun.add_argument("manifest", help="path to a shard-*.json manifest")
    srun.add_argument("--workers", type=int, default=1,
                      help="processes fanning out this shard's own cells (0 = all CPUs)")
    srun.add_argument("--missing", default="compute", choices=["compute", "wait"],
                      help="unowned cells absent from the store: compute them too "
                           "(default, self-healing) or wait for peer shards to "
                           "publish them (strict work partitioning)")
    srun.add_argument("--wait-timeout", type=float, default=3600.0, metavar="SECONDS",
                      help="give up waiting for peer cells after this long")
    merge = shard_sub.add_parser(
        "merge", help="merge a completed shard set into the final report"
    )
    merge.add_argument("manifests", nargs="+",
                       help="manifest file(s) or the plan directory")
    merge.add_argument("--json", default=None, metavar="PATH",
                       help="also write the report's canonical JSON to PATH")

    trace = sub.add_parser(
        "trace", help="render a run's telemetry span tree (see repro.telemetry)"
    )
    trace.add_argument("target", nargs="?", default="runs/trace",
                       help="a telemetry JSONL log, a run/store directory "
                            "(shard logs under telemetry/ are merged), or a "
                            "directory of logs — newest taken (default: runs/trace)")
    trace.add_argument("--top", type=int, default=None, metavar="N",
                       help="also print the N hottest spans by self time")
    trace.add_argument("--export", default=None, choices=["chrome"],
                       help="additionally write a Chrome trace-event JSON "
                            "(load in chrome://tracing or Perfetto)")
    trace.add_argument("--out", default=None, metavar="PATH",
                       help="output path for --export (default: next to the target)")

    bench = sub.add_parser(
        "bench", help="inspect the recorded per-PR benchmark trajectory"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    breport = bench_sub.add_parser(
        "report",
        help="fold results/BENCH_pr*.json into one trajectory table "
             "(optionally gating regressions)",
    )
    breport.add_argument("--results-dir", default="results",
                         help="directory holding BENCH_pr*.json files")
    breport.add_argument("--check", action="store_true",
                         help="exit non-zero if the newest file regresses any "
                              "tracked row vs the baseline beyond --tolerance, "
                              "or the episode hot-path speedup is below "
                              "--min-episode-speedup")
    breport.add_argument("--baseline", default=None, metavar="PR",
                         help="PR number to compare the newest file against "
                              "(default: the second-newest file)")
    breport.add_argument("--tolerance", type=float, default=0.20,
                         help="allowed fractional wall-clock growth per row "
                              "before --check fails (default: 0.20)")
    breport.add_argument("--min-episode-speedup", type=float, default=3.0,
                         help="minimum recorded episode_hot_path speedup for "
                              "--check (default: 3.0)")

    scen = sub.add_parser(
        "scenario", help="replay a dynamic-cluster scenario (see repro.scenarios)"
    )
    scen.add_argument("action", nargs="?", choices=["list", "run"], default="list",
                      help="'list' registered presets or 'run' one")
    scen.add_argument("name", nargs="?", help="preset name (required for run)")
    scen.add_argument("--list", action="store_true", dest="list_presets",
                      help="list registered scenario presets")
    scen.add_argument("--policy", action="append", dest="policies",
                      choices=["random", "task-eft", "heft", "rnn-placer"],
                      help="policy to replay (repeatable; default: random + task-eft)")
    scen.add_argument("--seed", type=int, default=None,
                      help="override the preset's seed")
    scen.add_argument("--events", action="store_true",
                      help="print the materialized event stream before replaying")
    scen.add_argument("--cold-evaluators", action="store_true",
                      help="disable cross-event evaluator reuse (benchmark mode)")
    scen.add_argument("--workers", type=int, default=1,
                      help="replay policies on this many processes "
                           "(reports are worker-count independent; 0 = all CPUs)")
    scen.add_argument("--max-events", type=int, default=None, metavar="N",
                      help="truncate the materialized event stream to its first "
                           "N events (untruncated prefixes replay identically)")
    scen.add_argument("--no-oracle", action="store_true",
                      help="skip the fresh-search oracle (regret reported as 0; "
                           "pure-throughput replays)")

    serve = sub.add_parser(
        "serve", help="run the placement daemon (see repro.serve)"
    )
    serve.add_argument("--socket", default="runs/serve.sock",
                       help="AF_UNIX socket path to listen on")
    serve.add_argument("--agent", default=None, metavar="AGENT_NPZ",
                       help="trained agent checkpoint to load once and serve "
                            "as policy 'giph'")
    serve.add_argument("--episode-multiplier", type=int, default=2,
                       help="default search budget per re-placement, in units "
                            "of the graph's task count")
    serve.add_argument("--batch-wait-ms", type=float, default=2.0,
                       help="request-batcher coalescing window")
    serve.add_argument("--max-batch", type=int, default=256,
                       help="request-batcher batch size cap")
    serve.add_argument("--oracle", action="store_true",
                       help="sessions compute oracle/regret by default "
                            "(requests may still override per session)")
    serve.add_argument("--trace-log", default=None, metavar="PATH",
                       help="telemetry JSONL written on shutdown "
                            "(default: runs/trace/serve-<stamp>.jsonl; "
                            "inspect with `repro trace`)")
    serve.add_argument("--seed", type=int, default=0,
                       help="root seed for the daemon's derived policy "
                            "streams (sessions re-derive per tenant)")

    load = sub.add_parser(
        "load", help="drive the daemon with seeded many-tenant load (repro.serve.load)"
    )
    load.add_argument("--socket", default="runs/serve.sock",
                      help="daemon socket path (start one with `repro serve`)")
    load.add_argument("--scenario", action="append", dest="scenarios", metavar="NAME",
                      help="scenario preset tenants replay, round-robin "
                           "(repeatable; default: stable-cluster)")
    load.add_argument("--policy", default="task-eft",
                      help="policy every tenant's session runs")
    load.add_argument("--clients", type=int, default=4,
                      help="concurrent tenant sessions")
    load.add_argument("--events", type=int, default=None, metavar="N",
                      help="events per tenant (default: the full stream)")
    load.add_argument("--seed", type=int, default=0,
                      help="base seed; tenant i replays at seed+i")
    load.add_argument("--client-backend", default="thread",
                      choices=["thread", "fork", "inline"],
                      help="how tenants fan out: threads (default), client "
                           "processes, or serially")
    load.add_argument("--compare-cold", action="store_true",
                      help="also time a cold one-event `repro scenario run` "
                           "subprocess and report the warm-p50 speedup")
    load.add_argument("--bench-json", default=None, metavar="PATH",
                      help="merge the summary into this BENCH json "
                           "(e.g. results/BENCH_pr9.json)")
    load.add_argument("--json", default=None, metavar="PATH",
                      help="also write the full summary JSON to PATH")

    lint = sub.add_parser(
        "lint", help="AST invariant analysis over the source tree (repro.analysis)"
    )
    lint.add_argument("--rule", action="append", dest="rules", metavar="RULE_ID",
                      help="run only this rule (repeatable; default: all)")
    lint.add_argument("--baseline", default="apply",
                      choices=["apply", "update", "ignore"],
                      help="apply the tracked baseline (default), rewrite it "
                           "from current findings, or report everything")
    lint.add_argument("--baseline-file", default=None, metavar="PATH",
                      help="baseline JSON (default: <repo>/lint-baseline.json)")
    lint.add_argument("--json", default=None, metavar="PATH",
                      help="write the full findings payload to PATH "
                           "(CI uploads this as an artifact)")
    lint.add_argument("--root", default=None, metavar="DIR",
                      help="package directory to lint (default: the installed "
                           "repro package)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule portfolio and exit")
    lint.add_argument("--verbose", action="store_true",
                      help="also list baselined and suppressed findings")

    return parser


def _objective(name: str):
    from .sim import EnergyObjective, MakespanObjective, TotalCostObjective

    return {
        "makespan": MakespanObjective(),
        "total-cost": TotalCostObjective(),
        "energy": EnergyObjective(),
    }[name]


def _problems(num_tasks: int, num_devices: int, count: int, rng: np.random.Generator):
    from .core import PlacementProblem
    from .devices import DeviceNetworkParams, generate_device_network
    from .graphs import TaskGraphParams, generate_task_graph

    out = []
    for _ in range(count):
        graph = generate_task_graph(TaskGraphParams(num_tasks=num_tasks), rng)
        network = generate_device_network(DeviceNetworkParams(num_devices=num_devices), rng)
        out.append(PlacementProblem(graph, network))
    return out


def cmd_train(args: argparse.Namespace) -> int:
    from .core import GiPHAgent, ReinforceConfig, ReinforceTrainer
    from .core.serialization import save_agent

    rng = np.random.default_rng(args.seed)
    problems = _problems(args.num_tasks, args.num_devices, args.train_graphs, rng)
    agent = GiPHAgent(rng, embedding=args.embedding)
    config = ReinforceConfig(learning_rate=args.lr, episodes=args.episodes)
    trainer = ReinforceTrainer(agent, _objective(args.objective), config)

    stamp = time.strftime("%Y-%m-%d_%H-%M-%S")
    run_dir = pathlib.Path(args.logdir) / f"{stamp}_{args.embedding}"
    run_dir.mkdir(parents=True, exist_ok=True)

    from .parallel import resolve_workers

    workers = resolve_workers(args.workers)
    log.info(f"training {args.embedding} for {args.episodes} episodes "
             f"({args.train_graphs} graphs of {args.num_tasks} tasks on "
             f"{args.num_devices} devices"
             + (f"; batches of {args.batch_episodes} on {workers} workers"
                if args.batch_episodes > 1 else "") + ")")
    trainer.train(problems, rng, callback=lambda s: log.info(
        f"episode {s.episode:4d}: reward {s.total_reward:+9.3f} "
        f"best {s.best_value:9.3f}"
    ) if s.episode % max(args.episodes // 10, 1) == 0 else None,
        batch_size=args.batch_episodes, workers=workers)

    save_agent(agent, run_dir / "agent.npz")
    history = [
        {
            "episode": s.episode,
            "initial": s.initial_value,
            "final": s.final_value,
            "best": s.best_value,
            "reward": s.total_reward,
        }
        for s in trainer.history
    ]
    (run_dir / "train_data.json").write_text(json.dumps(history, indent=1))
    (run_dir / "args.json").write_text(json.dumps(vars(args), indent=1))
    log.info(f"saved run to {run_dir}")
    print(run_dir)
    return 0


def cmd_test(args: argparse.Namespace) -> int:
    from .baselines.giph_policy import GiPHSearchPolicy
    from .core.serialization import load_agent
    from .experiments.runner import HeftPolicy, evaluate_policies
    from .parallel import resolve_workers
    from .sim import cp_min_lower_bound

    run_dir = pathlib.Path(args.run_folder)
    train_args = json.loads((run_dir / "args.json").read_text())
    rng = np.random.default_rng(args.seed)
    agent = load_agent(run_dir / "agent.npz", rng)

    problems = _problems(
        train_args["num_tasks"], train_args["num_devices"], args.num_testing_cases, rng
    )
    # The case loop rides the shared evaluation harness: every case gets
    # a derived seed stream (noise included — a per-(case, policy) noise
    # stream instead of one shared mutable rng), and --workers fans the
    # cases out with worker-count-independent results.
    result = evaluate_policies(
        {"giph": GiPHSearchPolicy(agent), "heft": HeftPolicy()},
        problems,
        rng,
        noise=args.noise,
        workers=resolve_workers(args.workers),
    )

    rows = []
    for i, problem in enumerate(problems):
        bound = cp_min_lower_bound(problem.cost_model)
        initial = result.traces["giph"][i].values[0] / bound
        rows.append((initial, result.finals["giph"][i], result.finals["heft"][i]))
        print(f"case {i:3d}: initial SLR {rows[-1][0]:6.2f}  "
              f"giph {rows[-1][1]:6.2f}  heft {rows[-1][2]:6.2f}")
    arr = np.array(rows)
    print(f"\nmean over {len(problems)} cases: initial {arr[:,0].mean():.3f}  "
          f"giph {arr[:,1].mean():.3f}  heft {arr[:,2].mean():.3f}")

    test_dir = run_dir / f"test_{time.strftime('%Y-%m-%d_%H-%M-%S')}"
    test_dir.mkdir(exist_ok=True)
    (test_dir / "eval_data.json").write_text(json.dumps(arr.tolist(), indent=1))
    log.info(f"saved evaluation to {test_dir}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    problems = _problems(args.num_tasks, args.num_devices, args.count, rng)
    for i, p in enumerate(problems):
        g, n = p.graph, p.network
        sizes = [len(s) for s in p.feasible_sets]
        print(f"instance {i}: {g!r}")
        print(f"  devices: {n.num_devices}, speeds "
              f"{np.array([d.speed for d in n.devices]).round(2).tolist()}")
        print(f"  action space |A| = {p.num_actions}, "
              f"state space |S| = {p.state_space_size():.0f}")
        print(f"  feasible devices per task: min {min(sizes)}, "
              f"mean {np.mean(sizes):.1f}, max {max(sizes)}")
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    from .scenarios import DEFAULT_REGISTRY, ScenarioRunner, describe_events, format_adaptation_table

    if args.list_presets or args.action == "list":
        print(f"{'name':<24s} {'devices':>7s} {'changes':>7s} {'graphs':>6s}  description")
        for spec in DEFAULT_REGISTRY:
            print(
                f"{spec.name:<24s} {spec.cluster.num_devices:>7d} "
                f"{spec.churn.num_changes:>7d} "
                f"{spec.workload.initial_graphs + spec.workload.total_arrivals:>6d}  "
                f"{spec.description}"
            )
        print("\nrun one with: repro scenario run <name> --policy task-eft")
        return 0

    if not args.name:
        print("error: 'repro scenario run' needs a preset name "
              "(see 'repro scenario --list')")
        return 2
    try:
        spec = DEFAULT_REGISTRY.get(args.name, seed=args.seed)
    except KeyError as error:
        print(f"error: {error.args[0]}")
        return 2
    from .parallel import resolve_workers

    source = spec
    if args.max_events is not None:
        import dataclasses

        from .scenarios.events import materialize

        if args.max_events < 0:
            print("error: --max-events must be >= 0")
            return 2
        full = materialize(spec)
        source = dataclasses.replace(full, events=full.events[: args.max_events])
    runner = ScenarioRunner(
        source,
        reuse_evaluators=not args.cold_evaluators,
        oracle=not args.no_oracle,
    )
    materialized = runner.materialized
    print(f"scenario {spec.name!r} (seed {spec.seed}, objective {spec.objective}): "
          f"{materialized.num_events} events over {spec.num_steps} steps, "
          f"{materialized.initial_network.num_devices} devices, "
          f"{len(materialized.initial_graphs)} initial graphs")
    if spec.description:
        print(f"  {spec.description}")
    if args.events:
        for line in describe_events(materialized.events):
            print(f"  {line}")

    result = runner.run(
        _scenario_policies(args.policies or ["random", "task-eft"]),
        workers=resolve_workers(args.workers),
    )
    for report in result.reports.values():
        print()
        print(format_adaptation_table(report))
    return 0


def _scenario_policies(names: list[str]):
    from .baselines import RandomPlacementPolicy, RandomTaskEftPolicy, RnnPlacerPolicy
    from .experiments.runner import HeftPolicy

    factories = {
        "random": RandomPlacementPolicy,
        "task-eft": RandomTaskEftPolicy,
        "heft": HeftPolicy,
        "rnn-placer": RnnPlacerPolicy,
    }
    return {name: factories[name]() for name in dict.fromkeys(names)}


def cmd_serve(args: argparse.Namespace) -> int:
    from .serve.server import PlacementServer, ServeConfig, install_signal_handlers
    from .telemetry import capture_run, write_run_log

    config = ServeConfig(
        socket_path=args.socket,
        episode_multiplier=args.episode_multiplier,
        batch_wait_ms=args.batch_wait_ms,
        max_batch=args.max_batch,
        oracle=args.oracle,
        agent_path=args.agent,
        seed=args.seed,
    )
    server = PlacementServer(config)
    install_signal_handlers(server)
    meta = {"command": "serve", "socket": args.socket}
    with capture_run(meta) as capture:
        server.serve_forever()
    if capture.delta is not None:
        stamp = time.strftime("%Y-%m-%d_%H-%M-%S")
        path = (pathlib.Path(args.trace_log) if args.trace_log
                else pathlib.Path("runs") / "trace" / f"serve-{stamp}.jsonl")
        write_run_log(path, capture)
        log.info(f"wrote telemetry log to {path} (inspect with: repro trace {path})")
    log.info(f"repro serve: exited after {server.requests_served} request(s)")
    return 0


def cmd_load(args: argparse.Namespace) -> int:
    from .serve.load import LoadConfig, format_load_summary, run_load

    config = LoadConfig(
        socket_path=args.socket,
        scenarios=tuple(args.scenarios or ["stable-cluster"]),
        policy=args.policy,
        clients=args.clients,
        events_per_client=args.events,
        seed=args.seed,
        backend=args.client_backend,
        compare_cold=args.compare_cold,
        bench_path=args.bench_json,
    )
    summary = run_load(config)
    print(format_load_summary(summary))
    if args.json:
        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(summary, indent=1, sort_keys=True) + "\n")
        log.info(f"wrote load summary JSON to {path}")
    return 0


def _load_bench_files(results_dir: pathlib.Path) -> list[tuple[int, dict]]:
    """(pr number, benchmarks dict) for every BENCH_pr*.json, ascending."""
    import re

    out = []
    for path in sorted(results_dir.glob("BENCH_pr*.json")):
        match = re.fullmatch(r"BENCH_pr(\d+)\.json", path.name)
        if not match:
            continue
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError:
            print(f"warning: skipping unreadable {path}")
            continue
        out.append((int(match.group(1)), payload.get("benchmarks", {})))
    out.sort(key=lambda item: item[0])
    return out


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench report``: the perf trajectory across PR files.

    One row per benchmark, one column per ``BENCH_pr<N>.json`` (seconds;
    rows are comparable only where scale matches — mismatched cells are
    flagged).  With ``--check``, the newest file is gated against the
    baseline: any tracked row more than ``--tolerance`` slower fails,
    and the ``episode_hot_path`` record must exist with a speedup of at
    least ``--min-episode-speedup``.
    """
    from .experiments.reporting import format_table

    results_dir = pathlib.Path(args.results_dir)
    files = _load_bench_files(results_dir)
    if not files:
        print(f"error: no BENCH_pr*.json files under {results_dir}")
        return 2

    names = sorted({name for _, benches in files for name in benches})
    newest_pr, newest = files[-1]
    newest_scales = {n: r.get("scale") for n, r in newest.items()}
    rows = []
    for name in names:
        row: list[object] = [name]
        for _, benches in files:
            record = benches.get(name)
            if record is None:
                row.append("-")
            elif record.get("scale") != newest_scales.get(name, record.get("scale")):
                # seconds across scales are not comparable; show but flag
                row.append(f"{record['seconds']:.3f}*")
            else:
                row.append(float(record["seconds"]))
        rows.append(row)
    headers = ["benchmark"] + [f"pr{pr} (s)" for pr, _ in files]
    print(format_table(headers, rows, title="benchmark trajectory (wall-clock seconds)"))
    if any("*" in str(cell) for row in rows for cell in row):
        print("(* = recorded at a different scale than the newest file; not comparable)")

    episode = newest.get("episode_hot_path")
    if episode is not None and "speedup" in episode:
        print(f"\nepisode hot path (pr{newest_pr}): {episode['seconds']:.3f}s vectorized "
              f"vs {episode.get('loop_seconds', float('nan')):.3f}s loop reference "
              f"— {episode['speedup']:.2f}x")

    if not args.check:
        return 0

    failures: list[str] = []
    if args.baseline is not None:
        candidates = [f for f in files if f[0] == int(args.baseline)]
        if not candidates:
            print(f"error: no BENCH_pr{args.baseline}.json under {results_dir}")
            return 2
        base_pr, base = candidates[0]
    elif len(files) >= 2:
        base_pr, base = files[-2]
    else:
        base_pr, base = None, {}

    for name in names:
        old, new = base.get(name), newest.get(name)
        if old is None or new is None or old.get("scale") != new.get("scale"):
            continue
        allowed = old["seconds"] * (1.0 + args.tolerance)
        if new["seconds"] > allowed:
            failures.append(
                f"{name}: {new['seconds']:.3f}s (pr{newest_pr}) vs "
                f"{old['seconds']:.3f}s (pr{base_pr}) exceeds the "
                f"{args.tolerance:.0%} regression budget"
            )
    if episode is None:
        failures.append("episode_hot_path record missing from the newest file")
    elif episode.get("speedup", 0.0) < args.min_episode_speedup:
        failures.append(
            f"episode_hot_path speedup {episode.get('speedup', 0.0):.2f}x is below "
            f"the required {args.min_episode_speedup:.1f}x"
        )
    if failures:
        print("\nbench check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    baseline_note = f" vs pr{base_pr}" if base_pr is not None else " (no baseline file)"
    print(f"\nbench check passed{baseline_note}")
    return 0


def _shard_dir(experiment: str, seed: int, scale) -> pathlib.Path:
    return pathlib.Path("runs") / "shards" / f"{experiment}-seed{seed}-{scale.name}"


def _write_report_json(path: pathlib.Path, report, trace_path=None) -> None:
    """The ``--json`` payload: canonical report + a ``runtime`` section.

    ``report.to_json()`` stays byte-stable across runs/backends (the
    shard-merge equality); everything run-dependent — volatile report
    fields, the metrics registry (store/trace-cache hit counters,
    evaluator totals, gnn counters), the telemetry log path — rides in
    the separate ``runtime`` key.  Consumers comparing payloads across
    runs should drop that key first.
    """
    from .telemetry import metrics

    payload = json.loads(report.to_json())
    snapshot = metrics().snapshot()
    runtime = {
        "volatile_data": report.volatile_data(),
        "metrics": snapshot.as_dict(),
        "store": {
            name.split(".", 1)[1]: value
            for name, value in snapshot.counters.items()
            if name.startswith("store.")
        },
    }
    if trace_path is not None:
        runtime["telemetry_log"] = str(trace_path)
    payload["runtime"] = runtime
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    log.info(f"wrote report JSON to {path}")


def _write_trace_log(capture, experiment: str, seed: int, scale) -> pathlib.Path | None:
    """Persist a CLI run's telemetry under ``runs/trace`` (None if disabled)."""
    from .telemetry import write_run_log

    if capture.delta is None:
        return None
    stamp = time.strftime("%Y-%m-%d_%H-%M-%S")
    path = (pathlib.Path("runs") / "trace"
            / f"{experiment}-seed{seed}-{scale.name}-{stamp}.jsonl")
    write_run_log(path, capture)
    log.info(f"wrote telemetry log to {path} (inspect with: repro trace {path})")
    return path


def _run_sharded_locally(args: argparse.Namespace, scale) -> int:
    """``--backend shard``: plan, run every shard, merge — one process."""
    from .shard import merge_shards, plan, run_shard

    out = pathlib.Path(args.out) if args.out else _shard_dir(args.id, args.seed, scale)
    manifests = plan(args.id, args.shards, args.seed, scale, out)
    log.info(f"planned {len(manifests)} shard(s) under {out}")
    for path in manifests:
        run_shard(path, workers=args.workers)
        log.info(f"ran {path.name}")
    report = merge_shards([out])
    print(report.text)
    log.info(f"shard telemetry logs under {out}/store/telemetry "
             f"(inspect with: repro trace {out}/store)")
    if args.json:
        _write_report_json(pathlib.Path(args.json), report)
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import PAPER, QUICK, active_scale
    from .experiments.registry import (
        UnknownExperimentError,
        get_module,
        supports_workers,
    )
    from .parallel import ForkBackend, InlineBackend, resolve_workers

    try:
        module = get_module(args.id)
    except UnknownExperimentError as error:
        print(f"error: {error.message}")
        return 2
    scale = {"quick": QUICK, "paper": PAPER}.get(args.scale) if args.scale else active_scale()
    serial_by_design = not supports_workers(args.id)
    if args.backend is not None and serial_by_design:
        print(f"error: experiment {args.id!r} runs serially by design; "
              "--backend does not apply")
        return 2
    if args.backend == "shard":
        try:
            return _run_sharded_locally(args, scale)
        except (RuntimeError, ValueError) as error:
            print(f"error: {error}")
            return 2
    kwargs = {}
    # Experiments with an embarrassingly parallel grid accept `workers`
    # and `backend`; table1 (constants) and table7 (wall-clock timing)
    # are serial by design.
    if not serial_by_design:
        kwargs["workers"] = resolve_workers(args.workers)
        if args.backend == "inline":
            kwargs["backend"] = InlineBackend()
        elif args.backend == "fork":
            # An explicit fork request with --workers left at its serial
            # default means "use the machine": ForkBackend(None) = all
            # CPUs.  ForkBackend(1) would silently run inline.
            kwargs["backend"] = ForkBackend(
                None if args.workers == 1 else resolve_workers(args.workers)
            )
    elif args.workers not in (None, 1):
        print(f"note: experiment {args.id!r} runs serially by design; --workers ignored")
    from .telemetry import capture_run, span

    meta = {"experiment": args.id, "seed": args.seed, "scale": scale.name}
    with capture_run(meta) as capture:
        with span(f"experiment.{args.id}"):
            report = module.run(scale, seed=args.seed, **kwargs)
    trace_path = _write_trace_log(capture, args.id, args.seed, scale)
    print(report.text)
    if args.json:
        _write_report_json(pathlib.Path(args.json), report, trace_path)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: merged span tree + hotspots + Chrome export."""
    from .telemetry import (
        collect_run_files,
        export_chrome,
        read_records,
        render_top,
        render_tree,
    )

    target = pathlib.Path(args.target)
    try:
        files = collect_run_files(target)
    except FileNotFoundError as error:
        print(f"error: {error}")
        return 2
    records = read_records(files)
    if not any(r.get("kind") in ("run", "span") for r in records):
        print(f"error: no telemetry records in {', '.join(str(f) for f in files)} "
              "(was the run executed with REPRO_TELEMETRY=off?)")
        return 2
    log.info("merging " + ", ".join(str(f) for f in files))
    print(render_tree(records))
    if args.top:
        print()
        print(render_top(records, args.top))
    if args.export == "chrome":
        if args.out:
            out = pathlib.Path(args.out)
        elif target.is_file():
            out = target.with_suffix(".chrome.json")
        else:
            out = target / "trace.chrome.json"
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(export_chrome(records)) + "\n")
        print(f"wrote Chrome trace to {out}")
    return 0


def cmd_shard(args: argparse.Namespace) -> int:
    from .parallel.backends import ExecutionBackendError
    from .shard import StaleManifestError

    try:
        if args.shard_command == "plan":
            return _cmd_shard_plan(args)
        if args.shard_command == "run":
            return _cmd_shard_run(args)
        return _cmd_shard_merge(args)
    except (StaleManifestError, ExecutionBackendError, ValueError) as error:
        print(f"error: {error}")
        return 2


def _cmd_shard_plan(args: argparse.Namespace) -> int:
    from .experiments import PAPER, QUICK, active_scale
    from .experiments.registry import UnknownExperimentError, get_module
    from .shard import plan

    try:
        get_module(args.id)
    except UnknownExperimentError as error:
        print(f"error: {error.message}")
        return 2
    scale = {"quick": QUICK, "paper": PAPER}.get(args.scale) if args.scale else active_scale()
    out = pathlib.Path(args.out) if args.out else _shard_dir(args.id, args.seed, scale)
    manifests = plan(args.id, args.shards, args.seed, scale, out, store=args.store)
    print(f"planned {args.id} (seed {args.seed}, scale {scale.name}) "
          f"into {len(manifests)} shard(s):")
    for path in manifests:
        print(f"  {path}")
    print(f"run each (any order, any machine sharing {manifests[0].parent}/store):")
    print(f"  repro shard run {manifests[0]}")
    print("then merge:")
    print(f"  repro shard merge {manifests[0].parent}")
    return 0


def _cmd_shard_run(args: argparse.Namespace) -> int:
    from .shard import load_manifest, run_shard

    # Parsed before running so the completion message reflects the plan
    # as it stood at launch (run_shard re-validates from disk itself).
    manifest = load_manifest(args.manifest)
    run_shard(
        args.manifest,
        workers=args.workers,
        missing=args.missing,
        wait_timeout_s=args.wait_timeout,
    )
    store = manifest.store_path(pathlib.Path(args.manifest))
    print(f"shard {manifest.shard_index + 1}/{manifest.num_shards} of "
          f"{manifest.experiment} (seed {manifest.seed}, scale {manifest.scale.name}) "
          f"complete; results published to {store}")
    log.info(f"telemetry + progress logs under {store}/telemetry "
             f"(inspect with: repro trace {store})")
    return 0


def _cmd_shard_merge(args: argparse.Namespace) -> int:
    from .shard import merge_shards

    report = merge_shards(args.manifests)
    print(report.text)
    if args.json:
        _write_report_json(pathlib.Path(args.json), report)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import (
        ALL_RULES,
        findings_payload,
        render_text,
        run_lint,
    )

    if args.list_rules:
        for factory in ALL_RULES.values():
            rule = factory()
            print(f"{rule.id:24s} {rule.title}")
            print(f"{'':24s} protects: {rule.protects}")
        return 0
    try:
        result = run_lint(
            root=args.root,
            rule_ids=args.rules,
            baseline_path=args.baseline_file,
            baseline_mode=args.baseline,
        )
    except KeyError as exc:
        log.warn(f"repro lint: {exc.args[0]}")
        return 2
    except SyntaxError as exc:
        log.warn(f"repro lint: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}")
        return 2
    print(render_text(result, verbose=args.verbose))
    if args.json:
        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(findings_payload(result), indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        log.info(f"wrote findings JSON to {path}")
    if args.baseline == "update":
        log.info(f"baseline rewritten with {len(result.baselined)} entry(ies); "
                 "fill in placeholder justifications before committing")
    return 0 if result.clean else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "train": cmd_train,
        "test": cmd_test,
        "generate": cmd_generate,
        "experiment": cmd_experiment,
        "scenario": cmd_scenario,
        "serve": cmd_serve,
        "load": cmd_load,
        "shard": cmd_shard,
        "trace": cmd_trace,
        "bench": cmd_bench,
        "lint": cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
