"""GiPH core: gpNet representation, MDP, GNN variants, policy, training.

The primary public surface of the library:

>>> from repro.core import GiPHAgent, PlacementProblem, ReinforceTrainer, run_search
"""

from .agent import GiPHAgent
from .env import EnvState, PlacementEnv, default_episode_length
from .features import (
    EDGE_FEATURE_DIM,
    NODE_FEATURE_DIM,
    FeatureConfig,
    GpNetBuilder,
    GpNetStructure,
    structure_of,
)
from .gnn import (
    GnnStats,
    GpNetEmbedding,
    GraphSageNoEdge,
    KStepMessagePassing,
    RawFeatureEmbedding,
    TwoWayMessagePassing,
    TwoWayNoEdge,
    augment_with_out_edge_means,
    gnn_stats,
    make_embedding,
    reference_path,
)
from .gpnet import GpNet, build_gpnet
from .placement import (
    PlacementProblem,
    greedy_fastest_device_placement,
    random_placement,
)
from .policy import ScorePolicy
from .reinforce import (
    EpisodeStats,
    ReinforceConfig,
    ReinforceTrainer,
    average_reward_baseline,
    discounted_returns,
)
from .search import SearchTrace, run_search
from .stopping import (
    CombinedCriterion,
    FixedBudget,
    Patience,
    RelativeImprovement,
    StoppingCriterion,
    TargetValue,
)

__all__ = [
    "GiPHAgent",
    "EnvState",
    "PlacementEnv",
    "default_episode_length",
    "FeatureConfig",
    "GpNetBuilder",
    "GpNetStructure",
    "structure_of",
    "NODE_FEATURE_DIM",
    "EDGE_FEATURE_DIM",
    "GpNet",
    "build_gpnet",
    "GpNetEmbedding",
    "GnnStats",
    "gnn_stats",
    "reference_path",
    "TwoWayMessagePassing",
    "KStepMessagePassing",
    "TwoWayNoEdge",
    "GraphSageNoEdge",
    "RawFeatureEmbedding",
    "augment_with_out_edge_means",
    "make_embedding",
    "PlacementProblem",
    "random_placement",
    "greedy_fastest_device_placement",
    "ScorePolicy",
    "ReinforceConfig",
    "ReinforceTrainer",
    "EpisodeStats",
    "discounted_returns",
    "average_reward_baseline",
    "SearchTrace",
    "run_search",
    "StoppingCriterion",
    "FixedBudget",
    "Patience",
    "RelativeImprovement",
    "TargetValue",
    "CombinedCriterion",
]
