"""The GiPH placement agent: GNN embedding + score policy (paper Fig. 3)."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..nn import Parameter, Tensor, no_grad
from .env import EnvState, PlacementEnv
from .gnn import GpNetEmbedding, make_embedding
from .policy import ScorePolicy

__all__ = ["GiPHAgent"]


class GiPHAgent:
    """Selects task-relocation actions from gpNet states.

    Parameters
    ----------
    embedding: a :class:`GpNetEmbedding` (or a ``kind`` string for
        :func:`repro.core.gnn.make_embedding`).
    rng: random source for parameter init and action sampling.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        embedding: GpNetEmbedding | str = "giph",
        policy_hidden: int = 16,
    ) -> None:
        if isinstance(embedding, str):
            embedding = make_embedding(embedding, rng)
        self.embedding = embedding
        self.policy = ScorePolicy(embedding.out_dim, rng, hidden_dim=policy_hidden)
        self.rng = rng

    def parameters(self) -> Iterator[Parameter]:
        yield from self.embedding.parameters()
        yield from self.policy.parameters()

    def zero_grad(self) -> None:
        self.embedding.zero_grad()
        self.policy.zero_grad()

    def state_dict(self) -> dict[str, np.ndarray]:
        state = {f"embedding.{k}": v for k, v in self.embedding.state_dict().items()}
        state.update({f"policy.{k}": v for k, v in self.policy.state_dict().items()})
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self.embedding.load_state_dict(
            {k[len("embedding.") :]: v for k, v in state.items() if k.startswith("embedding.")}
        )
        self.policy.load_state_dict(
            {k[len("policy.") :]: v for k, v in state.items() if k.startswith("policy.")}
        )

    # -- acting ---------------------------------------------------------------

    def act(
        self, env: PlacementEnv, state: EnvState, greedy: bool = False
    ) -> tuple[int, Tensor]:
        """Choose a gpNet node (action); returns (node, log-prob tensor)."""
        embeddings = self.embedding(state.gpnet)
        mask = env.action_mask(state)
        return self.policy.sample(embeddings, mask, self.rng, greedy=greedy)

    def act_inference(self, env: PlacementEnv, state: EnvState, greedy: bool = False) -> int:
        """Action selection without building an autograd graph (evaluation)."""
        with no_grad():
            action, _ = self.act(env, state, greedy=greedy)
        return action
