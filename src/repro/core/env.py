"""The placement-search MDP (paper §4.1) with GiPH's action masks (§4.2.3).

States are feasible placements; an action (v_i, d_j) relocates task v_i
onto device d_j; the reward is the objective improvement
ρ(s_t) − ρ(s_{t+1}) (lower objective = better placement, so positive
reward means the move helped).

All scoring flows through a :class:`repro.runtime.PlacementEvaluator`
(one noise-free timeline per state is shared between the objective and
gpNet feature construction, and repeat placements hit its LRU cache);
``step`` rebuilds the gpNet incrementally via
:meth:`GpNetBuilder.update` since only one task moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..runtime.evaluator import PlacementEvaluator
from ..sim.objectives import Objective
from .features import FeatureConfig, GpNetBuilder
from .gpnet import GpNet
from .placement import PlacementProblem, random_placement

__all__ = ["EnvState", "PlacementEnv", "default_episode_length"]


def default_episode_length(problem: PlacementProblem) -> int:
    """2·|V| steps — empirically enough to converge (paper §5)."""
    return 2 * problem.graph.num_tasks


@dataclass(frozen=True)
class EnvState:
    """One MDP state: the placement plus its gpNet view and score."""

    placement: tuple[int, ...]
    gpnet: GpNet
    objective_value: float
    last_moved_task: int | None
    step: int

    @property
    def num_actions(self) -> int:
        return self.gpnet.num_nodes


class PlacementEnv:
    """Search MDP for one problem instance.

    Parameters
    ----------
    problem: the (G, N) instance.
    objective: performance criterion ρ (lower is better).
    episode_length: steps per episode (default 2·|V|).
    feature_config: gpNet feature options.
    mask_no_ops: mask actions equal to the current placement (pivots).
    mask_repeat_task: mask relocating the task moved in the previous step.
    evaluator: a shared :class:`PlacementEvaluator` for this (problem,
        objective) pair — pass one to pool its caches across envs (e.g.
        across training episodes); a private one is created otherwise.
    builder: a shared :class:`GpNetBuilder` for this problem — its
        per-instance precompute (static features, edge-block layout) is
        paid once when reused across episodes; created privately
        otherwise.  Must match ``feature_config`` when both are given.
    """

    def __init__(
        self,
        problem: PlacementProblem,
        objective: Objective,
        episode_length: int | None = None,
        feature_config: FeatureConfig | None = None,
        mask_no_ops: bool = True,
        mask_repeat_task: bool = True,
        evaluator: PlacementEvaluator | None = None,
        builder: GpNetBuilder | None = None,
    ) -> None:
        self.problem = problem
        self.objective = objective
        self.episode_length = episode_length or default_episode_length(problem)
        if self.episode_length < 1:
            raise ValueError("episode_length must be >= 1")
        if evaluator is None:
            evaluator = PlacementEvaluator(problem, objective)
        elif evaluator.problem is not problem or evaluator.objective is not objective:
            raise ValueError("evaluator must be bound to this env's problem and objective")
        self.evaluator = evaluator
        if builder is None:
            builder = GpNetBuilder(problem, feature_config)
        elif builder.problem is not problem or builder.config != (
            feature_config or FeatureConfig()
        ):
            raise ValueError("builder must be bound to this env's problem and feature config")
        self.builder = builder
        self.mask_no_ops = mask_no_ops
        self.mask_repeat_task = mask_repeat_task
        self._state: EnvState | None = None

    # -- episode control -----------------------------------------------------------

    def reset(
        self,
        initial_placement: Sequence[int] | None = None,
        rng: np.random.Generator | None = None,
    ) -> EnvState:
        """Start an episode from ``initial_placement`` (or a random one)."""
        if initial_placement is None:
            if rng is None:
                raise ValueError("reset needs either an initial placement or an rng")
            initial_placement = random_placement(self.problem, rng)
        placement = self.problem.validate_placement(initial_placement)
        self._state = self._make_state(placement, last_moved=None, step=0)
        return self._state

    @property
    def state(self) -> EnvState:
        if self._state is None:
            raise RuntimeError("call reset() before accessing the state")
        return self._state

    def _make_state(
        self,
        placement: tuple[int, ...],
        last_moved: int | None,
        step: int,
        prev_gpnet: GpNet | None = None,
    ) -> EnvState:
        timeline = self.evaluator.timeline(placement)
        if prev_gpnet is not None and last_moved is not None:
            gpnet = self.builder.update(prev_gpnet, placement, last_moved, timeline=timeline)
        else:
            gpnet = self.builder.build(placement, timeline=timeline)
        value = self.evaluator.evaluate(placement)
        return EnvState(placement, gpnet, value, last_moved, step)

    # -- masks ------------------------------------------------------------------------

    def action_mask(self, state: EnvState | None = None) -> np.ndarray:
        """Boolean mask of selectable gpNet nodes (True = allowed).

        Masks no-op actions (current pivots) and all options of the task
        moved in the previous step (§4.2.3).  If that leaves nothing —
        possible only in degenerate instances — masks are relaxed in
        order (repeat-task first, then no-op) so an action always exists.
        """
        state = state or self.state
        mask = np.ones(state.gpnet.num_nodes, dtype=bool)
        if self.mask_no_ops:
            mask &= ~state.gpnet.is_pivot
        if self.mask_repeat_task and state.last_moved_task is not None:
            mask &= state.gpnet.task_of != state.last_moved_task
        if not mask.any() and self.mask_no_ops:
            mask = ~state.gpnet.is_pivot
        if not mask.any():
            mask = np.ones(state.gpnet.num_nodes, dtype=bool)
        return mask

    # -- transitions ------------------------------------------------------------------

    def step(self, action_node: int) -> tuple[EnvState, float, bool]:
        """Apply gpNet node ``action_node`` as a relocation; return
        (next_state, reward, done)."""
        state = self.state
        if not 0 <= action_node < state.gpnet.num_nodes:
            raise ValueError(f"action node {action_node} out of range")
        task, device = state.gpnet.action_of(action_node)
        placement = list(state.placement)
        placement[task] = device
        next_state = self._make_state(
            tuple(placement), last_moved=task, step=state.step + 1, prev_gpnet=state.gpnet
        )
        reward = state.objective_value - next_state.objective_value
        done = next_state.step >= self.episode_length
        self._state = next_state
        return next_state, reward, done
