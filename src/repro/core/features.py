"""Feature maps f_n and f_e for gpNet nodes and edges (paper §B.7).

Node features of option (v_i, d_k):
    1. compute requirement C_i,
    2. device compute speed SP_k,
    3. expected compute time w_{i,k},
    4. start-time potential: earliest possible start of v_i on d_k (given
       parents' current placements) minus v_i's actual start time in the
       current schedule.

Edge features of ((v_i, d_k), (v_j, d_l)):
    1. data amount B_ij,
    2. inverse bandwidth 1/BW_kl (the paper lists bandwidth itself; the
       inverse is used here because local links have BW = ∞, which is not
       network-input-safe — 1/BW is the monotone-equivalent cost form),
    3. communication delay DL_kl,
    4. expected communication time c_{ij,kl}.

Features are normalized per instance (each column divided by its mean
magnitude) so policies transfer across problem scales.

Only the start-time potential and pivot-adjacent edge features depend on
the placement; everything else is static per instance.  The builder
precomputes the static parts once and offers :meth:`GpNetBuilder.update`
— an incremental rebuild after a single relocation that recomputes only
the gpNet edges incident to the moved task (the node-feature potential
column is global, since one move reshuffles the whole schedule, but it
is evaluated vectorized).  ``update`` output is exactly equal to a
fresh :meth:`GpNetBuilder.build` of the same placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..sim.executor import SimResult, simulate
from .gpnet import GpNet, build_gpnet
from .placement import PlacementProblem

__all__ = [
    "FeatureConfig",
    "GpNetBuilder",
    "GpNetStructure",
    "DirectionPlan",
    "structure_of",
    "NODE_FEATURE_DIM",
    "EDGE_FEATURE_DIM",
]

NODE_FEATURE_DIM = 4
EDGE_FEATURE_DIM = 4


@dataclass(frozen=True)
class FeatureConfig:
    """Feature-map options.

    ``use_start_time_potential=False`` reproduces the Fig. 15 ablation
    (removing the EST potential degrades every variant, GiPH least).
    """

    use_start_time_potential: bool = True
    normalize: bool = True


def _group_edges_by_task(edge_tasks: np.ndarray, num_tasks: int) -> list[np.ndarray]:
    """gpNet edge indices grouped by the task id in ``edge_tasks``.

    Stable sort, so each group lists its edges in ascending gpNet-edge
    order — the aggregation order both GNN paths (vectorized and loop
    reference) share.
    """
    order = np.argsort(edge_tasks, kind="stable")
    sorted_tasks = edge_tasks[order]
    bounds = np.searchsorted(sorted_tasks, np.arange(num_tasks + 1))
    return [order[bounds[t] : bounds[t + 1]] for t in range(num_tasks)]


def _task_topo_levels(
    src_tasks: np.ndarray, dst_tasks: np.ndarray, num_tasks: int
) -> np.ndarray:
    """Longest-path layering of the task DAG induced by the gpNet edges.

    ``level[t] = 1 + max(level[parents of t])`` (0 for sources) — every
    task's senders sit strictly below it, so one batched message pass
    per level finalizes the whole frontier at once.
    """
    children: list[list[int]] = [[] for _ in range(num_tasks)]
    indeg = np.zeros(num_tasks, dtype=np.int64)
    for s, d in sorted({(int(a), int(b)) for a, b in zip(src_tasks, dst_tasks)}):
        children[s].append(d)
        indeg[d] += 1
    level = np.zeros(num_tasks, dtype=np.int64)
    frontier = [t for t in range(num_tasks) if indeg[t] == 0]
    seen = 0
    while frontier:
        t = frontier.pop()
        seen += 1
        for c in children[t]:
            level[c] = max(level[c], level[t] + 1)
            indeg[c] -= 1
            if indeg[c] == 0:
                frontier.append(c)
    if seen != num_tasks:
        raise RuntimeError("gpNet induced a cyclic task order")
    return level


@dataclass(frozen=True)
class _LevelPlan:
    """One frontier of a directional GNN sweep.

    ``nodes`` — gpNet node ids finalized at this level (the concatenated
    option sets of the level's tasks, ascending task order);
    ``edge_idx`` — gpNet edges delivering messages into those nodes,
    grouped by receiving task with each group in ascending edge order,
    so ``node_local[receiver(edge_idx)]`` are the segment ids of one
    batched aggregation over the level.  Edge *endpoints* (sender node
    ids, receiver rows) are deliberately not cached here: they move
    with the pivots, so the sweep resolves them per forward from the
    net it is embedding.
    """

    tasks: tuple[int, ...]
    nodes: np.ndarray
    edge_idx: np.ndarray


@dataclass(frozen=True)
class DirectionPlan:
    """Frontier-batching schedule for one message-passing direction."""

    levels: tuple[_LevelPlan, ...]
    # node id -> row within its level's ``nodes`` (placement-independent:
    # node ids and option ranges are fixed by the problem layout).
    node_local: np.ndarray


@dataclass(frozen=True)
class GpNetStructure:
    """Placement-independent structural caches of one problem's gpNets.

    Everything the GNN hot path needs beyond the feature arrays — task
    topo order, per-task edge groupings, and the per-direction frontier
    plans — is a pure function of the problem *layout*: gpNet edge
    endpoints move with the pivots, but each edge block's endpoint
    *tasks* are fixed (``GpNetBuilder._check_layout`` guards this), so
    one structure serves every placement of the problem.  Computed once
    per builder (or lazily per net via :func:`structure_of`) instead of
    being re-derived on every forward.
    """

    task_order: tuple[int, ...]
    forward_plan: DirectionPlan
    backward_plan: DirectionPlan
    # Per receiving-task gpNet edge indices (forward: grouped by the
    # edge's dst task; backward: by its src task) — the cached result of
    # ``_group_edges_by_task`` the loop reference consumes.
    edge_groups_forward: tuple[np.ndarray, ...]
    edge_groups_backward: tuple[np.ndarray, ...]

    @classmethod
    def from_gpnet(cls, net: GpNet) -> "GpNetStructure":
        num_tasks = len(net.options)
        src_tasks = net.task_of[net.edge_src]
        dst_tasks = net.task_of[net.edge_dst]
        groups_fwd = tuple(_group_edges_by_task(dst_tasks, num_tasks))
        groups_bwd = tuple(_group_edges_by_task(src_tasks, num_tasks))
        levels_fwd = _task_topo_levels(src_tasks, dst_tasks, num_tasks)
        levels_bwd = _task_topo_levels(dst_tasks, src_tasks, num_tasks)
        order = np.lexsort((np.arange(num_tasks), levels_fwd))
        return cls(
            task_order=tuple(int(t) for t in order),
            forward_plan=cls._plan(net, levels_fwd, groups_fwd),
            backward_plan=cls._plan(net, levels_bwd, groups_bwd),
            edge_groups_forward=groups_fwd,
            edge_groups_backward=groups_bwd,
        )

    @staticmethod
    def _plan(
        net: GpNet, level_of: np.ndarray, groups: tuple[np.ndarray, ...]
    ) -> DirectionPlan:
        node_local = np.zeros(net.num_nodes, dtype=np.int64)
        levels: list[_LevelPlan] = []
        num_levels = int(level_of.max()) + 1 if len(level_of) else 0
        for lv in range(num_levels):
            tasks = tuple(int(t) for t in np.flatnonzero(level_of == lv))
            parts, pos = [], 0
            for t in tasks:
                opts = net.options[t]
                node_local[opts] = np.arange(pos, pos + len(opts))
                pos += len(opts)
                parts.append(opts)
            nodes = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            group_parts = [groups[t] for t in tasks if len(groups[t])]
            edge_idx = (
                np.concatenate(group_parts) if group_parts else np.empty(0, dtype=np.int64)
            )
            levels.append(_LevelPlan(tasks=tasks, nodes=nodes, edge_idx=edge_idx))
        return DirectionPlan(levels=tuple(levels), node_local=node_local)


def structure_of(gpnet: GpNet) -> GpNetStructure:
    """The gpNet's cached :class:`GpNetStructure` (computed on first use).

    Nets built by a :class:`GpNetBuilder` arrive with the builder's one
    shared instance already attached; nets built directly (e.g. via
    ``build_gpnet`` in tests) get a private instance attached here on
    first embed.  Either way, repeat forwards of an episode pay for the
    structural derivation exactly once.
    """
    cached = getattr(gpnet, "_structure", None)
    if cached is None:
        cached = GpNetStructure.from_gpnet(gpnet)
        object.__setattr__(gpnet, "_structure", cached)
    return cached


@dataclass(frozen=True)
class _RawBuild:
    """Pre-normalization arrays of the last build, for incremental reuse."""

    placement: tuple[int, ...]
    pivot_node: tuple[int, ...]
    edge_src: np.ndarray
    edge_dst: np.ndarray
    edge_features: np.ndarray


class GpNetBuilder:
    """Builds gpNets with fully populated features for one problem.

    The builder runs one noise-free simulation of the current placement
    per build to obtain the schedule timeline that the start-time
    potential is measured against (callers holding a cached timeline —
    e.g. :class:`repro.runtime.PlacementEvaluator` — pass it in to skip
    the simulation).
    """

    def __init__(self, problem: PlacementProblem, config: FeatureConfig | None = None) -> None:
        self.problem = problem
        self.config = config or FeatureConfig()
        with np.errstate(divide="ignore"):
            self._inv_bw = np.where(
                np.isinf(problem.network.bandwidth), 0.0, 1.0 / problem.network.bandwidth
            )
        graph = problem.graph
        cm = problem.cost_model
        feas = problem.feasible_sets

        # Static node structure: one node per feasible (task, device) pair,
        # grouped by task — identical layout to gpnet.build_gpnet.
        offsets: list[int] = []
        task_of: list[int] = []
        device_of: list[int] = []
        for i, f in enumerate(feas):
            offsets.append(len(task_of))
            task_of.extend([i] * len(f))
            device_of.extend(f)
        self._offsets = tuple(offsets)
        self._task_of = np.array(task_of, dtype=np.int64)
        self._device_of = np.array(device_of, dtype=np.int64)
        self._options = tuple(
            np.arange(offsets[i], offsets[i] + len(feas[i])) for i in range(graph.num_tasks)
        )
        self._feas_arrays = tuple(np.array(f, dtype=np.int64) for f in feas)
        self._feas_index = tuple({d: k for k, d in enumerate(f)} for f in feas)
        self._num_nodes = len(task_of)

        # Static node feature columns (C_i, SP_k, w_{i,k}).
        self._static_node_cols = np.column_stack(
            [
                np.asarray(graph.compute, dtype=np.float64)[self._task_of],
                np.asarray(problem.network.speeds, dtype=np.float64)[self._device_of],
                cm.W[self._task_of, self._device_of],
            ]
        )

        # Contiguous gpNet-edge block per task-graph edge (i, j):
        # |D_j| edges pivot_i -> options_j, then |D_i| - 1 edges
        # (options_i \ pivot_i) -> pivot_j.  Sizes are placement-independent.
        blocks: dict[tuple[int, int], tuple[int, int]] = {}
        pos = 0
        for (i, j) in graph.edges:
            size = len(feas[j]) + len(feas[i]) - 1
            blocks[(i, j)] = (pos, size)
            pos += size
        self._edge_blocks = blocks
        self._num_gpnet_edges = pos
        self._layout_checked = False
        # Incident task-graph edges per task, straight from the adjacency
        # lists (blocks are keyed by edge tuple, so order is irrelevant).
        self._incident_edges = tuple(
            tuple((p, i) for p in graph.parents[i]) + tuple((i, c) for c in graph.children[i])
            for i in range(graph.num_tasks)
        )
        self._last: _RawBuild | None = None
        # One GpNetStructure serves every placement of the problem (the
        # task-level layout is placement-independent); computed lazily on
        # the first finalized build, shared by reference thereafter.
        self._structure: GpNetStructure | None = None

        # Flattened (parent edge, option node) pairs for the start-time
        # potential: pair p covers every option node of the edge's child
        # task.  Static — only placements/timelines vary per build.
        pot_parent: list[int] = []
        pot_child: list[int] = []
        pot_data: list[float] = []
        pot_nodes: list[np.ndarray] = []
        pot_rep: list[np.ndarray] = []
        for pair_index, (p, i) in enumerate(graph.edges):
            pot_parent.append(p)
            pot_child.append(i)
            pot_data.append(float(graph.edges[(p, i)]))
            pot_nodes.append(self._options[i])
            pot_rep.append(np.full(len(self._options[i]), pair_index, dtype=np.int64))
        self._pot_parent = np.array(pot_parent, dtype=np.int64)
        self._pot_child = np.array(pot_child, dtype=np.int64)
        self._pot_data = np.array(pot_data, dtype=np.float64)
        self._pot_nodes = (
            np.concatenate(pot_nodes) if pot_nodes else np.zeros(0, dtype=np.int64)
        )
        self._pot_rep = (
            np.concatenate(pot_rep) if pot_rep else np.zeros(0, dtype=np.int64)
        )

    # -- feature maps -------------------------------------------------------------

    def _start_potentials(self, placement: Sequence[int], timeline: SimResult) -> np.ndarray:
        """Column 4 of f_n for every node, in one sweep over all nodes.

        One ``np.maximum.at`` over the precomputed (parent edge, option
        node) pairs replaces the per-task/per-parent Python loop.  Max
        is exact on floats and the candidate expression keeps the
        original grouping ``finish + (delay + data * inv_bw)``, so the
        sweep is bit-identical to the loop it replaced.
        """
        finish = np.asarray(timeline.finish, dtype=np.float64)
        start = np.asarray(timeline.start, dtype=np.float64)
        out = np.zeros(self._num_nodes)
        if len(self._pot_nodes):
            placement_arr = np.asarray(placement, dtype=np.int64)
            ps = placement_arr[self._pot_parent][self._pot_rep]
            d = self._device_of[self._pot_nodes]
            delay = self.problem.network.delay
            cand = finish[self._pot_parent][self._pot_rep] + (
                delay[ps, d] + self._pot_data[self._pot_rep] * self._inv_bw[ps, d]
            )
            np.maximum.at(out, self._pot_nodes, cand)
        return out - start[self._task_of]

    def _node_features(self, placement: Sequence[int], timeline: SimResult) -> np.ndarray:
        feats = np.empty((self._num_nodes, NODE_FEATURE_DIM))
        feats[:, :3] = self._static_node_cols
        if self.config.use_start_time_potential:
            feats[:, 3] = self._start_potentials(placement, timeline)
        else:
            # Keep the dimension stable (zeros) so networks are comparable
            # with and without the feature, as in the Fig. 15 ablation.
            feats[:, 3] = 0.0
        return feats

    def _edge_feature_fn(self, placement: Sequence[int]):
        cm = self.problem.cost_model
        graph = self.problem.graph
        delay = self.problem.network.delay
        inv_bw = self._inv_bw

        def f_e(edge: tuple[int, int], src_dev: int, dst_dev: int) -> np.ndarray:
            data = graph.edges[edge]
            return np.array(
                [
                    data,
                    inv_bw[src_dev, dst_dev],
                    delay[src_dev, dst_dev],
                    cm.comm_time(edge, src_dev, dst_dev),
                ]
            )

        return f_e

    @staticmethod
    def _normalize(features: np.ndarray) -> np.ndarray:
        if features.size == 0:
            return features
        scale = np.abs(features).mean(axis=0)
        scale = np.where(scale > 1e-12, scale, 1.0)
        return features / scale

    # -- public API ---------------------------------------------------------------

    def build(
        self, placement: Sequence[int], timeline: SimResult | None = None
    ) -> GpNet:
        """Build the gpNet of ``placement`` (timeline computed if absent)."""
        placement = self.problem.validate_placement(placement)
        if timeline is None:
            timeline = self.timeline(placement)
        node_features = self._node_features(placement, timeline)
        net = build_gpnet(self.problem, placement, node_features, self._edge_feature_fn(placement))
        pivot_node = tuple(
            self._offsets[i] + self._feas_index[i][d] for i, d in enumerate(placement)
        )
        self._check_layout(net, pivot_node)
        self._last = _RawBuild(
            placement=placement,
            pivot_node=pivot_node,
            edge_src=net.edge_src,
            edge_dst=net.edge_dst,
            edge_features=net.edge_features,
        )
        return self._finalize(net)

    def _check_layout(self, net: GpNet, pivot_node: tuple[int, ...]) -> None:
        """Guard against layout drift between build_gpnet and __init__.

        update() writes into edge blocks laid out by __init__ under the
        assumption that build_gpnet groups nodes by task and, per
        task-graph edge, emits one contiguous pivot_i→options_j then
        options_i∖{pivot_i}→pivot_j block in graph.edges order.  The
        emission order is fixed code, so the full structural comparison
        (including per-block edge endpoints) runs once per builder —
        every incremental chain starts from a full build, so any drift
        fails loudly instead of silently corrupting gpNets.
        """
        if self._layout_checked:
            return
        expected_src: list[int] = []
        expected_dst: list[int] = []
        for (i, j) in self.problem.graph.edges:
            pi, pj = pivot_node[i], pivot_node[j]
            expected_src.extend([pi] * len(self._options[j]))
            expected_dst.extend(int(u2) for u2 in self._options[j])
            for u1 in self._options[i]:
                if int(u1) != pi:
                    expected_src.append(int(u1))
                    expected_dst.append(pj)
        if (
            net.num_nodes != self._num_nodes
            or net.num_edges != self._num_gpnet_edges
            or not np.array_equal(net.task_of, self._task_of)
            or not np.array_equal(net.device_of, self._device_of)
            or not np.array_equal(net.edge_src, np.array(expected_src, dtype=np.int64))
            or not np.array_equal(net.edge_dst, np.array(expected_dst, dtype=np.int64))
        ):
            raise RuntimeError(
                "gpNet layout produced by build_gpnet no longer matches "
                "GpNetBuilder's precomputed structure; incremental updates "
                "would be incorrect"
            )
        self._layout_checked = True

    def update(
        self,
        prev_gpnet: GpNet,
        placement: Sequence[int],
        moved_task: int,
        timeline: SimResult | None = None,
    ) -> GpNet:
        """Rebuild the gpNet after relocating ``moved_task`` only.

        Exactly equal to ``build(placement, timeline)`` but recomputes
        only the gpNet edges whose task-graph edge touches the moved
        task, reusing everything else from the previous build.  Falls
        back to a full build when the previous raw state is unavailable
        (e.g. the builder last built a different placement).
        """
        placement = self.problem.validate_placement(placement)
        last = self._last
        if last is None or last.placement != prev_gpnet.placement:
            return self.build(placement, timeline)
        diff = [i for i, (a, b) in enumerate(zip(placement, last.placement)) if a != b]
        if not diff:
            return prev_gpnet
        if diff != [moved_task]:
            return self.build(placement, timeline)
        if timeline is None:
            timeline = self.timeline(placement)

        graph = self.problem.graph
        pivot_node = list(last.pivot_node)
        pivot_node[moved_task] = (
            self._offsets[moved_task] + self._feas_index[moved_task][placement[moved_task]]
        )
        is_pivot = np.zeros(self._num_nodes, dtype=bool)
        is_pivot[pivot_node] = True

        edge_src = last.edge_src.copy()
        edge_dst = last.edge_dst.copy()
        edge_features = last.edge_features.copy()
        delay = self.problem.network.delay
        for (i, j) in self._incident_edges[moved_task]:
            # Whole-block array fill (pivot_i -> options_j, then
            # options_i \ pivot_i -> pivot_j), elementwise-identical to
            # the per-edge f_e() loop it replaced: same `delay + data *
            # inv_bw` grouping, same exact 0.0 for co-located pairs.
            pos, size = self._edge_blocks[(i, j)]
            pi, pj = pivot_node[i], pivot_node[j]
            opts_i, opts_j = self._options[i], self._options[j]
            others_i = opts_i[opts_i != pi]
            src = np.concatenate([np.full(len(opts_j), pi, dtype=np.int64), others_i])
            dst = np.concatenate(
                [opts_j, np.full(len(others_i), pj, dtype=np.int64)]
            )
            src_dev = np.concatenate(
                [
                    np.full(len(opts_j), placement[i], dtype=np.int64),
                    self._device_of[others_i],
                ]
            )
            dst_dev = np.concatenate(
                [
                    self._device_of[opts_j],
                    np.full(len(others_i), placement[j], dtype=np.int64),
                ]
            )
            data = graph.edges[(i, j)]
            inv = self._inv_bw[src_dev, dst_dev]
            dly = delay[src_dev, dst_dev]
            block = np.empty((size, EDGE_FEATURE_DIM))
            block[:, 0] = data
            block[:, 1] = inv
            block[:, 2] = dly
            block[:, 3] = np.where(src_dev == dst_dev, 0.0, dly + data * inv)
            edge_src[pos : pos + size] = src
            edge_dst[pos : pos + size] = dst
            edge_features[pos : pos + size] = block

        net = GpNet(
            task_of=self._task_of,
            device_of=self._device_of,
            is_pivot=is_pivot,
            options=self._options,
            edge_src=edge_src,
            edge_dst=edge_dst,
            node_features=self._node_features(placement, timeline),
            edge_features=edge_features,
            placement=placement,
        )
        self._last = _RawBuild(
            placement=placement,
            pivot_node=tuple(pivot_node),
            edge_src=edge_src,
            edge_dst=edge_dst,
            edge_features=edge_features,
        )
        return self._finalize(net)

    def _finalize(self, net: GpNet) -> GpNet:
        """Apply per-instance normalization.

        The returned GpNet shares structure arrays (and, with
        ``normalize=False``, feature arrays) with the builder's raw
        state — GpNets are treated as immutable throughout the codebase;
        mutating one in place would corrupt subsequent incremental
        updates."""
        if self.config.normalize:
            net = GpNet(
                task_of=net.task_of,
                device_of=net.device_of,
                is_pivot=net.is_pivot,
                options=net.options,
                edge_src=net.edge_src,
                edge_dst=net.edge_dst,
                node_features=self._normalize(net.node_features),
                edge_features=self._normalize(net.edge_features),
                placement=net.placement,
            )
        if self._structure is None:
            self._structure = GpNetStructure.from_gpnet(net)
        object.__setattr__(net, "_structure", self._structure)
        return net

    def timeline(self, placement: Sequence[int]) -> SimResult:
        """Noise-free schedule of ``placement`` (expectation timeline)."""
        return simulate(
            self.problem.graph, self.problem.network, placement, self.problem.cost_model
        )
