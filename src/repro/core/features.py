"""Feature maps f_n and f_e for gpNet nodes and edges (paper §B.7).

Node features of option (v_i, d_k):
    1. compute requirement C_i,
    2. device compute speed SP_k,
    3. expected compute time w_{i,k},
    4. start-time potential: earliest possible start of v_i on d_k (given
       parents' current placements) minus v_i's actual start time in the
       current schedule.

Edge features of ((v_i, d_k), (v_j, d_l)):
    1. data amount B_ij,
    2. inverse bandwidth 1/BW_kl (the paper lists bandwidth itself; the
       inverse is used here because local links have BW = ∞, which is not
       network-input-safe — 1/BW is the monotone-equivalent cost form),
    3. communication delay DL_kl,
    4. expected communication time c_{ij,kl}.

Features are normalized per instance (each column divided by its mean
magnitude) so policies transfer across problem scales.

Only the start-time potential and pivot-adjacent edge features depend on
the placement; everything else is static per instance.  The builder
precomputes the static parts once and offers :meth:`GpNetBuilder.update`
— an incremental rebuild after a single relocation that recomputes only
the gpNet edges incident to the moved task (the node-feature potential
column is global, since one move reshuffles the whole schedule, but it
is evaluated vectorized).  ``update`` output is exactly equal to a
fresh :meth:`GpNetBuilder.build` of the same placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..sim.executor import SimResult, simulate
from .gpnet import GpNet, build_gpnet
from .placement import PlacementProblem

__all__ = ["FeatureConfig", "GpNetBuilder", "NODE_FEATURE_DIM", "EDGE_FEATURE_DIM"]

NODE_FEATURE_DIM = 4
EDGE_FEATURE_DIM = 4


@dataclass(frozen=True)
class FeatureConfig:
    """Feature-map options.

    ``use_start_time_potential=False`` reproduces the Fig. 15 ablation
    (removing the EST potential degrades every variant, GiPH least).
    """

    use_start_time_potential: bool = True
    normalize: bool = True


@dataclass(frozen=True)
class _RawBuild:
    """Pre-normalization arrays of the last build, for incremental reuse."""

    placement: tuple[int, ...]
    pivot_node: tuple[int, ...]
    edge_src: np.ndarray
    edge_dst: np.ndarray
    edge_features: np.ndarray


class GpNetBuilder:
    """Builds gpNets with fully populated features for one problem.

    The builder runs one noise-free simulation of the current placement
    per build to obtain the schedule timeline that the start-time
    potential is measured against (callers holding a cached timeline —
    e.g. :class:`repro.runtime.PlacementEvaluator` — pass it in to skip
    the simulation).
    """

    def __init__(self, problem: PlacementProblem, config: FeatureConfig | None = None) -> None:
        self.problem = problem
        self.config = config or FeatureConfig()
        with np.errstate(divide="ignore"):
            self._inv_bw = np.where(
                np.isinf(problem.network.bandwidth), 0.0, 1.0 / problem.network.bandwidth
            )
        graph = problem.graph
        cm = problem.cost_model
        feas = problem.feasible_sets

        # Static node structure: one node per feasible (task, device) pair,
        # grouped by task — identical layout to gpnet.build_gpnet.
        offsets: list[int] = []
        task_of: list[int] = []
        device_of: list[int] = []
        for i, f in enumerate(feas):
            offsets.append(len(task_of))
            task_of.extend([i] * len(f))
            device_of.extend(f)
        self._offsets = tuple(offsets)
        self._task_of = np.array(task_of, dtype=np.int64)
        self._device_of = np.array(device_of, dtype=np.int64)
        self._options = tuple(
            np.arange(offsets[i], offsets[i] + len(feas[i])) for i in range(graph.num_tasks)
        )
        self._feas_arrays = tuple(np.array(f, dtype=np.int64) for f in feas)
        self._feas_index = tuple({d: k for k, d in enumerate(f)} for f in feas)
        self._num_nodes = len(task_of)

        # Static node feature columns (C_i, SP_k, w_{i,k}).
        self._static_node_cols = np.column_stack(
            [
                np.asarray(graph.compute, dtype=np.float64)[self._task_of],
                np.asarray(problem.network.speeds, dtype=np.float64)[self._device_of],
                cm.W[self._task_of, self._device_of],
            ]
        )

        # Contiguous gpNet-edge block per task-graph edge (i, j):
        # |D_j| edges pivot_i -> options_j, then |D_i| - 1 edges
        # (options_i \ pivot_i) -> pivot_j.  Sizes are placement-independent.
        blocks: dict[tuple[int, int], tuple[int, int]] = {}
        pos = 0
        for (i, j) in graph.edges:
            size = len(feas[j]) + len(feas[i]) - 1
            blocks[(i, j)] = (pos, size)
            pos += size
        self._edge_blocks = blocks
        self._num_gpnet_edges = pos
        self._layout_checked = False
        # Incident task-graph edges per task, straight from the adjacency
        # lists (blocks are keyed by edge tuple, so order is irrelevant).
        self._incident_edges = tuple(
            tuple((p, i) for p in graph.parents[i]) + tuple((i, c) for c in graph.children[i])
            for i in range(graph.num_tasks)
        )
        self._last: _RawBuild | None = None

    # -- feature maps -------------------------------------------------------------

    def _start_potentials(self, placement: Sequence[int], timeline: SimResult) -> np.ndarray:
        """Column 4 of f_n for every node, vectorized over each option set."""
        graph = self.problem.graph
        delay = self.problem.network.delay
        inv_bw = self._inv_bw
        edges = graph.edges
        finish, start = timeline.finish, timeline.start
        out = np.empty(self._num_nodes)
        for i, feas in enumerate(self._feas_arrays):
            o = self._offsets[i]
            est = np.zeros(len(feas))
            for p in graph.parents[i]:
                ps = placement[p]
                cand = finish[p] + (delay[ps, feas] + edges[(p, i)] * inv_bw[ps, feas])
                np.maximum(est, cand, out=est)
            out[o : o + len(feas)] = est - start[i]
        return out

    def _node_features(self, placement: Sequence[int], timeline: SimResult) -> np.ndarray:
        feats = np.empty((self._num_nodes, NODE_FEATURE_DIM))
        feats[:, :3] = self._static_node_cols
        if self.config.use_start_time_potential:
            feats[:, 3] = self._start_potentials(placement, timeline)
        else:
            # Keep the dimension stable (zeros) so networks are comparable
            # with and without the feature, as in the Fig. 15 ablation.
            feats[:, 3] = 0.0
        return feats

    def _edge_feature_fn(self, placement: Sequence[int]):
        cm = self.problem.cost_model
        graph = self.problem.graph
        delay = self.problem.network.delay
        inv_bw = self._inv_bw

        def f_e(edge: tuple[int, int], src_dev: int, dst_dev: int) -> np.ndarray:
            data = graph.edges[edge]
            return np.array(
                [
                    data,
                    inv_bw[src_dev, dst_dev],
                    delay[src_dev, dst_dev],
                    cm.comm_time(edge, src_dev, dst_dev),
                ]
            )

        return f_e

    @staticmethod
    def _normalize(features: np.ndarray) -> np.ndarray:
        if features.size == 0:
            return features
        scale = np.abs(features).mean(axis=0)
        scale = np.where(scale > 1e-12, scale, 1.0)
        return features / scale

    # -- public API ---------------------------------------------------------------

    def build(
        self, placement: Sequence[int], timeline: SimResult | None = None
    ) -> GpNet:
        """Build the gpNet of ``placement`` (timeline computed if absent)."""
        placement = self.problem.validate_placement(placement)
        if timeline is None:
            timeline = self.timeline(placement)
        node_features = self._node_features(placement, timeline)
        net = build_gpnet(self.problem, placement, node_features, self._edge_feature_fn(placement))
        pivot_node = tuple(
            self._offsets[i] + self._feas_index[i][d] for i, d in enumerate(placement)
        )
        self._check_layout(net, pivot_node)
        self._last = _RawBuild(
            placement=placement,
            pivot_node=pivot_node,
            edge_src=net.edge_src,
            edge_dst=net.edge_dst,
            edge_features=net.edge_features,
        )
        return self._finalize(net)

    def _check_layout(self, net: GpNet, pivot_node: tuple[int, ...]) -> None:
        """Guard against layout drift between build_gpnet and __init__.

        update() writes into edge blocks laid out by __init__ under the
        assumption that build_gpnet groups nodes by task and, per
        task-graph edge, emits one contiguous pivot_i→options_j then
        options_i∖{pivot_i}→pivot_j block in graph.edges order.  The
        emission order is fixed code, so the full structural comparison
        (including per-block edge endpoints) runs once per builder —
        every incremental chain starts from a full build, so any drift
        fails loudly instead of silently corrupting gpNets.
        """
        if self._layout_checked:
            return
        expected_src: list[int] = []
        expected_dst: list[int] = []
        for (i, j) in self.problem.graph.edges:
            pi, pj = pivot_node[i], pivot_node[j]
            expected_src.extend([pi] * len(self._options[j]))
            expected_dst.extend(int(u2) for u2 in self._options[j])
            for u1 in self._options[i]:
                if int(u1) != pi:
                    expected_src.append(int(u1))
                    expected_dst.append(pj)
        if (
            net.num_nodes != self._num_nodes
            or net.num_edges != self._num_gpnet_edges
            or not np.array_equal(net.task_of, self._task_of)
            or not np.array_equal(net.device_of, self._device_of)
            or not np.array_equal(net.edge_src, np.array(expected_src, dtype=np.int64))
            or not np.array_equal(net.edge_dst, np.array(expected_dst, dtype=np.int64))
        ):
            raise RuntimeError(
                "gpNet layout produced by build_gpnet no longer matches "
                "GpNetBuilder's precomputed structure; incremental updates "
                "would be incorrect"
            )
        self._layout_checked = True

    def update(
        self,
        prev_gpnet: GpNet,
        placement: Sequence[int],
        moved_task: int,
        timeline: SimResult | None = None,
    ) -> GpNet:
        """Rebuild the gpNet after relocating ``moved_task`` only.

        Exactly equal to ``build(placement, timeline)`` but recomputes
        only the gpNet edges whose task-graph edge touches the moved
        task, reusing everything else from the previous build.  Falls
        back to a full build when the previous raw state is unavailable
        (e.g. the builder last built a different placement).
        """
        placement = self.problem.validate_placement(placement)
        last = self._last
        if last is None or last.placement != prev_gpnet.placement:
            return self.build(placement, timeline)
        diff = [i for i, (a, b) in enumerate(zip(placement, last.placement)) if a != b]
        if not diff:
            return prev_gpnet
        if diff != [moved_task]:
            return self.build(placement, timeline)
        if timeline is None:
            timeline = self.timeline(placement)

        graph = self.problem.graph
        pivot_node = list(last.pivot_node)
        pivot_node[moved_task] = (
            self._offsets[moved_task] + self._feas_index[moved_task][placement[moved_task]]
        )
        is_pivot = np.zeros(self._num_nodes, dtype=bool)
        is_pivot[pivot_node] = True

        edge_src = last.edge_src.copy()
        edge_dst = last.edge_dst.copy()
        edge_features = last.edge_features.copy()
        f_e = self._edge_feature_fn(placement)
        for (i, j) in self._incident_edges[moved_task]:
            pos, size = self._edge_blocks[(i, j)]
            pi, pj = pivot_node[i], pivot_node[j]
            src: list[int] = []
            dst: list[int] = []
            feats: list[np.ndarray] = []
            for u2 in self._options[j]:
                src.append(pi)
                dst.append(int(u2))
                feats.append(f_e((i, j), placement[i], int(self._device_of[u2])))
            for u1 in self._options[i]:
                if int(u1) == pi:
                    continue
                src.append(int(u1))
                dst.append(pj)
                feats.append(f_e((i, j), int(self._device_of[u1]), placement[j]))
            edge_src[pos : pos + size] = src
            edge_dst[pos : pos + size] = dst
            edge_features[pos : pos + size] = feats

        net = GpNet(
            task_of=self._task_of,
            device_of=self._device_of,
            is_pivot=is_pivot,
            options=self._options,
            edge_src=edge_src,
            edge_dst=edge_dst,
            node_features=self._node_features(placement, timeline),
            edge_features=edge_features,
            placement=placement,
        )
        self._last = _RawBuild(
            placement=placement,
            pivot_node=tuple(pivot_node),
            edge_src=edge_src,
            edge_dst=edge_dst,
            edge_features=edge_features,
        )
        return self._finalize(net)

    def _finalize(self, net: GpNet) -> GpNet:
        """Apply per-instance normalization.

        The returned GpNet shares structure arrays (and, with
        ``normalize=False``, feature arrays) with the builder's raw
        state — GpNets are treated as immutable throughout the codebase;
        mutating one in place would corrupt subsequent incremental
        updates."""
        if not self.config.normalize:
            return net
        return GpNet(
            task_of=net.task_of,
            device_of=net.device_of,
            is_pivot=net.is_pivot,
            options=net.options,
            edge_src=net.edge_src,
            edge_dst=net.edge_dst,
            node_features=self._normalize(net.node_features),
            edge_features=self._normalize(net.edge_features),
            placement=net.placement,
        )

    def timeline(self, placement: Sequence[int]) -> SimResult:
        """Noise-free schedule of ``placement`` (expectation timeline)."""
        return simulate(
            self.problem.graph, self.problem.network, placement, self.problem.cost_model
        )
