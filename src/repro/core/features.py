"""Feature maps f_n and f_e for gpNet nodes and edges (paper §B.7).

Node features of option (v_i, d_k):
    1. compute requirement C_i,
    2. device compute speed SP_k,
    3. expected compute time w_{i,k},
    4. start-time potential: earliest possible start of v_i on d_k (given
       parents' current placements) minus v_i's actual start time in the
       current schedule.

Edge features of ((v_i, d_k), (v_j, d_l)):
    1. data amount B_ij,
    2. inverse bandwidth 1/BW_kl (the paper lists bandwidth itself; the
       inverse is used here because local links have BW = ∞, which is not
       network-input-safe — 1/BW is the monotone-equivalent cost form),
    3. communication delay DL_kl,
    4. expected communication time c_{ij,kl}.

Features are normalized per instance (each column divided by its mean
magnitude) so policies transfer across problem scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..sim.executor import SimResult, simulate
from .gpnet import GpNet, build_gpnet
from .placement import PlacementProblem

__all__ = ["FeatureConfig", "GpNetBuilder", "NODE_FEATURE_DIM", "EDGE_FEATURE_DIM"]

NODE_FEATURE_DIM = 4
EDGE_FEATURE_DIM = 4


@dataclass(frozen=True)
class FeatureConfig:
    """Feature-map options.

    ``use_start_time_potential=False`` reproduces the Fig. 15 ablation
    (removing the EST potential degrades every variant, GiPH least).
    """

    use_start_time_potential: bool = True
    normalize: bool = True


class GpNetBuilder:
    """Builds gpNets with fully populated features for one problem.

    The builder runs one noise-free simulation of the current placement
    per build to obtain the schedule timeline that the start-time
    potential is measured against.
    """

    def __init__(self, problem: PlacementProblem, config: FeatureConfig | None = None) -> None:
        self.problem = problem
        self.config = config or FeatureConfig()
        with np.errstate(divide="ignore"):
            self._inv_bw = np.where(
                np.isinf(problem.network.bandwidth), 0.0, 1.0 / problem.network.bandwidth
            )

    # -- feature maps -------------------------------------------------------------

    def _node_features(self, placement: Sequence[int], timeline: SimResult) -> np.ndarray:
        problem, graph = self.problem, self.problem.graph
        cm = problem.cost_model
        speeds = problem.network.speeds
        rows: list[list[float]] = []
        for i, feas in enumerate(problem.feasible_sets):
            for d in feas:
                row = [graph.compute[i], speeds[d], cm.compute_time(i, d)]
                if self.config.use_start_time_potential:
                    est = 0.0
                    for p in graph.parents[i]:
                        est = max(
                            est,
                            timeline.finish[p] + cm.comm_time((p, i), placement[p], d),
                        )
                    row.append(est - timeline.start[i])
                rows.append(row)
        feats = np.array(rows, dtype=np.float64)
        if not self.config.use_start_time_potential:
            # Keep the dimension stable (zeros) so networks are comparable
            # with and without the feature, as in the Fig. 15 ablation.
            feats = np.hstack([feats, np.zeros((len(feats), 1))])
        return feats

    def _edge_feature_fn(self, placement: Sequence[int]):
        cm = self.problem.cost_model
        graph = self.problem.graph
        delay = self.problem.network.delay
        inv_bw = self._inv_bw

        def f_e(edge: tuple[int, int], src_dev: int, dst_dev: int) -> np.ndarray:
            data = graph.edges[edge]
            return np.array(
                [
                    data,
                    inv_bw[src_dev, dst_dev],
                    delay[src_dev, dst_dev],
                    cm.comm_time(edge, src_dev, dst_dev),
                ]
            )

        return f_e

    @staticmethod
    def _normalize(features: np.ndarray) -> np.ndarray:
        if features.size == 0:
            return features
        scale = np.abs(features).mean(axis=0)
        scale = np.where(scale > 1e-12, scale, 1.0)
        return features / scale

    # -- public API ---------------------------------------------------------------

    def build(
        self, placement: Sequence[int], timeline: SimResult | None = None
    ) -> GpNet:
        """Build the gpNet of ``placement`` (timeline computed if absent)."""
        placement = self.problem.validate_placement(placement)
        if timeline is None:
            timeline = self.timeline(placement)
        node_features = self._node_features(placement, timeline)
        net = build_gpnet(self.problem, placement, node_features, self._edge_feature_fn(placement))
        if self.config.normalize:
            net = GpNet(
                task_of=net.task_of,
                device_of=net.device_of,
                is_pivot=net.is_pivot,
                options=net.options,
                edge_src=net.edge_src,
                edge_dst=net.edge_dst,
                node_features=self._normalize(net.node_features),
                edge_features=self._normalize(net.edge_features),
                placement=net.placement,
            )
        return net

    def timeline(self, placement: Sequence[int]) -> SimResult:
        """Noise-free schedule of ``placement`` (expectation timeline)."""
        return simulate(
            self.problem.graph, self.problem.network, placement, self.problem.cost_model
        )
