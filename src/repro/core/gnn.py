"""Graph neural networks over gpNets (paper §4.2.2, Appendix B.6).

The main GiPH network propagates messages along the partial order of the
gpNet in both directions with separate parameters (Eq. 1):

    e_u = h2( agg_{v ∈ ξ(u)} h1([e_v ∥ x^e_vu]) ) + x^n_u

where in the forward direction ξ(u) are u's parents (processed in
topological order, so each parent is final before its children read it)
and in the backward direction its children.  Per-direction summaries are
concatenated into the node embedding.

Alternatives evaluated in Appendix B.6 are provided:

* :class:`KStepMessagePassing` (GiPH-k, Eq. 4) — k synchronous two-way
  steps with shared parameters;
* :class:`TwoWayNoEdge` (GiPH-NE) — no edge features; mean out-edge
  features are appended to node features instead;
* :class:`GraphSageNoEdge` (GraphSAGE-NE) — 3-layer uni-directional
  GraphSAGE over the same augmented node features;
* :class:`RawFeatureEmbedding` (GiPH-NE-Pol) — no GNN at all.

Architecture dimensions follow Tables 4-5: raw node/edge features are
4-dimensional, per-direction embeddings 5-dimensional (10 concatenated),
pre-embedding is a two-layer FNN with hidden size equal to the input.
"""

from __future__ import annotations

import numpy as np

from ..nn import MLP, Linear, Module, Tensor, concat, stack
from ..nn import functional as F
from .features import EDGE_FEATURE_DIM, NODE_FEATURE_DIM
from .gpnet import GpNet

__all__ = [
    "GpNetEmbedding",
    "TwoWayMessagePassing",
    "KStepMessagePassing",
    "TwoWayNoEdge",
    "GraphSageNoEdge",
    "RawFeatureEmbedding",
    "augment_with_out_edge_means",
    "make_embedding",
]


class GpNetEmbedding(Module):
    """Interface: embed a gpNet into per-node vectors (num_nodes, out_dim)."""

    out_dim: int

    def forward(self, gpnet: GpNet) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError


def _aggregate(values, segment_ids, num_segments, how: str):
    if how == "mean":
        return F.segment_mean(values, segment_ids, num_segments)
    if how == "sum":
        return F.segment_sum(values, segment_ids, num_segments)
    raise ValueError(f"unknown aggregation {how!r}")


def _group_edges_by_task(edge_tasks: np.ndarray, num_tasks: int) -> list[np.ndarray]:
    """edge indices grouped by the task id in ``edge_tasks``."""
    order = np.argsort(edge_tasks, kind="stable")
    sorted_tasks = edge_tasks[order]
    bounds = np.searchsorted(sorted_tasks, np.arange(num_tasks + 1))
    return [order[bounds[t] : bounds[t + 1]] for t in range(num_tasks)]


class _DirectionalPass(Module):
    """One direction of Eq. 1: recurrent wavefront message passing."""

    def __init__(self, embed_dim: int, edge_dim: int, rng: np.random.Generator, aggregation: str) -> None:
        msg_dim = embed_dim + edge_dim
        self.h1 = Linear(msg_dim, msg_dim, rng)
        self.h2 = Linear(msg_dim, embed_dim, rng)
        self.embed_dim = embed_dim
        self.aggregation = aggregation

    def forward(self, gpnet: GpNet, x: Tensor, task_order, reverse: bool) -> Tensor:
        """``x``: pre-embedded node features (N, embed_dim)."""
        n = gpnet.num_nodes
        if reverse:
            # Messages flow child -> parent: group edges by src task,
            # aggregate at the src node.
            edge_from, edge_to = gpnet.edge_dst, gpnet.edge_src
        else:
            edge_from, edge_to = gpnet.edge_src, gpnet.edge_dst
        groups = _group_edges_by_task(gpnet.task_of[edge_to], len(gpnet.options))

        node_emb: list[Tensor | None] = [None] * n
        for task in task_order:
            opts = gpnet.options[task]
            local = {int(u): k for k, u in enumerate(opts)}
            idx = groups[task]
            x_group = x[opts]
            if len(idx) == 0:
                agg = Tensor(np.zeros((len(opts), self.h1.out_features)))
            else:
                senders = edge_from[idx]
                sender_emb = stack([node_emb[int(s)] for s in senders], axis=0)
                msg_in = concat([sender_emb, Tensor(gpnet.edge_features[idx])], axis=1)
                msg = self.h1(msg_in).relu()
                local_ids = np.array([local[int(u)] for u in edge_to[idx]])
                agg = _aggregate(msg, local_ids, len(opts), self.aggregation)
            group_out = self.h2(agg).relu() + x_group
            for k, u in enumerate(opts):
                node_emb[int(u)] = group_out[k]
        return stack([node_emb[u] for u in range(n)], axis=0)


class TwoWayMessagePassing(GpNetEmbedding):
    """The GiPH GNN: Eq. 1 in both directions, summaries concatenated.

    The recurrent sweep runs as many message-passing steps as the graph
    is deep ("message passing: graph depth" in Table 5).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        node_dim: int = NODE_FEATURE_DIM,
        edge_dim: int = EDGE_FEATURE_DIM,
        embed_dim: int = 5,
        aggregation: str = "mean",
    ) -> None:
        self.pre = MLP([node_dim, node_dim, embed_dim], rng)
        self.forward_pass = _DirectionalPass(embed_dim, edge_dim, rng, aggregation)
        self.backward_pass = _DirectionalPass(embed_dim, edge_dim, rng, aggregation)
        self.out_dim = 2 * embed_dim

    def forward(self, gpnet: GpNet) -> Tensor:
        x = self.pre(Tensor(gpnet.node_features))
        graph_topo = self._task_topo_order(gpnet)
        e_fwd = self.forward_pass(gpnet, x, graph_topo, reverse=False)
        e_bwd = self.backward_pass(gpnet, x, list(reversed(graph_topo)), reverse=True)
        return concat([e_fwd, e_bwd], axis=1)

    @staticmethod
    def _task_topo_order(gpnet: GpNet) -> list[int]:
        """Topological order of tasks induced by the gpNet's edges."""
        num_tasks = len(gpnet.options)
        src_tasks = gpnet.task_of[gpnet.edge_src]
        dst_tasks = gpnet.task_of[gpnet.edge_dst]
        children: dict[int, set[int]] = {t: set() for t in range(num_tasks)}
        indeg = np.zeros(num_tasks, dtype=int)
        for s, d in {(int(a), int(b)) for a, b in zip(src_tasks, dst_tasks)}:
            if d not in children[s]:
                children[s].add(d)
                indeg[d] += 1
        frontier = [t for t in range(num_tasks) if indeg[t] == 0]
        order: list[int] = []
        while frontier:
            t = frontier.pop()
            order.append(t)
            for c in children[t]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    frontier.append(c)
        if len(order) != num_tasks:
            raise RuntimeError("gpNet induced a cyclic task order")
        return order


class _SharedStepPass(Module):
    """One direction of Eq. 4: k synchronous steps, shared parameters."""

    def __init__(self, embed_dim: int, edge_dim: int, rng: np.random.Generator, aggregation: str) -> None:
        msg_dim = embed_dim + edge_dim
        self.h1 = Linear(msg_dim, msg_dim, rng)
        self.h2 = Linear(msg_dim, embed_dim, rng)
        self.aggregation = aggregation

    def forward(self, gpnet: GpNet, e0: Tensor, steps: int, reverse: bool) -> Tensor:
        n = gpnet.num_nodes
        senders = gpnet.edge_dst if reverse else gpnet.edge_src
        receivers = gpnet.edge_src if reverse else gpnet.edge_dst
        efeat = Tensor(gpnet.edge_features)
        e = e0
        for _ in range(steps):
            if gpnet.num_edges == 0:
                msg_agg = Tensor(np.zeros((n, self.h1.out_features)))
            else:
                msg = self.h1(concat([e[senders], efeat], axis=1)).relu()
                msg_agg = _aggregate(msg, receivers, n, self.aggregation)
            e = self.h2(msg_agg).relu() + e0
        return e


class KStepMessagePassing(GpNetEmbedding):
    """GiPH-k (Eq. 4): bounded k-step two-way message passing.

    Caps the sequential depth of the GNN — the paper's Table 7 / Fig. 17
    remedy for large graphs (GiPH-3, GiPH-5).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        k: int,
        node_dim: int = NODE_FEATURE_DIM,
        edge_dim: int = EDGE_FEATURE_DIM,
        embed_dim: int = 5,
        aggregation: str = "mean",
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.pre = MLP([node_dim, node_dim, embed_dim], rng)  # h3 in Eq. 4
        self.forward_pass = _SharedStepPass(embed_dim, edge_dim, rng, aggregation)
        self.backward_pass = _SharedStepPass(embed_dim, edge_dim, rng, aggregation)
        self.out_dim = 2 * embed_dim

    def forward(self, gpnet: GpNet) -> Tensor:
        e0 = self.pre(Tensor(gpnet.node_features))
        e_fwd = self.forward_pass(gpnet, e0, self.k, reverse=False)
        e_bwd = self.backward_pass(gpnet, e0, self.k, reverse=True)
        return concat([e_fwd, e_bwd], axis=1)


def augment_with_out_edge_means(gpnet: GpNet) -> np.ndarray:
    """Node features with mean out-edge features appended (GiPH-NE input).

    "To compensate for the loss of edge information, the mean feature
    value of out edges of a node is appended to its node feature" (B.6).
    """
    n = gpnet.num_nodes
    edge_dim = gpnet.edge_features.shape[1] if gpnet.num_edges else EDGE_FEATURE_DIM
    sums = np.zeros((n, edge_dim))
    counts = np.zeros(n)
    if gpnet.num_edges:
        np.add.at(sums, gpnet.edge_src, gpnet.edge_features)
        np.add.at(counts, gpnet.edge_src, 1.0)
    means = sums / np.maximum(counts, 1.0)[:, None]
    return np.hstack([gpnet.node_features, means])


class _NoEdgeDirectionalPass(Module):
    """Wavefront pass without edge features (GiPH-NE)."""

    def __init__(self, embed_dim: int, rng: np.random.Generator, aggregation: str) -> None:
        self.h1 = Linear(embed_dim, embed_dim, rng)
        self.h2 = Linear(embed_dim, embed_dim, rng)
        self.aggregation = aggregation

    def forward(self, gpnet: GpNet, x: Tensor, task_order, reverse: bool) -> Tensor:
        n = gpnet.num_nodes
        if reverse:
            edge_from, edge_to = gpnet.edge_dst, gpnet.edge_src
        else:
            edge_from, edge_to = gpnet.edge_src, gpnet.edge_dst
        groups = _group_edges_by_task(gpnet.task_of[edge_to], len(gpnet.options))
        node_emb: list[Tensor | None] = [None] * n
        for task in task_order:
            opts = gpnet.options[task]
            local = {int(u): k for k, u in enumerate(opts)}
            idx = groups[task]
            if len(idx) == 0:
                agg = Tensor(np.zeros((len(opts), self.h1.out_features)))
            else:
                sender_emb = stack([node_emb[int(s)] for s in edge_from[idx]], axis=0)
                msg = self.h1(sender_emb).relu()
                local_ids = np.array([local[int(u)] for u in edge_to[idx]])
                agg = _aggregate(msg, local_ids, len(opts), self.aggregation)
            group_out = self.h2(agg).relu() + x[opts]
            for k, u in enumerate(opts):
                node_emb[int(u)] = group_out[k]
        return stack([node_emb[u] for u in range(n)], axis=0)


class TwoWayNoEdge(GpNetEmbedding):
    """GiPH-NE: two-way message passing on augmented node features only.

    Node features are the 8-dim augmentation (raw + mean out-edge); a
    linear projection (the "no node transform layer" of Table 5) brings
    them to the embedding dimension.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        node_dim: int = NODE_FEATURE_DIM + EDGE_FEATURE_DIM,
        embed_dim: int = 5,
        aggregation: str = "mean",
    ) -> None:
        self.proj = Linear(node_dim, embed_dim, rng)
        self.forward_pass = _NoEdgeDirectionalPass(embed_dim, rng, aggregation)
        self.backward_pass = _NoEdgeDirectionalPass(embed_dim, rng, aggregation)
        self.out_dim = 2 * embed_dim

    def forward(self, gpnet: GpNet) -> Tensor:
        x = self.proj(Tensor(augment_with_out_edge_means(gpnet)))
        topo = TwoWayMessagePassing._task_topo_order(gpnet)
        e_fwd = self.forward_pass(gpnet, x, topo, reverse=False)
        e_bwd = self.backward_pass(gpnet, x, list(reversed(topo)), reverse=True)
        return concat([e_fwd, e_bwd], axis=1)


class GraphSageNoEdge(GpNetEmbedding):
    """GraphSAGE-NE: 3 uni-directional GraphSAGE layers (Hamilton 2017).

    h^{l+1}_u = ReLU(W_l [h^l_u ∥ mean_{v∈parents(u)} h^l_v]); forward
    direction only — the divergence observed in Fig. 14 traces back to
    this missing backward view.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        node_dim: int = NODE_FEATURE_DIM + EDGE_FEATURE_DIM,
        hidden_dim: int = 16,
        out_dim: int = 10,
        layers: int = 3,
        aggregation: str = "mean",
    ) -> None:
        if layers < 1:
            raise ValueError("layers must be >= 1")
        self.pre = Linear(node_dim, hidden_dim, rng)
        self.sage_layers = [Linear(2 * hidden_dim, hidden_dim, rng) for _ in range(layers)]
        self.head = Linear(hidden_dim, out_dim, rng)
        self.aggregation = aggregation
        self.out_dim = out_dim

    def forward(self, gpnet: GpNet) -> Tensor:
        h = self.pre(Tensor(augment_with_out_edge_means(gpnet))).relu()
        n = gpnet.num_nodes
        for layer in self.sage_layers:
            if gpnet.num_edges == 0:
                neigh = Tensor(np.zeros((n, h.shape[1])))
            else:
                neigh = _aggregate(h[gpnet.edge_src], gpnet.edge_dst, n, self.aggregation)
            h = layer(concat([h, neigh], axis=1)).relu()
        return self.head(h)


class RawFeatureEmbedding(GpNetEmbedding):
    """GiPH-NE-Pol: no GNN — augmented raw features straight to the policy."""

    def __init__(self, node_dim: int = NODE_FEATURE_DIM + EDGE_FEATURE_DIM) -> None:
        self.out_dim = node_dim

    def forward(self, gpnet: GpNet) -> Tensor:
        return Tensor(augment_with_out_edge_means(gpnet))


def make_embedding(kind: str, rng: np.random.Generator, **kwargs) -> GpNetEmbedding:
    """Factory over the paper's GNN variants.

    ``kind``: "giph", "giph-3", "giph-5", "giph-k" (pass k=), "giph-ne",
    "graphsage-ne", or "giph-ne-pol".
    """
    kind = kind.lower()
    if kind == "giph":
        return TwoWayMessagePassing(rng, **kwargs)
    if kind.startswith("giph-") and kind[5:].isdigit():
        return KStepMessagePassing(rng, k=int(kind[5:]), **kwargs)
    if kind == "giph-k":
        return KStepMessagePassing(rng, **kwargs)
    if kind == "giph-ne":
        return TwoWayNoEdge(rng, **kwargs)
    if kind == "graphsage-ne":
        return GraphSageNoEdge(rng, **kwargs)
    if kind == "giph-ne-pol":
        return RawFeatureEmbedding(**kwargs)
    raise ValueError(f"unknown embedding kind {kind!r}")
