"""Graph neural networks over gpNets (paper §4.2.2, Appendix B.6).

The main GiPH network propagates messages along the partial order of the
gpNet in both directions with separate parameters (Eq. 1):

    e_u = h2( agg_{v ∈ ξ(u)} h1([e_v ∥ x^e_vu]) ) + x^n_u

where in the forward direction ξ(u) are u's parents (processed in
topological order, so each parent is final before its children read it)
and in the backward direction its children.  Per-direction summaries are
concatenated into the node embedding.

Alternatives evaluated in Appendix B.6 are provided:

* :class:`KStepMessagePassing` (GiPH-k, Eq. 4) — k synchronous two-way
  steps with shared parameters;
* :class:`TwoWayNoEdge` (GiPH-NE) — no edge features; mean out-edge
  features are appended to node features instead;
* :class:`GraphSageNoEdge` (GraphSAGE-NE) — 3-layer uni-directional
  GraphSAGE over the same augmented node features;
* :class:`RawFeatureEmbedding` (GiPH-NE-Pol) — no GNN at all.

Architecture dimensions follow Tables 4-5: raw node/edge features are
4-dimensional, per-direction embeddings 5-dimensional (10 concatenated),
pre-embedding is a two-layer FNN with hidden size equal to the input.

Hot path
--------
The recurrent sweeps run **vectorized**: one batched gather → message →
segment-aggregate → scatter round per topo *level* (frontier batching)
instead of a Python loop over tasks, driven by the placement-independent
:class:`~repro.core.features.GpNetStructure` cached on each gpNet.  The
original per-task loop survives as ``forward_reference`` and is pinned
bit-identical to the vectorized sweep by property tests
(``tests/core/test_gnn_vectorized.py``); both paths route their affine
maps through the batch-invariant :func:`repro.nn.functional.linear`
kernel, which is what makes exact float equality possible at all
(``np.matmul`` picks different BLAS kernels for different row counts).
Use :func:`reference_path` to force the loop path (tests, benchmark
baselines) and :func:`gnn_stats` for forward/backward counters and
cumulative forward seconds.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..nn import MLP, Linear, Module, Tensor, concat, stack
from ..nn import functional as F
from ..telemetry import metrics, span
from .features import EDGE_FEATURE_DIM, NODE_FEATURE_DIM, DirectionPlan, structure_of
from .features import _group_edges_by_task  # noqa: F401  (re-export for callers)
from .gpnet import GpNet

__all__ = [
    "GpNetEmbedding",
    "GnnStats",
    "gnn_stats",
    "reference_path",
    "TwoWayMessagePassing",
    "KStepMessagePassing",
    "TwoWayNoEdge",
    "GraphSageNoEdge",
    "RawFeatureEmbedding",
    "augment_with_out_edge_means",
    "make_embedding",
]


@dataclass
class GnnStats:
    """GNN hot-path counters.

    ``forwards``/``backwards`` count whole-embedding passes (one per
    ``GpNetEmbedding`` call / backprop through it) and are deterministic
    for a given workload; ``seconds`` is the cumulative wall-clock of
    the forward passes and therefore run-dependent (reports strip it
    from their canonical form — see
    :data:`repro.experiments.base.VOLATILE_DATA_KEYS`).
    """

    forwards: int = 0
    backwards: int = 0
    seconds: float = 0.0

    def merge(self, other: "GnnStats") -> "GnnStats":
        """Accumulate ``other`` into self (for sweep-level aggregation)."""
        self.forwards += other.forwards
        self.backwards += other.backwards
        self.seconds += other.seconds
        return self

    def delta(self, since: "GnnStats") -> "GnnStats":
        """Counters accumulated since the ``since`` snapshot."""
        return GnnStats(
            forwards=self.forwards - since.forwards,
            backwards=self.backwards - since.backwards,
            seconds=self.seconds - since.seconds,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "forwards": self.forwards,
            "backwards": self.backwards,
            "gnn_seconds": self.seconds,
        }


# Process-global accumulators: embeddings are called deep inside search
# policies that know nothing about experiment plumbing, so observability
# rides on process state and callers diff snapshots around the work they
# attribute (see repro.experiments.runner._evaluate_case).  The storage
# *is* the telemetry registry — `gnn_stats()` is a compatibility view
# over the `gnn.*` counters, which also ship home automatically from
# fork workers with every task delta.
_FORWARDS = metrics().counter("gnn.forwards")
_BACKWARDS = metrics().counter("gnn.backwards")
_SECONDS = metrics().counter("gnn.seconds")


def gnn_stats() -> GnnStats:
    """Snapshot of the process-global GNN counters."""
    return GnnStats(int(_FORWARDS.value), int(_BACKWARDS.value), _SECONDS.value)


_REFERENCE_MODE = False


@contextmanager
def reference_path():
    """Route embedding forwards through the retained per-task loop.

    Used by the bit-identity property suite and as the episode
    benchmark's baseline.  Both paths share the same parameters and the
    same float semantics, so swapping the mode never changes what a
    model computes — only how fast.
    """
    global _REFERENCE_MODE
    previous = _REFERENCE_MODE
    _REFERENCE_MODE = True
    try:
        yield
    finally:
        _REFERENCE_MODE = previous


class GpNetEmbedding(Module):
    """Interface: embed a gpNet into per-node vectors (num_nodes, out_dim).

    Subclasses implement :meth:`_embed`; the shared :meth:`forward`
    wraps it with the :func:`gnn_stats` counters (forward count + wall
    seconds, and a pass-through graph node that counts backprops without
    touching the gradient values).
    """

    out_dim: int

    def forward(self, gpnet: GpNet) -> Tensor:
        began = time.perf_counter()
        with span("gnn.forward"):
            out = self._embed(gpnet)
        _FORWARDS.inc()
        _SECONDS.inc(time.perf_counter() - began)
        if not out.requires_grad:
            return out

        def backward(grad: np.ndarray) -> None:
            _BACKWARDS.inc()
            out._accumulate(grad)

        return Tensor._make(out.data, (out,), backward, "gnn-stats")

    def _embed(self, gpnet: GpNet) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError


def _aggregate(values, segment_ids, num_segments, how: str, counts=None):
    if how == "mean":
        return F.segment_mean(values, segment_ids, num_segments, counts=counts)
    if how == "sum":
        return F.segment_sum(values, segment_ids, num_segments)
    raise ValueError(f"unknown aggregation {how!r}")


class _DirectionalPass(Module):
    """One direction of Eq. 1: recurrent wavefront message passing.

    ``forward`` runs the sweep as one batched gather/aggregate round per
    topo level from the precomputed
    :class:`~repro.core.features.DirectionPlan`; ``forward_reference``
    is the retained per-task loop the property tests pin it against.
    Both apply h1/h2 through :func:`repro.nn.functional.linear`, whose
    batch-invariant kernel guarantees the two paths produce identical
    floats for any level/task partition of the same rows.

    Both paths split h1 over its concatenated input:
    ``h1([e_v ∥ x^e]) = e_v @ W_emb + (x^e @ W_edge + b)`` with
    ``W_emb = h1.weight[:embed_dim]`` and ``W_edge`` the rest — the
    identical elementwise grouping on both paths, so equality survives.
    The edge half depends only on static edge features, so the
    vectorized sweep computes it once per pass for *all* edges and
    gathers per level (batch invariance again makes gather-after equal
    to compute-on-slice).
    """

    def __init__(self, embed_dim: int, edge_dim: int, rng: np.random.Generator, aggregation: str) -> None:
        msg_dim = embed_dim + edge_dim
        self.h1 = Linear(msg_dim, msg_dim, rng)
        self.h2 = Linear(msg_dim, embed_dim, rng)
        self.embed_dim = embed_dim
        self.aggregation = aggregation

    def forward(self, gpnet: GpNet, x: Tensor, plan: DirectionPlan, reverse: bool) -> Tensor:
        """``x``: pre-embedded node features (N, embed_dim)."""
        if reverse:
            # Messages flow child -> parent: senders are dst endpoints,
            # aggregation lands on the src endpoints.
            edge_from, edge_to = gpnet.edge_dst, gpnet.edge_src
        else:
            edge_from, edge_to = gpnet.edge_src, gpnet.edge_dst
        w_emb = self.h1.weight[: self.embed_dim]
        w_edge = self.h1.weight[self.embed_dim :]
        # The edge half of every message depends only on static edge
        # features: one batched affine map for the whole pass, gathered
        # per level below.
        edge_msg = (
            F.linear(Tensor(gpnet.edge_features), w_edge, self.h1.bias)
            if gpnet.num_edges
            else None
        )
        emb = Tensor(np.zeros((gpnet.num_nodes, self.embed_dim)))
        for level in plan.levels:
            if len(level.edge_idx) == 0:
                agg = Tensor(np.zeros((len(level.nodes), self.h1.out_features)))
            else:
                idx = level.edge_idx
                msg = (
                    F.linear(emb.gather(edge_from[idx]), w_emb) + edge_msg.gather(idx)
                ).relu()
                segments = plan.node_local[edge_to[idx]]
                agg = _aggregate(msg, segments, len(level.nodes), self.aggregation)
            group_out = F.linear(agg, self.h2.weight, self.h2.bias).relu() + x[level.nodes]
            emb = F.scatter_rows(emb, level.nodes, group_out, assume_unique=True)
        return emb

    def forward_reference(
        self, gpnet: GpNet, x: Tensor, task_order, groups, reverse: bool
    ) -> Tensor:
        """Per-task loop implementation (bit-identical to ``forward``)."""
        n = gpnet.num_nodes
        if reverse:
            edge_from, edge_to = gpnet.edge_dst, gpnet.edge_src
        else:
            edge_from, edge_to = gpnet.edge_src, gpnet.edge_dst
        w_emb = self.h1.weight[: self.embed_dim]
        w_edge = self.h1.weight[self.embed_dim :]
        node_emb: list[Tensor | None] = [None] * n
        for task in task_order:
            opts = gpnet.options[task]
            local = {int(u): k for k, u in enumerate(opts)}
            idx = groups[task]
            x_group = x[opts]
            if len(idx) == 0:
                agg = Tensor(np.zeros((len(opts), self.h1.out_features)))
            else:
                senders = edge_from[idx]
                sender_emb = stack([node_emb[int(s)] for s in senders], axis=0)
                msg = (
                    F.linear(sender_emb, w_emb)
                    + F.linear(Tensor(gpnet.edge_features[idx]), w_edge, self.h1.bias)
                ).relu()
                local_ids = np.array([local[int(u)] for u in edge_to[idx]])
                agg = _aggregate(msg, local_ids, len(opts), self.aggregation)
            group_out = F.linear(agg, self.h2.weight, self.h2.bias).relu() + x_group
            for k, u in enumerate(opts):
                node_emb[int(u)] = group_out[k]
        return stack([node_emb[u] for u in range(n)], axis=0)


class TwoWayMessagePassing(GpNetEmbedding):
    """The GiPH GNN: Eq. 1 in both directions, summaries concatenated.

    The recurrent sweep runs as many message-passing steps as the graph
    is deep ("message passing: graph depth" in Table 5) — one vectorized
    frontier batch per level.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        node_dim: int = NODE_FEATURE_DIM,
        edge_dim: int = EDGE_FEATURE_DIM,
        embed_dim: int = 5,
        aggregation: str = "mean",
    ) -> None:
        self.pre = MLP([node_dim, node_dim, embed_dim], rng)
        self.forward_pass = _DirectionalPass(embed_dim, edge_dim, rng, aggregation)
        self.backward_pass = _DirectionalPass(embed_dim, edge_dim, rng, aggregation)
        self.out_dim = 2 * embed_dim

    def _embed(self, gpnet: GpNet) -> Tensor:
        x = self.pre(Tensor(gpnet.node_features))
        structure = structure_of(gpnet)
        if _REFERENCE_MODE:
            order = structure.task_order
            e_fwd = self.forward_pass.forward_reference(
                gpnet, x, order, structure.edge_groups_forward, reverse=False
            )
            e_bwd = self.backward_pass.forward_reference(
                gpnet, x, tuple(reversed(order)), structure.edge_groups_backward, reverse=True
            )
        else:
            e_fwd = self.forward_pass(gpnet, x, structure.forward_plan, reverse=False)
            e_bwd = self.backward_pass(gpnet, x, structure.backward_plan, reverse=True)
        return concat([e_fwd, e_bwd], axis=1)

    @staticmethod
    def _task_topo_order(gpnet: GpNet) -> list[int]:
        """Topological order of tasks induced by the gpNet's edges.

        Standalone Kahn derivation, kept for callers holding a bare
        gpNet; the embedding paths use the cached
        :class:`~repro.core.features.GpNetStructure` instead.
        """
        num_tasks = len(gpnet.options)
        src_tasks = gpnet.task_of[gpnet.edge_src]
        dst_tasks = gpnet.task_of[gpnet.edge_dst]
        children: dict[int, set[int]] = {t: set() for t in range(num_tasks)}
        indeg = np.zeros(num_tasks, dtype=int)
        for s, d in {(int(a), int(b)) for a, b in zip(src_tasks, dst_tasks)}:
            if d not in children[s]:
                children[s].add(d)
                indeg[d] += 1
        frontier = [t for t in range(num_tasks) if indeg[t] == 0]
        order: list[int] = []
        while frontier:
            t = frontier.pop()
            order.append(t)
            for c in children[t]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    frontier.append(c)
        if len(order) != num_tasks:
            raise RuntimeError("gpNet induced a cyclic task order")
        return order


class _SharedStepPass(Module):
    """One direction of Eq. 4: k synchronous steps, shared parameters."""

    def __init__(self, embed_dim: int, edge_dim: int, rng: np.random.Generator, aggregation: str) -> None:
        msg_dim = embed_dim + edge_dim
        self.h1 = Linear(msg_dim, msg_dim, rng)
        self.h2 = Linear(msg_dim, embed_dim, rng)
        self.aggregation = aggregation

    def forward(self, gpnet: GpNet, e0: Tensor, steps: int, reverse: bool) -> Tensor:
        n = gpnet.num_nodes
        senders = gpnet.edge_dst if reverse else gpnet.edge_src
        receivers = gpnet.edge_src if reverse else gpnet.edge_dst
        efeat = Tensor(gpnet.edge_features)
        e = e0
        for _ in range(steps):
            if gpnet.num_edges == 0:
                msg_agg = Tensor(np.zeros((n, self.h1.out_features)))
            else:
                msg = self.h1(concat([e[senders], efeat], axis=1)).relu()
                msg_agg = _aggregate(msg, receivers, n, self.aggregation)
            e = self.h2(msg_agg).relu() + e0
        return e


class KStepMessagePassing(GpNetEmbedding):
    """GiPH-k (Eq. 4): bounded k-step two-way message passing.

    Caps the sequential depth of the GNN — the paper's Table 7 / Fig. 17
    remedy for large graphs (GiPH-3, GiPH-5).  Already fully batched
    over edges per step, so it has no separate loop reference.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        k: int,
        node_dim: int = NODE_FEATURE_DIM,
        edge_dim: int = EDGE_FEATURE_DIM,
        embed_dim: int = 5,
        aggregation: str = "mean",
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.pre = MLP([node_dim, node_dim, embed_dim], rng)  # h3 in Eq. 4
        self.forward_pass = _SharedStepPass(embed_dim, edge_dim, rng, aggregation)
        self.backward_pass = _SharedStepPass(embed_dim, edge_dim, rng, aggregation)
        self.out_dim = 2 * embed_dim

    def _embed(self, gpnet: GpNet) -> Tensor:
        e0 = self.pre(Tensor(gpnet.node_features))
        e_fwd = self.forward_pass(gpnet, e0, self.k, reverse=False)
        e_bwd = self.backward_pass(gpnet, e0, self.k, reverse=True)
        return concat([e_fwd, e_bwd], axis=1)


def augment_with_out_edge_means(gpnet: GpNet) -> np.ndarray:
    """Node features with mean out-edge features appended (GiPH-NE input).

    "To compensate for the loss of edge information, the mean feature
    value of out edges of a node is appended to its node feature" (B.6).
    """
    n = gpnet.num_nodes
    edge_dim = gpnet.edge_features.shape[1] if gpnet.num_edges else EDGE_FEATURE_DIM
    sums = np.zeros((n, edge_dim))
    counts = np.zeros(n)
    if gpnet.num_edges:
        np.add.at(sums, gpnet.edge_src, gpnet.edge_features)
        np.add.at(counts, gpnet.edge_src, 1.0)
    means = sums / np.maximum(counts, 1.0)[:, None]
    return np.hstack([gpnet.node_features, means])


class _NoEdgeDirectionalPass(Module):
    """Wavefront pass without edge features (GiPH-NE).

    Same two-path structure as :class:`_DirectionalPass`; messages are
    the sender embeddings alone.
    """

    def __init__(self, embed_dim: int, rng: np.random.Generator, aggregation: str) -> None:
        self.h1 = Linear(embed_dim, embed_dim, rng)
        self.h2 = Linear(embed_dim, embed_dim, rng)
        self.embed_dim = embed_dim
        self.aggregation = aggregation

    def forward(self, gpnet: GpNet, x: Tensor, plan: DirectionPlan, reverse: bool) -> Tensor:
        if reverse:
            edge_from, edge_to = gpnet.edge_dst, gpnet.edge_src
        else:
            edge_from, edge_to = gpnet.edge_src, gpnet.edge_dst
        emb = Tensor(np.zeros((gpnet.num_nodes, self.embed_dim)))
        for level in plan.levels:
            if len(level.edge_idx) == 0:
                agg = Tensor(np.zeros((len(level.nodes), self.h1.out_features)))
            else:
                idx = level.edge_idx
                msg = F.linear(emb.gather(edge_from[idx]), self.h1.weight, self.h1.bias).relu()
                segments = plan.node_local[edge_to[idx]]
                agg = _aggregate(msg, segments, len(level.nodes), self.aggregation)
            group_out = F.linear(agg, self.h2.weight, self.h2.bias).relu() + x[level.nodes]
            emb = F.scatter_rows(emb, level.nodes, group_out, assume_unique=True)
        return emb

    def forward_reference(
        self, gpnet: GpNet, x: Tensor, task_order, groups, reverse: bool
    ) -> Tensor:
        n = gpnet.num_nodes
        if reverse:
            edge_from, edge_to = gpnet.edge_dst, gpnet.edge_src
        else:
            edge_from, edge_to = gpnet.edge_src, gpnet.edge_dst
        node_emb: list[Tensor | None] = [None] * n
        for task in task_order:
            opts = gpnet.options[task]
            local = {int(u): k for k, u in enumerate(opts)}
            idx = groups[task]
            if len(idx) == 0:
                agg = Tensor(np.zeros((len(opts), self.h1.out_features)))
            else:
                sender_emb = stack([node_emb[int(s)] for s in edge_from[idx]], axis=0)
                msg = F.linear(sender_emb, self.h1.weight, self.h1.bias).relu()
                local_ids = np.array([local[int(u)] for u in edge_to[idx]])
                agg = _aggregate(msg, local_ids, len(opts), self.aggregation)
            group_out = F.linear(agg, self.h2.weight, self.h2.bias).relu() + x[opts]
            for k, u in enumerate(opts):
                node_emb[int(u)] = group_out[k]
        return stack([node_emb[u] for u in range(n)], axis=0)


class TwoWayNoEdge(GpNetEmbedding):
    """GiPH-NE: two-way message passing on augmented node features only.

    Node features are the 8-dim augmentation (raw + mean out-edge); a
    linear projection (the "no node transform layer" of Table 5) brings
    them to the embedding dimension.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        node_dim: int = NODE_FEATURE_DIM + EDGE_FEATURE_DIM,
        embed_dim: int = 5,
        aggregation: str = "mean",
    ) -> None:
        self.proj = Linear(node_dim, embed_dim, rng)
        self.forward_pass = _NoEdgeDirectionalPass(embed_dim, rng, aggregation)
        self.backward_pass = _NoEdgeDirectionalPass(embed_dim, rng, aggregation)
        self.out_dim = 2 * embed_dim

    def _embed(self, gpnet: GpNet) -> Tensor:
        x = self.proj(Tensor(augment_with_out_edge_means(gpnet)))
        structure = structure_of(gpnet)
        if _REFERENCE_MODE:
            order = structure.task_order
            e_fwd = self.forward_pass.forward_reference(
                gpnet, x, order, structure.edge_groups_forward, reverse=False
            )
            e_bwd = self.backward_pass.forward_reference(
                gpnet, x, tuple(reversed(order)), structure.edge_groups_backward, reverse=True
            )
        else:
            e_fwd = self.forward_pass(gpnet, x, structure.forward_plan, reverse=False)
            e_bwd = self.backward_pass(gpnet, x, structure.backward_plan, reverse=True)
        return concat([e_fwd, e_bwd], axis=1)


class GraphSageNoEdge(GpNetEmbedding):
    """GraphSAGE-NE: 3 uni-directional GraphSAGE layers (Hamilton 2017).

    h^{l+1}_u = ReLU(W_l [h^l_u ∥ mean_{v∈parents(u)} h^l_v]); forward
    direction only — the divergence observed in Fig. 14 traces back to
    this missing backward view.  Each layer already aggregates over all
    edges in one segment op, so it has no separate loop reference.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        node_dim: int = NODE_FEATURE_DIM + EDGE_FEATURE_DIM,
        hidden_dim: int = 16,
        out_dim: int = 10,
        layers: int = 3,
        aggregation: str = "mean",
    ) -> None:
        if layers < 1:
            raise ValueError("layers must be >= 1")
        self.pre = Linear(node_dim, hidden_dim, rng)
        self.sage_layers = [Linear(2 * hidden_dim, hidden_dim, rng) for _ in range(layers)]
        self.head = Linear(hidden_dim, out_dim, rng)
        self.aggregation = aggregation
        self.out_dim = out_dim

    def _embed(self, gpnet: GpNet) -> Tensor:
        h = self.pre(Tensor(augment_with_out_edge_means(gpnet))).relu()
        n = gpnet.num_nodes
        for layer in self.sage_layers:
            if gpnet.num_edges == 0:
                neigh = Tensor(np.zeros((n, h.shape[1])))
            else:
                neigh = _aggregate(h[gpnet.edge_src], gpnet.edge_dst, n, self.aggregation)
            h = layer(concat([h, neigh], axis=1)).relu()
        return self.head(h)


class RawFeatureEmbedding(GpNetEmbedding):
    """GiPH-NE-Pol: no GNN — augmented raw features straight to the policy."""

    def __init__(self, node_dim: int = NODE_FEATURE_DIM + EDGE_FEATURE_DIM) -> None:
        self.out_dim = node_dim

    def _embed(self, gpnet: GpNet) -> Tensor:
        return Tensor(augment_with_out_edge_means(gpnet))


def make_embedding(kind: str, rng: np.random.Generator, **kwargs) -> GpNetEmbedding:
    """Factory over the paper's GNN variants.

    ``kind``: "giph", "giph-3", "giph-5", "giph-k" (pass k=), "giph-ne",
    "graphsage-ne", or "giph-ne-pol".
    """
    kind = kind.lower()
    if kind == "giph":
        return TwoWayMessagePassing(rng, **kwargs)
    if kind.startswith("giph-") and kind[5:].isdigit():
        return KStepMessagePassing(rng, k=int(kind[5:]), **kwargs)
    if kind == "giph-k":
        return KStepMessagePassing(rng, **kwargs)
    if kind == "giph-ne":
        return TwoWayNoEdge(rng, **kwargs)
    if kind == "graphsage-ne":
        return GraphSageNoEdge(rng, **kwargs)
    if kind == "giph-ne-pol":
        return RawFeatureEmbedding(**kwargs)
    raise ValueError(f"unknown embedding kind {kind!r}")
