"""gpNet: the universal graph representation of a placement (paper §4.2.1).

Given a placement P = (G, N, M), gpNet produces a graph H whose nodes are
all feasible (task, device) pairs and whose edges connect placement
options of dependent tasks when at least one endpoint is a *pivot* (a
node of the current placement).  Each node of H is simultaneously an
action of the search MDP.

Sizes (paper §4.2.1):  |V_H| = Σ_i |D_i|,   |E_H| = Σ_i |D_i|·|E_i| − |E|.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .placement import PlacementProblem

__all__ = ["GpNet", "build_gpnet"]


@dataclass(frozen=True)
class GpNet:
    """The gpNet graph H in array form, ready for batched message passing.

    Attributes
    ----------
    task_of / device_of: per-node labels — node ``u`` is the pair
        ``(task_of[u], device_of[u])``; taking action ``u`` places that
        task on that device.
    is_pivot: nodes belonging to the current placement M.
    options: ``options[i]`` = node indices of O_i (all placements of task i).
    edge_src / edge_dst: H's edges (aligned arrays).
    node_features / edge_features: raw feature matrices x^n and x^e.
    placement: the placement M that H encodes.
    """

    task_of: np.ndarray
    device_of: np.ndarray
    is_pivot: np.ndarray
    options: tuple[np.ndarray, ...]
    edge_src: np.ndarray
    edge_dst: np.ndarray
    node_features: np.ndarray
    edge_features: np.ndarray
    placement: tuple[int, ...]

    @property
    def num_nodes(self) -> int:
        return len(self.task_of)

    @property
    def num_edges(self) -> int:
        return len(self.edge_src)

    def node_index(self, task: int, device: int) -> int:
        """Index of the node labeled (task, device); KeyError if infeasible."""
        opts = self.options[task]
        matches = opts[self.device_of[opts] == device]
        if len(matches) == 0:
            raise KeyError(f"({task}, {device}) is not a feasible placement option")
        return int(matches[0])

    def action_of(self, node: int) -> tuple[int, int]:
        """The (task, device) action encoded by ``node``."""
        return int(self.task_of[node]), int(self.device_of[node])


def build_gpnet(
    problem: PlacementProblem,
    placement: Sequence[int],
    node_features: np.ndarray,
    edge_feature_fn,
) -> GpNet:
    """Construct H per Algorithm "gpNet" (paper Appendix B.1).

    ``node_features`` must already be computed per option (see
    :mod:`repro.core.features`, which owns the f_n feature map);
    ``edge_feature_fn(edge, src_dev, dst_dev) -> vector`` is f_e.
    """
    graph = problem.graph
    placement = problem.validate_placement(placement)

    # Node generation: one node per feasible (task, device) pair.
    task_of: list[int] = []
    device_of: list[int] = []
    options: list[np.ndarray] = []
    pivot_node: list[int] = []
    for i, feas in enumerate(problem.feasible_sets):
        start = len(task_of)
        for d in feas:
            task_of.append(i)
            device_of.append(d)
        opts = np.arange(start, len(task_of))
        options.append(opts)
        pivot_node.append(start + feas.index(placement[i]))

    num_nodes = len(task_of)
    is_pivot = np.zeros(num_nodes, dtype=bool)
    is_pivot[pivot_node] = True

    if node_features.shape[0] != num_nodes:
        raise ValueError(
            f"node_features has {node_features.shape[0]} rows for {num_nodes} gpNet nodes"
        )

    # Edge generation: (u1, u2) for each task edge (i, j) when u1 or u2 is
    # a pivot.  Equivalently: pivot_i -> every option of j, plus every
    # option of i -> pivot_j (the pivot-pivot pair deduplicated).
    src: list[int] = []
    dst: list[int] = []
    efeat: list[np.ndarray] = []
    device_of_arr = np.array(device_of)
    for (i, j) in graph.edges:
        pi, pj = pivot_node[i], pivot_node[j]
        for u2 in options[j]:
            src.append(pi)
            dst.append(int(u2))
            efeat.append(edge_feature_fn((i, j), placement[i], int(device_of_arr[u2])))
        for u1 in options[i]:
            if int(u1) == pi:
                continue  # (pivot_i, pivot_j) already added above
            src.append(int(u1))
            dst.append(pj)
            efeat.append(edge_feature_fn((i, j), int(device_of_arr[u1]), placement[j]))

    edge_features = (
        np.array(efeat, dtype=np.float64) if efeat else np.zeros((0, 4), dtype=np.float64)
    )
    return GpNet(
        task_of=np.array(task_of, dtype=np.int64),
        device_of=device_of_arr.astype(np.int64),
        is_pivot=is_pivot,
        options=tuple(options),
        edge_src=np.array(src, dtype=np.int64),
        edge_dst=np.array(dst, dtype=np.int64),
        node_features=np.asarray(node_features, dtype=np.float64),
        edge_features=edge_features,
        placement=placement,
    )
