"""Placement problems and placements (paper §3).

A placement maps every task of an application graph onto a feasible
device of the target network: ``M : V -> D`` with ``M(v_i) ∈ D_i``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..devices.network import DeviceNetwork
from ..graphs.task_graph import TaskGraph
from ..sim.latency import CostModel

__all__ = ["PlacementProblem", "random_placement", "greedy_fastest_device_placement"]


@dataclass(frozen=True)
class PlacementProblem:
    """One problem instance (G, N): a task graph on a device network.

    Bundles the cost model (expected compute/communication times) and the
    per-task feasible device sets so that policies, baselines and the
    simulator all agree on the instance's semantics.
    """

    graph: TaskGraph
    network: DeviceNetwork
    cost_model: CostModel = field(default=None, compare=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.cost_model is None:
            object.__setattr__(self, "cost_model", CostModel(self.graph, self.network))
        elif self.cost_model.graph is not self.graph or self.cost_model.network is not self.network:
            raise ValueError("cost_model must be built for this graph/network pair")

    @property
    def feasible_sets(self) -> list[tuple[int, ...]]:
        """D_i for every task i (dense device indices)."""
        return self.cost_model.feasible_sets

    @property
    def num_actions(self) -> int:
        """|A_{G,N}| = Σ_i |D_i| (paper §4.1)."""
        return sum(len(s) for s in self.feasible_sets)

    def state_space_size(self) -> float:
        """|S_{G,N}| = Π_i |D_i| (can overflow int; returned as float)."""
        return float(np.prod([float(len(s)) for s in self.feasible_sets]))

    def validate_placement(self, placement: Sequence[int]) -> tuple[int, ...]:
        """Check feasibility and return the placement as a tuple."""
        placement = tuple(int(d) for d in placement)
        if len(placement) != self.graph.num_tasks:
            raise ValueError(
                f"placement length {len(placement)} != {self.graph.num_tasks} tasks"
            )
        for i, d in enumerate(placement):
            if d not in self.feasible_sets[i]:
                raise ValueError(f"task {i} placed on infeasible device index {d}")
        return placement


def random_placement(
    problem: PlacementProblem, rng: np.random.Generator
) -> tuple[int, ...]:
    """Uniformly sample a feasible placement — the paper's random baseline
    and the initial state of every search episode."""
    return tuple(int(rng.choice(list(feas))) for feas in problem.feasible_sets)


def greedy_fastest_device_placement(problem: PlacementProblem) -> tuple[int, ...]:
    """Place every task on its fastest feasible device (ignores comm).

    A deliberately myopic initializer: good per-task compute, poor
    communication locality — useful as a "placement that requires
    improvement" (paper §4.2).
    """
    w = problem.cost_model.W
    return tuple(
        int(min(feas, key=lambda d: w[i, d])) for i, feas in enumerate(problem.feasible_sets)
    )
