"""Policy network: per-action score function + masked softmax (paper §4.2.3).

The policy scores each gpNet node (= action) independently with a shared
MLP g(.), so the network size is independent of the gpNet size — the key
to scaling across problem instances.
"""

from __future__ import annotations

import numpy as np

from ..nn import MLP, Module, Tensor
from ..nn import functional as F

__all__ = ["ScorePolicy"]


class ScorePolicy(Module):
    """q_a = g(e_a); P(a|s) = softmax over feasible actions.

    Parameters
    ----------
    embed_dim: dimension of per-node embeddings from the GNN.
    hidden_dim: score MLP hidden width (16 in Table 5).
    """

    def __init__(self, embed_dim: int, rng: np.random.Generator, hidden_dim: int = 16) -> None:
        self.score = MLP([embed_dim, hidden_dim, 1], rng)

    def log_probs(self, embeddings: Tensor, mask: np.ndarray) -> Tensor:
        """Log action probabilities over gpNet nodes (masked entries ≈ -inf).

        The whole candidate set is scored in one batched pass: the MLP
        maps the (num_nodes, embed_dim) embedding matrix through two
        matmuls, so per-step policy cost is a couple of BLAS calls
        rather than a per-action Python loop — the scoring half of the
        vectorized episode hot path (the embedding half lives in
        :mod:`repro.core.gnn`).
        """
        scores = self.score(embeddings).reshape(-1)
        return F.masked_log_softmax(scores, mask)

    def sample(
        self,
        embeddings: Tensor,
        mask: np.ndarray,
        rng: np.random.Generator,
        greedy: bool = False,
    ) -> tuple[int, Tensor]:
        """Pick an action; return (node index, its log-probability node).

        The returned log-probability participates in the autograd graph,
        so REINFORCE losses can backpropagate through it.
        """
        log_probs = self.log_probs(embeddings, mask)
        if greedy:
            action = int(np.argmax(np.where(mask, log_probs.data, -np.inf)))
        else:
            probs = np.exp(log_probs.data)
            probs = np.where(mask, probs, 0.0)
            probs = probs / probs.sum()
            action = int(rng.choice(len(probs), p=probs))
        return action, log_probs[action]
