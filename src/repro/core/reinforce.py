"""REINFORCE training of the GiPH policy (paper §4.1, Appendix B.7).

Per episode, a problem (G, N) is sampled from the training set and the
agent searches from a random placement.  The policy gradient uses
discounted returns with the paper's variance-reduction baseline: "the
average reward before step t in an episode".

    θ ← θ + α Σ_t γ^t ∇ log π(a_t|s_t) (Σ_{t'≥t} γ^{t'-t} r_{t'} − b_t)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..nn import Adam, Tensor, stack
from ..runtime.evaluator import EvaluatorPool, EvaluatorStats, PlacementEvaluator
from ..telemetry import metrics, span
from ..sim.objectives import Objective
from .agent import GiPHAgent
from .env import PlacementEnv
from .features import FeatureConfig, GpNetBuilder
from .placement import PlacementProblem

__all__ = [
    "ReinforceConfig",
    "EpisodeStats",
    "ReinforceTrainer",
    "discounted_returns",
    "collect_episode",
    "episode_loss",
]


def discounted_returns(rewards: Sequence[float], gamma: float) -> np.ndarray:
    """G_t = Σ_{t'≥t} γ^{t'-t} r_{t'} (suffix scan)."""
    returns = np.zeros(len(rewards))
    acc = 0.0
    for t in range(len(rewards) - 1, -1, -1):
        acc = rewards[t] + gamma * acc
        returns[t] = acc
    return returns


def average_reward_baseline(rewards: Sequence[float]) -> np.ndarray:
    """b_t = mean of rewards before step t (b_0 = 0) — §B.7's baseline."""
    baseline = np.zeros(len(rewards))
    if len(rewards) > 1:
        cums = np.cumsum(rewards)
        t = np.arange(1, len(rewards))
        baseline[1:] = cums[:-1] / t
    return baseline


@dataclass(frozen=True)
class ReinforceConfig:
    """Training hyperparameters (paper §5 experiment details).

    learning_rate 0.01 with Adam, γ = 0.97, 200 episodes; grad clipping
    is an implementation stabilizer for the NumPy substrate.
    """

    learning_rate: float = 0.01
    gamma: float = 0.97
    episodes: int = 200
    episode_length: int | None = None  # None -> 2|V| per problem
    grad_clip: float = 10.0
    feature_config: FeatureConfig = field(default_factory=FeatureConfig)

    def __post_init__(self) -> None:
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError("gamma must be in [0, 1]")
        if self.episodes < 1:
            raise ValueError("episodes must be >= 1")
        if self.grad_clip <= 0:
            raise ValueError("grad_clip must be positive")


def collect_episode(
    agent: GiPHAgent, env: PlacementEnv, rng: np.random.Generator
) -> tuple[list[Tensor], list[float], float, float, float]:
    """Roll out one on-policy episode.

    Returns ``(log_probs, rewards, initial_value, final_value,
    best_value)``.  Shared by the serial trainer and the batched worker
    path (:mod:`repro.parallel.episodes`) so their rollout semantics
    cannot drift apart.
    """
    state = env.reset(rng=rng)
    initial_value = state.objective_value
    best_value = initial_value
    log_probs: list[Tensor] = []
    rewards: list[float] = []
    done = False
    while not done:
        action, log_prob = agent.act(env, state)
        state, reward, done = env.step(action)
        log_probs.append(log_prob)
        rewards.append(reward)
        best_value = min(best_value, state.objective_value)
    return log_probs, rewards, initial_value, state.objective_value, best_value


def episode_loss(
    log_probs: Sequence[Tensor], rewards: Sequence[float], config: "ReinforceConfig"
) -> Tensor:
    """-Σ_t γ^t log π(a_t|s_t) · advantage_t for one episode.

    The per-step advantages are assembled as one NumPy vector and
    applied to the stacked log-prob tensor in a single fused
    multiply-sum, so the backward pass scatters every step's scalar
    gradient in one array op instead of walking a Python chain of
    per-step Tensor sums.  Each log-prob still receives exactly
    ``-advantage_t`` — bit-identical to the gradient the per-step sum
    delivered, so training results are unchanged.
    """
    if len(log_probs) != len(rewards):
        raise ValueError("log_probs and rewards must have equal lengths")
    if not log_probs:
        return Tensor(np.zeros(()))
    returns = discounted_returns(rewards, config.gamma)
    baseline = average_reward_baseline(rewards)
    discount = config.gamma ** np.arange(len(rewards))
    advantages = discount * (returns - baseline)
    return (stack(list(log_probs), axis=0) * Tensor(-advantages)).sum()


@dataclass(frozen=True)
class EpisodeStats:
    """Per-episode training record.

    ``grad_norm`` is the pre-clip L2 norm of *this episode's* policy
    gradient in both training modes.  In serial mode that gradient is
    also the applied update; in batched mode the applied update is the
    slot-ordered mean of the round's gradients (clipped once), whose
    norm is not recorded per episode.
    """

    episode: int
    initial_value: float
    final_value: float
    best_value: float
    total_reward: float
    grad_norm: float


class ReinforceTrainer:
    """Trains an agent across a distribution of placement problems."""

    def __init__(
        self,
        agent: GiPHAgent,
        objective: Objective,
        config: ReinforceConfig | None = None,
        max_cached_problems: int = 128,
    ) -> None:
        self.agent = agent
        self.objective = objective
        self.config = config or ReinforceConfig()
        self.optimizer = Adam(list(agent.parameters()), lr=self.config.learning_rate)
        self.history: list[EpisodeStats] = []
        # One evaluator and one gpNet builder per problem instance,
        # shared across the episode batch: the training set repeats
        # problems, so cached placement values/timelines and the
        # builder's static per-instance precompute pay off across
        # episodes instead of being rebuilt each one.  The two caches
        # cover the same problems, so the evaluator pool's LRU drives
        # both: its eviction hook drops the paired builder, keeping a
        # long problem sweep from pinning a builder whose evaluator is
        # gone (or vice versa).
        self._evaluators = EvaluatorPool(
            objective, max_problems=max_cached_problems, on_evict=self._drop_builder
        )
        self._builders: dict[int, GpNetBuilder] = {}

    def _drop_builder(self, problem_id: int, evaluator: PlacementEvaluator) -> None:
        self._builders.pop(problem_id, None)

    def evaluator_for(self, problem: PlacementProblem) -> PlacementEvaluator:
        """The shared scoring path for ``problem`` (created on first use)."""
        return self._evaluators.get(problem)

    def evaluator_stats(self) -> EvaluatorStats:
        """Aggregate cache/eval counters across all training problems."""
        return self._evaluators.stats()

    def _builder_for(self, problem: PlacementProblem) -> GpNetBuilder:
        # Touch (or create) the evaluator first so the pair's recency in
        # the pool's LRU moves in lockstep with builder use.
        self._evaluators.get(problem)
        builder = self._builders.get(id(problem))
        if builder is None:
            builder = GpNetBuilder(problem, self.config.feature_config)
            self._builders[id(problem)] = builder
        return builder

    def run_episode(self, problem: PlacementProblem, rng: np.random.Generator) -> EpisodeStats:
        """Collect one on-policy episode and apply a gradient update."""
        cfg = self.config
        env = PlacementEnv(
            problem,
            self.objective,
            episode_length=cfg.episode_length,
            feature_config=cfg.feature_config,
            evaluator=self.evaluator_for(problem),
            builder=self._builder_for(problem),
        )
        with span("reinforce.episode"):
            log_probs, rewards, initial_value, final_value, best_value = collect_episode(
                self.agent, env, rng
            )
            loss = episode_loss(log_probs, rewards, cfg)
        with span("reinforce.grad"):
            self.optimizer.zero_grad()
            loss.backward()
            grad_norm = self.optimizer.clip_grad_norm(cfg.grad_clip)
            self.optimizer.step()

        metrics().counter("reinforce.episodes").inc()
        stats = EpisodeStats(
            episode=len(self.history),
            initial_value=initial_value,
            final_value=final_value,
            best_value=best_value,
            total_reward=float(sum(rewards)),
            grad_norm=grad_norm,
        )
        self.history.append(stats)
        return stats

    def train(
        self,
        problems: Sequence[PlacementProblem],
        rng: np.random.Generator,
        episodes: int | None = None,
        callback: Callable[[EpisodeStats], None] | None = None,
        *,
        batch_size: int = 1,
        workers: int = 1,
        backend=None,
    ) -> list[EpisodeStats]:
        """Run ``episodes`` episodes, sampling a problem per episode.

        ``batch_size`` (K) switches to batched collection: K episodes
        are rolled out against a snapshot of the current weights — on
        ``workers`` processes when > 1 — and their gradients averaged
        into one clipped optimizer step.  K=1 is exactly today's serial
        semantics (one episode, one step, all randomness from ``rng``),
        so existing callers are unchanged; with K>1 the per-episode
        randomness derives from ``(round seed, slot)`` streams, making
        the result bit-identical for any worker count.

        ``backend`` overrides the executor (``workers`` then only sizes
        the default); update rounds are inherently sequential, so only
        the inline/fork backends apply — a shard backend's ``pool``
        raises cleanly.
        """
        from ..parallel.backends import resolve_backend

        if not problems:
            raise ValueError("training needs at least one problem")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        backend = resolve_backend(backend, workers)
        total = episodes or self.config.episodes
        if batch_size == 1:
            # Serial semantics: parallel episode collection needs K > 1
            # (a single-episode update has nothing to fan out).
            stats = []
            for _ in range(total):
                problem = problems[int(rng.integers(0, len(problems)))]
                ep = self.run_episode(problem, rng)
                stats.append(ep)
                if callback is not None:
                    callback(ep)
            return stats
        return self._train_batched(list(problems), rng, total, callback, batch_size, backend)

    def _train_batched(
        self,
        problems: list[PlacementProblem],
        rng: np.random.Generator,
        total: int,
        callback: Callable[[EpisodeStats], None] | None,
        batch_size: int,
        backend,
    ) -> list[EpisodeStats]:
        import tempfile

        from ..parallel.episodes import (
            BatchContext,
            EpisodePayload,
            rollout_episode,
            write_snapshot,
        )

        if not getattr(self.objective, "deterministic", False) and not hasattr(
            self.objective, "reseeded"
        ):
            # Episodes run against snapshot weights in (possibly) separate
            # processes, so a shared mutable noise rng cannot advance across
            # them.  Objectives exposing ``reseeded(rng)`` opt into the
            # noise-resampling mode instead: each episode draws noise from
            # its own (round, slot)-derived stream.
            raise ValueError(
                "batched training needs a deterministic objective or one "
                "supporting reseeded(rng) for per-episode noise resampling; "
                f"{type(self.objective).__name__} is neither"
            )
        cfg = self.config
        params = list(self.agent.parameters())
        stats: list[EpisodeStats] = []
        context = BatchContext(problems, self.objective, cfg, self.agent)
        with tempfile.TemporaryDirectory(prefix="repro-rounds-") as rounds_dir, \
                backend.pool(context) as pool:
            remaining = total
            round_index = 0
            while remaining > 0:
                k = min(batch_size, remaining)
                indices = [int(rng.integers(0, len(problems))) for _ in range(k)]
                root = int(rng.integers(0, 2**63))
                # The round's weights are broadcast by file reference:
                # written once here, unpickled once per (worker, round) —
                # not pickled into each of the K slot payloads.
                snapshot = write_snapshot(self.agent.state_dict(), rounds_dir, round_index)
                round_index += 1
                rollouts = pool.map(
                    rollout_episode,
                    [
                        EpisodePayload(problem_index=p, root=root, slot=s, snapshot=snapshot)
                        for s, p in enumerate(indices)
                    ],
                )
                # Mean gradient, summed in slot order so the float op
                # order (and thus the update) is worker-count independent.
                with span("reinforce.grad"):
                    for i, param in enumerate(params):
                        acc = None
                        for rollout in rollouts:
                            grad = rollout.grads[i]
                            if grad is None:
                                continue
                            acc = grad.copy() if acc is None else acc + grad
                        param.grad = acc / k if acc is not None else None
                    self.optimizer.clip_grad_norm(cfg.grad_clip)
                    self.optimizer.step()
                for rollout in rollouts:
                    ep = EpisodeStats(
                        episode=len(self.history),
                        initial_value=rollout.initial_value,
                        final_value=rollout.final_value,
                        best_value=rollout.best_value,
                        total_reward=rollout.total_reward,
                        grad_norm=rollout.grad_norm,
                    )
                    self.history.append(ep)
                    stats.append(ep)
                    if callback is not None:
                        callback(ep)
                remaining -= k
        return stats
