"""REINFORCE training of the GiPH policy (paper §4.1, Appendix B.7).

Per episode, a problem (G, N) is sampled from the training set and the
agent searches from a random placement.  The policy gradient uses
discounted returns with the paper's variance-reduction baseline: "the
average reward before step t in an episode".

    θ ← θ + α Σ_t γ^t ∇ log π(a_t|s_t) (Σ_{t'≥t} γ^{t'-t} r_{t'} − b_t)
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..nn import Adam, Tensor
from ..runtime.evaluator import EvaluatorPool, EvaluatorStats, PlacementEvaluator
from ..sim.objectives import Objective
from .agent import GiPHAgent
from .env import PlacementEnv
from .features import FeatureConfig, GpNetBuilder
from .placement import PlacementProblem

__all__ = ["ReinforceConfig", "EpisodeStats", "ReinforceTrainer", "discounted_returns"]


def discounted_returns(rewards: Sequence[float], gamma: float) -> np.ndarray:
    """G_t = Σ_{t'≥t} γ^{t'-t} r_{t'} (suffix scan)."""
    returns = np.zeros(len(rewards))
    acc = 0.0
    for t in range(len(rewards) - 1, -1, -1):
        acc = rewards[t] + gamma * acc
        returns[t] = acc
    return returns


def average_reward_baseline(rewards: Sequence[float]) -> np.ndarray:
    """b_t = mean of rewards before step t (b_0 = 0) — §B.7's baseline."""
    baseline = np.zeros(len(rewards))
    if len(rewards) > 1:
        cums = np.cumsum(rewards)
        t = np.arange(1, len(rewards))
        baseline[1:] = cums[:-1] / t
    return baseline


@dataclass(frozen=True)
class ReinforceConfig:
    """Training hyperparameters (paper §5 experiment details).

    learning_rate 0.01 with Adam, γ = 0.97, 200 episodes; grad clipping
    is an implementation stabilizer for the NumPy substrate.
    """

    learning_rate: float = 0.01
    gamma: float = 0.97
    episodes: int = 200
    episode_length: int | None = None  # None -> 2|V| per problem
    grad_clip: float = 10.0
    feature_config: FeatureConfig = field(default_factory=FeatureConfig)

    def __post_init__(self) -> None:
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError("gamma must be in [0, 1]")
        if self.episodes < 1:
            raise ValueError("episodes must be >= 1")
        if self.grad_clip <= 0:
            raise ValueError("grad_clip must be positive")


@dataclass(frozen=True)
class EpisodeStats:
    """Per-episode training record."""

    episode: int
    initial_value: float
    final_value: float
    best_value: float
    total_reward: float
    grad_norm: float


class ReinforceTrainer:
    """Trains an agent across a distribution of placement problems."""

    def __init__(
        self,
        agent: GiPHAgent,
        objective: Objective,
        config: ReinforceConfig | None = None,
    ) -> None:
        self.agent = agent
        self.objective = objective
        self.config = config or ReinforceConfig()
        self.optimizer = Adam(list(agent.parameters()), lr=self.config.learning_rate)
        self.history: list[EpisodeStats] = []
        # One evaluator and one gpNet builder per problem instance,
        # shared across the episode batch: the training set repeats
        # problems, so cached placement values/timelines and the
        # builder's static per-instance precompute pay off across
        # episodes instead of being rebuilt each one.
        self._evaluators = EvaluatorPool(objective)
        self._builders: OrderedDict[int, GpNetBuilder] = OrderedDict()

    def evaluator_for(self, problem: PlacementProblem) -> PlacementEvaluator:
        """The shared scoring path for ``problem`` (created on first use)."""
        return self._evaluators.get(problem)

    def evaluator_stats(self) -> EvaluatorStats:
        """Aggregate cache/eval counters across all training problems."""
        return self._evaluators.stats()

    def _builder_for(self, problem: PlacementProblem) -> GpNetBuilder:
        builder = self._builders.get(id(problem))
        if builder is None:
            builder = GpNetBuilder(problem, self.config.feature_config)
            self._builders[id(problem)] = builder
            # Same LRU bound as the evaluator pool: don't pin one builder
            # per instance across an arbitrarily large problem sweep.
            if len(self._builders) > self._evaluators.max_problems:
                self._builders.popitem(last=False)
        else:
            self._builders.move_to_end(id(problem))
        return builder

    def run_episode(self, problem: PlacementProblem, rng: np.random.Generator) -> EpisodeStats:
        """Collect one on-policy episode and apply a gradient update."""
        cfg = self.config
        env = PlacementEnv(
            problem,
            self.objective,
            episode_length=cfg.episode_length,
            feature_config=cfg.feature_config,
            evaluator=self.evaluator_for(problem),
            builder=self._builder_for(problem),
        )
        state = env.reset(rng=rng)
        initial_value = state.objective_value
        best_value = initial_value

        log_probs: list[Tensor] = []
        rewards: list[float] = []
        done = False
        while not done:
            action, log_prob = self.agent.act(env, state)
            state, reward, done = env.step(action)
            log_probs.append(log_prob)
            rewards.append(reward)
            best_value = min(best_value, state.objective_value)

        returns = discounted_returns(rewards, cfg.gamma)
        baseline = average_reward_baseline(rewards)
        discount = cfg.gamma ** np.arange(len(rewards))
        advantages = discount * (returns - baseline)

        # loss = -Σ_t γ^t log π(a_t|s_t) · advantage_t
        loss = sum(
            lp * float(-adv) for lp, adv in zip(log_probs, advantages)
        )
        self.optimizer.zero_grad()
        loss.backward()
        grad_norm = self.optimizer.clip_grad_norm(cfg.grad_clip)
        self.optimizer.step()

        stats = EpisodeStats(
            episode=len(self.history),
            initial_value=initial_value,
            final_value=state.objective_value,
            best_value=best_value,
            total_reward=float(sum(rewards)),
            grad_norm=grad_norm,
        )
        self.history.append(stats)
        return stats

    def train(
        self,
        problems: Sequence[PlacementProblem],
        rng: np.random.Generator,
        episodes: int | None = None,
        callback: Callable[[EpisodeStats], None] | None = None,
    ) -> list[EpisodeStats]:
        """Run ``episodes`` episodes, sampling a problem per episode."""
        if not problems:
            raise ValueError("training needs at least one problem")
        stats = []
        for _ in range(episodes or self.config.episodes):
            problem = problems[int(rng.integers(0, len(problems)))]
            ep = self.run_episode(problem, rng)
            stats.append(ep)
            if callback is not None:
                callback(ep)
        return stats
