"""Placement search: running an agent's episode on a problem (paper §4).

At evaluation time each search-based policy starts from a given initial
placement, takes ``episode_length`` relocation steps, and reports the
best placement seen so far after every step — the series plotted in
Figs. 4, 7(a) and 9(a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..runtime.evaluator import PlacementEvaluator
from ..sim.objectives import Objective
from .agent import GiPHAgent
from .env import PlacementEnv
from .placement import PlacementProblem

__all__ = ["SearchTrace", "run_search"]


@dataclass(frozen=True)
class SearchTrace:
    """Outcome of one search episode.

    ``best_over_time[t]`` is the best objective value found within the
    first ``t`` steps (index 0 = initial placement), so the series is
    non-increasing.  ``relocation_counts[i]`` counts how often task ``i``
    was relocated (Fig. 7b).
    """

    best_placement: tuple[int, ...]
    best_value: float
    best_over_time: tuple[float, ...]
    values: tuple[float, ...]
    relocation_counts: tuple[int, ...]

    @property
    def num_steps(self) -> int:
        return len(self.values) - 1


def run_search(
    agent: GiPHAgent,
    problem: PlacementProblem,
    objective: Objective,
    initial_placement: Sequence[int],
    episode_length: int | None = None,
    greedy: bool = False,
    feature_config=None,
    stopping=None,
    evaluator: PlacementEvaluator | None = None,
) -> SearchTrace:
    """Run one evaluation episode; no learning happens here.

    ``stopping`` optionally supplies a
    :class:`repro.core.stopping.StoppingCriterion` evaluated after every
    step (on top of the fixed ``episode_length`` budget) — the paper's §6
    discussion of search stopping criteria.  ``evaluator`` optionally
    shares a :class:`PlacementEvaluator` (and its caches) across
    episodes of the same (problem, objective) pair.
    """
    env = PlacementEnv(
        problem,
        objective,
        episode_length=episode_length,
        feature_config=feature_config,
        evaluator=evaluator,
    )
    state = env.reset(initial_placement=initial_placement)
    values = [state.objective_value]
    best_value = state.objective_value
    best_placement = state.placement
    best_over_time = [best_value]
    relocations = np.zeros(problem.graph.num_tasks, dtype=int)

    done = False
    while not done:
        action = agent.act_inference(env, state, greedy=greedy)
        task, _ = state.gpnet.action_of(action)
        prev_placement = state.placement
        state, _, done = env.step(action)
        if state.placement != prev_placement:
            relocations[task] += 1
        values.append(state.objective_value)
        if state.objective_value < best_value:
            best_value = state.objective_value
            best_placement = state.placement
        best_over_time.append(best_value)
        if stopping is not None and stopping.should_stop(values, best_over_time):
            break

    return SearchTrace(
        best_placement=best_placement,
        best_value=best_value,
        best_over_time=tuple(best_over_time),
        values=tuple(values),
        relocation_counts=tuple(int(c) for c in relocations),
    )
