"""Agent checkpointing (the artifact's embedding_*.pk / policy_*.pk files).

Agents are saved as a single ``.npz`` archive: one array per parameter
plus a metadata record (embedding kind, library version) so a checkpoint
can be restored into a freshly constructed agent.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from .agent import GiPHAgent
from .gnn import KStepMessagePassing, make_embedding

__all__ = ["save_agent", "load_agent", "embedding_kind_of"]

_META_KEY = "__meta__"


def embedding_kind_of(agent: GiPHAgent) -> str:
    """The ``make_embedding`` kind string of an agent's GNN."""
    cls = type(agent.embedding).__name__
    mapping = {
        "TwoWayMessagePassing": "giph",
        "TwoWayNoEdge": "giph-ne",
        "GraphSageNoEdge": "graphsage-ne",
        "RawFeatureEmbedding": "giph-ne-pol",
    }
    if cls in mapping:
        return mapping[cls]
    if isinstance(agent.embedding, KStepMessagePassing):
        return f"giph-{agent.embedding.k}"
    raise ValueError(f"cannot serialize embedding of type {cls}")


def save_agent(agent: GiPHAgent, path: str | pathlib.Path) -> pathlib.Path:
    """Write the agent's parameters and metadata to ``path`` (.npz)."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    state = agent.state_dict()
    from .. import __version__

    meta = {
        "embedding_kind": embedding_kind_of(agent),
        "version": __version__,
        "parameter_names": sorted(state),
    }
    arrays = dict(state)
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def load_agent(path: str | pathlib.Path, rng: np.random.Generator) -> GiPHAgent:
    """Reconstruct an agent saved by :func:`save_agent`.

    ``rng`` seeds the fresh network construction (immediately overwritten
    by the checkpoint) and becomes the loaded agent's action-sampling rng.
    """
    path = pathlib.Path(path)
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} is not a repro agent checkpoint")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode())
        state = {name: archive[name] for name in archive.files if name != _META_KEY}
    agent = GiPHAgent(rng, embedding=make_embedding(meta["embedding_kind"], rng))
    agent.load_state_dict(state)
    return agent
