"""Stopping criteria for the placement search (paper §6, future work).

The paper notes that "GiPH's results may vary depending on the stopping
criterion for the placement search, and we will explore different
criteria".  This module implements that exploration: pluggable rules
deciding when an episode should stop early, usable with
:func:`repro.core.search.run_search` via its ``stopping`` parameter.

All criteria observe the running best-so-far series and the per-step
objective values; they never see policy internals, so any SearchPolicy
can use them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

__all__ = [
    "StoppingCriterion",
    "FixedBudget",
    "Patience",
    "RelativeImprovement",
    "TargetValue",
    "CombinedCriterion",
]


class StoppingCriterion(Protocol):
    """Decides whether to stop after a step, given the value history."""

    def should_stop(self, values: Sequence[float], best_over_time: Sequence[float]) -> bool:
        """``values[t]`` is ρ after step t (index 0 = initial placement)."""
        ...


@dataclass(frozen=True)
class FixedBudget:
    """Stop after exactly ``steps`` relocations — the paper's default
    (2·|V| steps, §5)."""

    steps: int

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError("steps must be >= 1")

    def should_stop(self, values, best_over_time) -> bool:
        return len(values) - 1 >= self.steps


@dataclass(frozen=True)
class Patience:
    """Stop when the best value hasn't improved for ``patience`` steps."""

    patience: int
    min_steps: int = 0

    def __post_init__(self) -> None:
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if self.min_steps < 0:
            raise ValueError("min_steps must be non-negative")

    def should_stop(self, values, best_over_time) -> bool:
        steps = len(values) - 1
        if steps < max(self.min_steps, self.patience):
            return False
        recent = best_over_time[-(self.patience + 1) :]
        return recent[0] <= recent[-1] + 1e-12


@dataclass(frozen=True)
class RelativeImprovement:
    """Stop when the best value's relative improvement over a window
    falls below ``threshold`` (e.g. <1% over 5 steps)."""

    threshold: float
    window: int = 5

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")
        if self.window < 1:
            raise ValueError("window must be >= 1")

    def should_stop(self, values, best_over_time) -> bool:
        if len(best_over_time) <= self.window:
            return False
        old = best_over_time[-(self.window + 1)]
        new = best_over_time[-1]
        if old <= 0:
            return True
        return (old - new) / old < self.threshold


@dataclass(frozen=True)
class TargetValue:
    """Stop as soon as the best value reaches ``target`` (e.g. an SLR
    bound computed from CP_MIN)."""

    target: float

    def should_stop(self, values, best_over_time) -> bool:
        return best_over_time[-1] <= self.target


@dataclass(frozen=True)
class CombinedCriterion:
    """Stop when ANY of the member criteria fires (logical OR)."""

    criteria: tuple[StoppingCriterion, ...]

    def __post_init__(self) -> None:
        if not self.criteria:
            raise ValueError("need at least one criterion")

    def should_stop(self, values, best_over_time) -> bool:
        return any(c.should_stop(values, best_over_time) for c in self.criteria)
