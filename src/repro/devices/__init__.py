"""Device substrate: heterogeneous clusters, generators, churn dynamics."""

from .dynamics import ChurnConfig, ChurnEvent, network_churn
from .generator import DeviceNetworkParams, generate_device_network, generate_device_networks
from .network import Device, DeviceNetwork

__all__ = [
    "Device",
    "DeviceNetwork",
    "DeviceNetworkParams",
    "generate_device_network",
    "generate_device_networks",
    "ChurnConfig",
    "ChurnEvent",
    "network_churn",
]
