"""Dynamic device clusters for the adaptivity experiment (paper Fig. 6).

"The network initially has 20 devices, and as the network evolves, some
of the devices are randomly removed and later replaced with new devices
of lower capacities (i.e., higher cost).  The total number of devices is
between 16 and 20."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .network import Device, DeviceNetwork

__all__ = ["ChurnConfig", "ChurnEvent", "network_churn"]


@dataclass(frozen=True)
class ChurnConfig:
    """Parameters of the churn process.

    Attributes
    ----------
    min_devices / max_devices: bounds on the cluster size (16-20 in §5).
    capacity_decay: multiplicative speed/bandwidth factor applied to each
        replacement device (< 1 models battery-conserving devices).
    num_changes: length of the generated change sequence.
    """

    min_devices: int = 16
    max_devices: int = 20
    capacity_decay: float = 0.7
    num_changes: int = 8

    def __post_init__(self) -> None:
        if not 1 <= self.min_devices <= self.max_devices:
            raise ValueError("need 1 <= min_devices <= max_devices")
        if not 0 < self.capacity_decay <= 1:
            raise ValueError("capacity_decay must be in (0, 1]")
        if self.num_changes < 0:
            raise ValueError("num_changes must be non-negative")


@dataclass(frozen=True)
class ChurnEvent:
    """One network change: the new network plus what happened."""

    network: DeviceNetwork
    kind: str  # "remove" or "add"
    uid: int  # device removed or added
    step: int


def network_churn(
    initial: DeviceNetwork, config: ChurnConfig, rng: np.random.Generator
) -> Iterator[ChurnEvent]:
    """Yield a sequence of network changes starting from ``initial``.

    Removals never orphan a hardware type (some device supporting each
    type always remains) and additions insert fresh devices whose
    capacity decays with each generation, following the paper's
    "replaced with new devices of lower capacities" protocol.
    """
    net = initial
    next_uid = max(d.uid for d in net.devices) + 1
    generation = 0

    def removable(n: DeviceNetwork) -> list[int]:
        """uids whose removal keeps every hardware type covered."""
        out = []
        for d in n.devices:
            others = [o for o in n.devices if o.uid != d.uid]
            covered = set().union(*(o.supports for o in others)) if others else set()
            if d.supports <= covered:
                out.append(d.uid)
        return out

    for step in range(config.num_changes):
        can_remove = net.num_devices > config.min_devices and removable(net)
        must_add = net.num_devices < config.min_devices
        can_add = net.num_devices < config.max_devices

        if must_add or (can_add and (not can_remove or rng.random() < 0.5)):
            generation += 1
            decay = config.capacity_decay**generation
            template = net.devices[int(rng.integers(0, net.num_devices))]
            device = Device(
                uid=next_uid,
                speed=max(template.speed * decay, 1e-6),
                supports=template.supports,
                compute_power=template.compute_power / max(decay, 1e-6),
            )
            mean_bw = float(
                np.mean(net.bandwidth[np.isfinite(net.bandwidth)]) if net.num_devices > 1 else 100.0
            )
            mean_dl = float(np.mean(net.delay)) if net.num_devices > 1 else 1.0
            net = net.with_device(device, bandwidth_to=mean_bw * decay, delay_to=mean_dl / max(decay, 1e-6))
            next_uid += 1
            yield ChurnEvent(net, "add", device.uid, step)
        else:
            uid = int(rng.choice(can_remove))
            net = net.without_device(uid)
            yield ChurnEvent(net, "remove", uid, step)
