"""Dynamic device clusters for the adaptivity experiment (paper Fig. 6).

"The network initially has 20 devices, and as the network evolves, some
of the devices are randomly removed and later replaced with new devices
of lower capacities (i.e., higher cost).  The total number of devices is
between 16 and 20."

Beyond the paper's add/remove churn, the process can emit two soft
degradation events used by the scenario engine (:mod:`repro.scenarios`):
``bandwidth-drift`` (every link touching one device loses bandwidth) and
``compute-slowdown`` (one device's speed drops), modeling congestion and
thermal/battery throttling on otherwise stable clusters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .network import Device, DeviceNetwork

__all__ = ["ChurnConfig", "ChurnEvent", "network_churn"]


@dataclass(frozen=True)
class ChurnConfig:
    """Parameters of the churn process.

    Attributes
    ----------
    min_devices / max_devices: bounds on the cluster size (16-20 in §5).
    capacity_decay: multiplicative speed/bandwidth factor applied to each
        replacement device (< 1 models battery-conserving devices).
    num_changes: length of the generated change sequence.
    bandwidth_drift_prob: per-step probability of a ``bandwidth-drift``
        event instead of an add/remove (links touching one device are
        scaled by a factor drawn from ``drift_range``).
    compute_slowdown_prob: per-step probability of a ``compute-slowdown``
        event (one device's speed is scaled by a factor drawn from
        ``slowdown_range``).
    drift_range / slowdown_range: (low, high) factor intervals; values
        below 1 degrade, above 1 recover.
    target: which device soft events hit — "random" picks uniformly,
        "fastest" always degrades the highest-speed device (the
        adversarial case: the device policies lean on keeps failing).
    """

    min_devices: int = 16
    max_devices: int = 20
    capacity_decay: float = 0.7
    num_changes: int = 8
    bandwidth_drift_prob: float = 0.0
    compute_slowdown_prob: float = 0.0
    drift_range: tuple[float, float] = (0.5, 0.9)
    slowdown_range: tuple[float, float] = (0.5, 0.9)
    target: str = "random"

    def __post_init__(self) -> None:
        if not 1 <= self.min_devices <= self.max_devices:
            raise ValueError("need 1 <= min_devices <= max_devices")
        if not 0 < self.capacity_decay <= 1:
            raise ValueError("capacity_decay must be in (0, 1]")
        if self.num_changes < 0:
            raise ValueError("num_changes must be non-negative")
        if not 0 <= self.bandwidth_drift_prob <= 1 or not 0 <= self.compute_slowdown_prob <= 1:
            raise ValueError("event probabilities must be in [0, 1]")
        if self.bandwidth_drift_prob + self.compute_slowdown_prob > 1:
            raise ValueError("bandwidth_drift_prob + compute_slowdown_prob must be <= 1")
        for label, (lo, hi) in (("drift", self.drift_range), ("slowdown", self.slowdown_range)):
            if not 0 < lo <= hi:
                raise ValueError(f"{label}_range must satisfy 0 < low <= high")
        if self.target not in ("random", "fastest"):
            raise ValueError("target must be 'random' or 'fastest'")

    @property
    def soft_event_prob(self) -> float:
        return self.bandwidth_drift_prob + self.compute_slowdown_prob


@dataclass(frozen=True)
class ChurnEvent:
    """One network change: the new network plus what happened.

    ``kind`` is one of ``"add"``, ``"remove"``, ``"bandwidth-drift"`` or
    ``"compute-slowdown"``; ``factor`` carries the multiplicative scale
    of the soft (drift/slowdown) kinds and is ``None`` for add/remove.
    """

    network: DeviceNetwork
    kind: str
    uid: int  # device removed, added, or degraded
    step: int
    factor: float | None = None


def network_churn(
    initial: DeviceNetwork, config: ChurnConfig, rng: np.random.Generator
) -> Iterator[ChurnEvent]:
    """Yield a sequence of network changes starting from ``initial``.

    Removals never orphan a hardware type (some device supporting each
    type always remains) and additions insert fresh devices whose
    capacity decays with each generation, following the paper's
    "replaced with new devices of lower capacities" protocol.  With the
    soft-event probabilities at their 0 default the rng draw sequence is
    identical to the original add/remove-only process, so existing
    seeded experiments replay bit-identically.
    """
    net = initial
    next_uid = max(d.uid for d in net.devices) + 1
    generation = 0

    def removable(n: DeviceNetwork) -> list[int]:
        """uids whose removal keeps every hardware type covered."""
        out = []
        for d in n.devices:
            others = [o for o in n.devices if o.uid != d.uid]
            covered = set().union(*(o.supports for o in others)) if others else set()
            if d.supports <= covered:
                out.append(d.uid)
        return out

    def victim(n: DeviceNetwork) -> Device:
        if config.target == "fastest":
            return max(n.devices, key=lambda d: (d.speed, d.uid))
        return n.devices[int(rng.integers(0, n.num_devices))]

    def drift_event(step: int) -> ChurnEvent:
        nonlocal net
        device = victim(net)
        factor = float(rng.uniform(*config.drift_range))
        net = net.with_bandwidth_scaled(factor, uid=device.uid)
        return ChurnEvent(net, "bandwidth-drift", device.uid, step, factor)

    def slowdown_event(step: int) -> ChurnEvent:
        nonlocal net
        device = victim(net)
        factor = float(rng.uniform(*config.slowdown_range))
        net = net.with_device_speed(device.uid, max(device.speed * factor, 1e-6))
        return ChurnEvent(net, "compute-slowdown", device.uid, step, factor)

    for step in range(config.num_changes):
        if config.soft_event_prob > 0:
            draw = rng.random()
            if draw < config.bandwidth_drift_prob:
                yield drift_event(step)
                continue
            if draw < config.soft_event_prob:
                yield slowdown_event(step)
                continue

        can_remove = net.num_devices > config.min_devices and removable(net)
        must_add = net.num_devices < config.min_devices
        can_add = net.num_devices < config.max_devices

        if not (must_add or can_add or can_remove):
            # Fixed-membership cluster (min == max, or nothing removable):
            # no hard move exists, so the step degrades instead of churning.
            if config.soft_event_prob <= 0:
                raise ValueError(
                    "network_churn: no add/remove possible (fixed membership or "
                    "no removable device) and soft-event probabilities are 0"
                )
            if rng.random() * config.soft_event_prob < config.bandwidth_drift_prob:
                yield drift_event(step)
            else:
                yield slowdown_event(step)
            continue

        if must_add or (can_add and (not can_remove or rng.random() < 0.5)):
            generation += 1
            decay = config.capacity_decay**generation
            template = net.devices[int(rng.integers(0, net.num_devices))]
            device = Device(
                uid=next_uid,
                speed=max(template.speed * decay, 1e-6),
                supports=template.supports,
                compute_power=template.compute_power / max(decay, 1e-6),
            )
            mean_bw = float(
                np.mean(net.bandwidth[np.isfinite(net.bandwidth)]) if net.num_devices > 1 else 100.0
            )
            mean_dl = float(np.mean(net.delay)) if net.num_devices > 1 else 1.0
            net = net.with_device(device, bandwidth_to=mean_bw * decay, delay_to=mean_dl / max(decay, 1e-6))
            next_uid += 1
            yield ChurnEvent(net, "add", device.uid, step)
        else:
            uid = int(rng.choice(can_remove))
            net = net.without_device(uid)
            yield ChurnEvent(net, "remove", uid, step)
