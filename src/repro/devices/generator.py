"""Parametric random device-network generator (paper Appendix B.2)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .network import Device, DeviceNetwork

__all__ = ["DeviceNetworkParams", "generate_device_network", "generate_device_networks"]


@dataclass(frozen=True)
class DeviceNetworkParams:
    """Input parameters of the device-network generator (§B.2 symbols).

    Attributes
    ----------
    num_devices: m.
    mean_speed: SP̄, average compute speed.
    mean_bandwidth: BW̄, average inter-device bandwidth.
    mean_delay: DL̄; DL_kl ~ U[0, 2·DL̄] off-diagonal.
    het_speed: ε_SP (uniform ±ε_SP·SP̄).
    het_bandwidth: ε_BW (uniform ±ε_BW·BW̄).
    num_hardware_types: matches the task generator's hardware-type space.
    support_prob: probability a device supports each non-generic type;
        drives the average number of feasible devices per task.
    """

    num_devices: int = 10
    mean_speed: float = 10.0
    mean_bandwidth: float = 100.0
    mean_delay: float = 1.0
    het_speed: float = 0.5
    het_bandwidth: float = 0.5
    num_hardware_types: int = 3
    support_prob: float = 0.5

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if self.mean_speed <= 0 or self.mean_bandwidth <= 0:
            raise ValueError("mean speed and bandwidth must be positive")
        if self.mean_delay < 0:
            raise ValueError("mean delay must be non-negative")
        if not 0 <= self.het_speed < 1 or not 0 <= self.het_bandwidth < 1:
            raise ValueError("heterogeneity factors must be in [0, 1)")
        if self.num_hardware_types < 1:
            raise ValueError("need at least hardware type 0")
        if not 0 <= self.support_prob <= 1:
            raise ValueError("support_prob must be in [0, 1]")


def generate_device_network(
    params: DeviceNetworkParams,
    rng: np.random.Generator,
    name: str | None = None,
    uid_offset: int = 0,
) -> DeviceNetwork:
    """Sample one random fully-connected device network.

    Every non-generic hardware type is guaranteed at least one supporting
    device so that constrained tasks always have a feasible placement.
    """
    m = params.num_devices
    speeds = rng.uniform(
        params.mean_speed * (1 - params.het_speed),
        params.mean_speed * (1 + params.het_speed),
        size=m,
    )

    # Hardware support sets; type 0 is implicit on every device.
    supports = [
        {0} | {t for t in range(1, params.num_hardware_types) if rng.random() < params.support_prob}
        for _ in range(m)
    ]
    for t in range(1, params.num_hardware_types):
        if not any(t in s for s in supports):
            supports[int(rng.integers(0, m))].add(t)

    devices = [
        Device(uid=uid_offset + k, speed=float(speeds[k]), supports=frozenset(supports[k]))
        for k in range(m)
    ]

    bw = rng.uniform(
        params.mean_bandwidth * (1 - params.het_bandwidth),
        params.mean_bandwidth * (1 + params.het_bandwidth),
        size=(m, m),
    )
    bw = (bw + bw.T) / 2.0  # symmetric links, as in Fig. 1(a)
    np.fill_diagonal(bw, np.inf)

    dl = rng.uniform(0.0, 2.0 * params.mean_delay, size=(m, m))
    dl = (dl + dl.T) / 2.0
    np.fill_diagonal(dl, 0.0)

    return DeviceNetwork(devices, bw, dl, name=name or f"random-net-{m}")


def generate_device_networks(
    params: DeviceNetworkParams, count: int, rng: np.random.Generator
) -> list[DeviceNetwork]:
    """Sample ``count`` i.i.d. device networks with disjoint uid ranges."""
    return [
        generate_device_network(
            params, rng, name=f"random-net-{i}", uid_offset=i * params.num_devices
        )
        for i in range(count)
    ]
