"""Device network: the heterogeneous target cluster (paper §3).

Devices have compute features (speed, supported hardware types) and every
device pair has communication link features (bandwidth, delay).  Devices
are fully connected; missing physical links are modeled by very high
communication cost, as the paper prescribes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["Device", "DeviceNetwork"]


@dataclass(frozen=True)
class Device:
    """One compute device.

    Attributes
    ----------
    uid: stable identifier, preserved across network changes (churn).
    speed: compute speed SP_k; execution time of task i is C_i / SP_k.
    supports: hardware types this device supports.  Type 0 (generic
        compute) is always supported.
    compute_power / idle_power: watts, used by the energy objective.
    position: optional (x, y) coordinates for distance-based comm models.
    """

    uid: int
    speed: float
    supports: frozenset[int] = frozenset({0})
    compute_power: float = 1.0
    idle_power: float = 0.1
    position: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError(f"device {self.uid}: speed must be positive")
        object.__setattr__(self, "supports", frozenset(self.supports) | {0})

    def supports_requirement(self, requirement: int) -> bool:
        return requirement in self.supports


class DeviceNetwork:
    """A cluster of interconnected devices.

    Internally devices occupy dense indices ``0..m-1`` (the order of the
    ``devices`` sequence); the stable ``uid`` survives add/remove so that
    placements can be carried across network changes.

    Parameters
    ----------
    devices: device descriptors.
    bandwidth: (m, m) matrix, BW_kl; ``inf`` on the diagonal (local data
        movement is free, Appendix B.2).
    delay: (m, m) matrix, DL_kl; 0 on the diagonal.
    """

    def __init__(
        self,
        devices: Sequence[Device],
        bandwidth: np.ndarray,
        delay: np.ndarray,
        name: str = "device-network",
    ) -> None:
        if len(devices) == 0:
            raise ValueError("device network must contain at least one device")
        uids = [d.uid for d in devices]
        if len(set(uids)) != len(uids):
            raise ValueError("device uids must be unique")
        m = len(devices)
        bandwidth = np.asarray(bandwidth, dtype=np.float64)
        delay = np.asarray(delay, dtype=np.float64)
        if bandwidth.shape != (m, m) or delay.shape != (m, m):
            raise ValueError("bandwidth and delay must be (m, m) matrices")
        if (bandwidth <= 0).any():
            raise ValueError("bandwidths must be positive (use np.inf for local)")
        if (delay < 0).any():
            raise ValueError("delays must be non-negative")
        if not np.isinf(np.diag(bandwidth)).all():
            raise ValueError("diagonal bandwidth must be inf (local transfer is free)")
        if np.diag(delay).any():
            raise ValueError("diagonal delay must be zero")

        self.devices: tuple[Device, ...] = tuple(devices)
        self.bandwidth = bandwidth
        self.delay = delay
        self.name = name
        self._uid_to_index: dict[int, int] = {d.uid: i for i, d in enumerate(self.devices)}
        self.speeds = np.array([d.speed for d in self.devices])

    # -- lookups ---------------------------------------------------------------

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    def index_of(self, uid: int) -> int:
        return self._uid_to_index[uid]

    def __contains__(self, uid: int) -> bool:
        return uid in self._uid_to_index

    def feasible_devices(self, requirement: int) -> tuple[int, ...]:
        """Dense indices of devices that support ``requirement`` (the set D_i)."""
        return tuple(
            k for k, d in enumerate(self.devices) if d.supports_requirement(requirement)
        )

    def feasible_sets(self, requirements: Iterable[int]) -> list[tuple[int, ...]]:
        """Feasible device sets for every task requirement, with validation."""
        sets = []
        for i, req in enumerate(requirements):
            feas = self.feasible_devices(req)
            if not feas:
                raise ValueError(f"task {i}: no device supports hardware type {req}")
            sets.append(feas)
        return sets

    # -- network transforms (for churn) ------------------------------------------

    def without_device(self, uid: int) -> "DeviceNetwork":
        """Return a copy with device ``uid`` removed."""
        if uid not in self._uid_to_index:
            raise KeyError(f"device uid {uid} not in network")
        if self.num_devices == 1:
            raise ValueError("cannot remove the last device")
        keep = [i for i, d in enumerate(self.devices) if d.uid != uid]
        return DeviceNetwork(
            [self.devices[i] for i in keep],
            self.bandwidth[np.ix_(keep, keep)],
            self.delay[np.ix_(keep, keep)],
            name=self.name,
        )

    def with_device(
        self,
        device: Device,
        bandwidth_to: Mapping[int, float] | float,
        delay_to: Mapping[int, float] | float,
    ) -> "DeviceNetwork":
        """Return a copy with ``device`` appended.

        ``bandwidth_to`` / ``delay_to`` give link features to each existing
        device uid (or one scalar for all).  Links are symmetric.
        """
        if device.uid in self._uid_to_index:
            raise ValueError(f"device uid {device.uid} already present")
        m = self.num_devices
        bw = np.full((m + 1, m + 1), np.inf)
        dl = np.zeros((m + 1, m + 1))
        bw[:m, :m] = self.bandwidth
        dl[:m, :m] = self.delay
        for i, existing in enumerate(self.devices):
            b = bandwidth_to if np.isscalar(bandwidth_to) else bandwidth_to[existing.uid]
            d = delay_to if np.isscalar(delay_to) else delay_to[existing.uid]
            bw[m, i] = bw[i, m] = b
            dl[m, i] = dl[i, m] = d
        bw[m, m] = np.inf
        dl[m, m] = 0.0
        return DeviceNetwork([*self.devices, device], bw, dl, name=self.name)

    def with_device_speed(self, uid: int, speed: float) -> "DeviceNetwork":
        """Return a copy with device ``uid``'s compute speed replaced."""
        if uid not in self._uid_to_index:
            raise KeyError(f"device uid {uid} not in network")
        if speed <= 0:
            raise ValueError("speed must be positive")
        devices = [
            dataclasses.replace(d, speed=float(speed)) if d.uid == uid else d
            for d in self.devices
        ]
        return DeviceNetwork(devices, self.bandwidth, self.delay, name=self.name)

    def with_bandwidth_scaled(self, factor: float, uid: int | None = None) -> "DeviceNetwork":
        """Return a copy with off-diagonal bandwidths multiplied by ``factor``.

        With ``uid`` only the links touching that device are scaled (a
        congested or recovering uplink); without it every link drifts.
        The (infinite) diagonal is untouched — local transfer stays free.
        """
        if factor <= 0:
            raise ValueError("bandwidth factor must be positive")
        bw = self.bandwidth.copy()
        off = ~np.eye(self.num_devices, dtype=bool)
        if uid is None:
            bw[off] *= factor
        else:
            k = self.index_of(uid)
            touches = np.zeros_like(off)
            touches[k, :] = touches[:, k] = True
            bw[touches & off] *= factor
        return DeviceNetwork(self.devices, bw, self.delay, name=self.name)

    def __repr__(self) -> str:
        return f"DeviceNetwork(name={self.name!r}, devices={self.num_devices})"
