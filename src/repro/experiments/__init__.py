"""Experiment harness: one module per paper table/figure.

Every module exposes ``run(scale, seed=0) -> ExperimentReport``; the
benchmark suite executes them all (quick preset by default; set
``REPRO_SCALE=paper`` for paper-scale runs) and asserts the paper's
qualitative shapes.
"""

from . import (
    ablation,
    fig4,
    fig5,
    fig6,
    fig7,
    fig9,
    fig11,
    fig14,
    fig15,
    fig16,
    table1,
    table6,
    table7,
)
from .base import ExperimentReport
from .config import PAPER, QUICK, Scale, active_scale
from .datasets import Dataset, multi_network_dataset, single_network_dataset
from .runner import (
    EvalResult,
    HeftPolicy,
    average_curves,
    evaluate_policies,
    train_giph,
    train_placeto,
    train_task_eft,
)

__all__ = [
    "ExperimentReport",
    "Scale",
    "PAPER",
    "QUICK",
    "active_scale",
    "Dataset",
    "single_network_dataset",
    "multi_network_dataset",
    "EvalResult",
    "HeftPolicy",
    "average_curves",
    "evaluate_policies",
    "train_giph",
    "train_placeto",
    "train_task_eft",
    "ablation",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig9",
    "fig11",
    "fig14",
    "fig15",
    "fig16",
    "table1",
    "table6",
    "table7",
]
