"""Experiment harness: one module per paper table/figure.

Every module exposes ``run(scale, seed=0) -> ExperimentReport``; the
benchmark suite executes them all (quick preset by default; set
``REPRO_SCALE=paper`` for paper-scale runs) and asserts the paper's
qualitative shapes.

The package imports lazily (PEP 562): the CLI pulls
:mod:`repro.experiments.registry` on every invocation to generate its
help strings, and eagerly importing the 13 experiment modules (each
dragging in core/baselines/simulator machinery) here would make even
``repro --help`` pay for all of them.  Attribute access — including
``from repro.experiments import fig4`` — resolves the submodule or
harness symbol on first use.
"""

from __future__ import annotations

import importlib

from .config import PAPER, QUICK, Scale, active_scale
from .registry import (
    EXPERIMENT_IDS,
    UnknownExperimentError,
    get_module,
    parallel_experiment_ids,
    serial_experiment_ids,
    supports_workers,
)

# Lazily resolved re-exports: harness symbol -> defining submodule.
_LAZY_SYMBOLS = {
    "ExperimentReport": "base",
    "Dataset": "datasets",
    "single_network_dataset": "datasets",
    "multi_network_dataset": "datasets",
    "EvalResult": "runner",
    "HeftPolicy": "runner",
    "TrainSpec": "runner",
    "average_curves": "runner",
    "evaluate_policies": "runner",
    "train_giph": "runner",
    "train_placeto": "runner",
    "train_policy_grid": "runner",
    "train_task_eft": "runner",
}

__all__ = [
    "Scale",
    "PAPER",
    "QUICK",
    "active_scale",
    "EXPERIMENT_IDS",
    "UnknownExperimentError",
    "get_module",
    "parallel_experiment_ids",
    "serial_experiment_ids",
    "supports_workers",
    *_LAZY_SYMBOLS,
    *EXPERIMENT_IDS,
]


def __getattr__(name: str):
    if name in _LAZY_SYMBOLS:
        module = importlib.import_module(f".{_LAZY_SYMBOLS[name]}", __name__)
        value = getattr(module, name)
    elif name in EXPERIMENT_IDS:
        value = importlib.import_module(f".{name}", __name__)
    else:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    globals()[name] = value  # cache: __getattr__ only fires on misses
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
