"""Design-choice ablations beyond the paper's B.6 GNN study.

Two implementation decisions the paper motivates but does not sweep:

* **Action masks** (§4.2.3): masking no-op actions and consecutive moves
  of the same task "improves the sample efficiency and forces
  exploration".  This ablation trains GiPH with masks on/off and
  compares evaluation SLR.
* **Message aggregation** (Eq. 1 writes a sum; §5 says mean): trains the
  GNN with each aggregation and compares.

Seed-stream layout: stage 0 — dataset, stage 1 — one stream per ablated
configuration's training cell (fanned over ``workers``), stage 2 —
evaluation (fanned per case).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.giph_policy import GiPHSearchPolicy
from ..core.agent import GiPHAgent
from ..core.env import PlacementEnv
from ..core.gnn import TwoWayMessagePassing
from ..core.reinforce import ReinforceConfig, ReinforceTrainer
from ..core.search import SearchTrace
from ..parallel.backends import ExecutionBackend, resolve_backend
from ..parallel.pool import get_context as pool_context
from ..sim.objectives import MakespanObjective
from .base import ExperimentReport
from .config import Scale
from .datasets import Dataset, multi_network_dataset
from .reporting import banner, format_table
from .runner import evaluate_policies

__all__ = ["run"]

# (display name, masks on?, aggregation) per ablated configuration.
CONFIGURATIONS = (
    ("giph (masks, mean-agg)", True, "mean"),
    ("giph (no masks)", False, "mean"),
    ("giph (sum-agg)", True, "sum"),
)


class _MasklessSearchPolicy(GiPHSearchPolicy):
    """GiPH evaluated with the §4.2.3 masks disabled."""

    def search(self, problem, objective, initial_placement, episode_length, rng, evaluator=None):
        self.agent.rng = rng
        env = PlacementEnv(
            problem, objective, episode_length=episode_length,
            mask_no_ops=False, mask_repeat_task=False,
            evaluator=evaluator,
        )
        state = env.reset(initial_placement=initial_placement)
        values = [state.objective_value]
        best = state.objective_value
        best_placement = state.placement
        best_curve = [best]
        relocations = np.zeros(problem.graph.num_tasks, dtype=int)
        done = False
        while not done:
            action = self.agent.act_inference(env, state, greedy=self.greedy)
            task, _ = state.gpnet.action_of(action)
            prev = state.placement
            state, _, done = env.step(action)
            if state.placement != prev:
                relocations[task] += 1
            values.append(state.objective_value)
            if state.objective_value < best:
                best, best_placement = state.objective_value, state.placement
            best_curve.append(best)
        return SearchTrace(
            best_placement, best, tuple(best_curve), tuple(values),
            tuple(int(c) for c in relocations),
        )


def _train(dataset, scale, rng, masks: bool = True, aggregation: str = "mean") -> GiPHAgent:
    agent = GiPHAgent(rng, embedding=TwoWayMessagePassing(rng, aggregation=aggregation))
    trainer = ReinforceTrainer(
        agent, MakespanObjective(), ReinforceConfig(episodes=scale.episodes)
    )
    if not masks:
        # Patch episode collection to a maskless environment.
        original = trainer.run_episode

        def run_episode(problem, ep_rng):
            env = PlacementEnv(
                problem, trainer.objective,
                episode_length=trainer.config.episode_length,
                mask_no_ops=False, mask_repeat_task=False,
            )
            # Reuse the trainer's machinery by temporarily overriding the
            # env construction is invasive; simplest faithful route: run
            # the episode inline (mirrors ReinforceTrainer.run_episode).
            from ..core.reinforce import average_reward_baseline, discounted_returns

            state = env.reset(rng=ep_rng)
            log_probs, rewards = [], []
            done = False
            while not done:
                action, lp = agent.act(env, state)
                state, reward, done = env.step(action)
                log_probs.append(lp)
                rewards.append(reward)
            cfg = trainer.config
            returns = discounted_returns(rewards, cfg.gamma)
            baseline = average_reward_baseline(rewards)
            discount = cfg.gamma ** np.arange(len(rewards))
            advantages = discount * (returns - baseline)
            loss = sum(lp * float(-adv) for lp, adv in zip(log_probs, advantages))
            trainer.optimizer.zero_grad()
            loss.backward()
            trainer.optimizer.clip_grad_norm(cfg.grad_clip)
            trainer.optimizer.step()
            return None

        for _ in range(scale.episodes):
            run_episode(dataset.train[int(rng.integers(0, len(dataset.train)))], rng)
        return agent
    trainer.train(dataset.train, rng, episodes=scale.episodes)
    return agent


@dataclass(frozen=True)
class _AblationContext:
    """Broadcast payload for the per-configuration training cells."""

    seed: int
    scale: Scale
    dataset: Dataset


def _train_configuration(config_index: int):
    """Train one ablated configuration from its own derived stream."""
    ctx: _AblationContext = pool_context()
    name, masks, aggregation = CONFIGURATIONS[config_index]
    rng = np.random.default_rng([ctx.seed, 1, config_index])
    agent = _train(ctx.dataset, ctx.scale, rng, masks=masks, aggregation=aggregation)
    if not masks:
        return _MasklessSearchPolicy(agent, name="giph-no-masks")
    return GiPHSearchPolicy(agent, name="giph-sum" if aggregation == "sum" else "giph")


def run(
    scale: Scale,
    seed: int = 0,
    workers: int = 1,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    backend = resolve_backend(backend, workers)
    dataset = multi_network_dataset(scale, np.random.default_rng([seed, 0]))

    context = _AblationContext(seed=seed, scale=scale, dataset=dataset)
    policies = dict(
        zip(
            [name for name, _, _ in CONFIGURATIONS],
            backend.fanout(_train_configuration, range(len(CONFIGURATIONS)), context),
        )
    )
    result = evaluate_policies(
        policies, dataset.test, np.random.default_rng([seed, 2]), backend=backend
    )

    rows = [[name, result.mean_final(name)] for name in policies]
    text = "\n".join(
        [
            banner("Ablation: action masks (§4.2.3) and message aggregation (Eq. 1)"),
            format_table(["configuration", "mean final SLR"], rows),
        ]
    )
    return ExperimentReport(
        experiment_id="ablation",
        title="Design-choice ablations: masks and aggregation",
        text=text,
        data={"mean_final": {n: result.mean_final(n) for n in policies}},
    )
