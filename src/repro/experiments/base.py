"""Common experiment-report container."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["ExperimentReport", "VOLATILE_DATA_KEYS"]

# Report-data keys whose values are run-dependent by nature — wall-clock
# timings and cache-provenance counters.  Everything else in a report is
# a pure function of (experiment, seed, scale, code version); stripping
# these keys is what makes the canonical JSON of two equivalent runs
# (serial vs fanned, fork vs shard-merged) byte-identical.
# ("gnn_seconds" is the wall-clock member of the otherwise-deterministic
# GNN counter blocks — see repro.core.gnn.GnnStats.as_dict.)
VOLATILE_DATA_KEYS = frozenset(
    {"search_seconds", "replace_seconds", "trace_cache", "gnn_seconds"}
)


def _strip_volatile(node: Any) -> Any:
    if isinstance(node, dict):
        return {
            key: _strip_volatile(value)
            for key, value in node.items()
            if key not in VOLATILE_DATA_KEYS
        }
    if isinstance(node, (list, tuple)):
        return [_strip_volatile(item) for item in node]
    return node


def _keep_volatile(node: Any) -> Any:
    """Complement of :func:`_strip_volatile`: volatile subtrees only.

    Volatile keys keep their whole value; elsewhere the recursion keeps
    only branches that lead to one, dropping empty containers, so the
    result mirrors the report's shape with just the run-dependent leaves.
    """
    if isinstance(node, dict):
        kept = {}
        for key, value in node.items():
            if key in VOLATILE_DATA_KEYS:
                kept[key] = value
            else:
                sub = _keep_volatile(value)
                if sub:
                    kept[key] = sub
        return kept
    if isinstance(node, (list, tuple)):
        subs = [_keep_volatile(item) for item in node]
        return subs if any(subs) else []
    return None


@dataclass(frozen=True)
class ExperimentReport:
    """Output of one experiment module.

    ``text`` is the printable reproduction of the paper's figure/table;
    ``data`` holds the raw numbers for programmatic checks (benchmarks
    assert the paper's qualitative shape on them).
    """

    experiment_id: str
    title: str
    text: str
    data: dict[str, Any] = field(default_factory=dict)

    def stable_data(self) -> dict[str, Any]:
        """``data`` minus the :data:`VOLATILE_DATA_KEYS` (recursively)."""
        return _strip_volatile(self.data)

    def volatile_data(self) -> dict[str, Any]:
        """The complement of :meth:`stable_data`: the run-dependent
        timings/cache counters only, in the report's shape.  This is
        what the CLI surfaces under the ``runtime`` key of ``--json``
        payloads — deliberately outside :meth:`to_json`, which must stay
        byte-stable across runs."""
        return _keep_volatile(self.data)

    def to_json(self) -> str:
        """Canonical JSON of the report's deterministic content.

        Sorted keys, fixed separators, volatile data stripped: two runs
        of the same (experiment, seed, scale, code) produce the same
        bytes regardless of worker count or execution backend — the
        equality `repro shard merge` is held to.
        """
        payload = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "text": self.text,
            "data": self.stable_data(),
        }
        return json.dumps(payload, indent=1, sort_keys=True) + "\n"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"[{self.experiment_id}] {self.title}\n{self.text}"
