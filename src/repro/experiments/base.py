"""Common experiment-report container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ExperimentReport"]


@dataclass(frozen=True)
class ExperimentReport:
    """Output of one experiment module.

    ``text`` is the printable reproduction of the paper's figure/table;
    ``data`` holds the raw numbers for programmatic checks (benchmarks
    assert the paper's qualitative shape on them).
    """

    experiment_id: str
    title: str
    text: str
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"[{self.experiment_id}] {self.title}\n{self.text}"
