"""Experiment scale presets.

Every experiment module takes a :class:`Scale`.  ``PAPER`` matches the
paper's dataset and episode counts; ``QUICK`` (the default for the
benchmark suite) shrinks sizes so the full harness finishes in minutes
on the pure-NumPy substrate while exercising identical code paths.
Select via ``REPRO_SCALE=paper`` in the environment or by passing the
preset explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

__all__ = ["Scale", "PAPER", "QUICK", "active_scale"]


@dataclass(frozen=True)
class Scale:
    """Knobs shared by the experiment runners.

    Fields mirror §5's setup: dataset sizes, RL episode counts, and the
    problem dimensions of each experiment family.
    """

    name: str
    # General synthetic experiments (Figs. 4-6, 14-16, Table 6).
    num_tasks: int
    num_devices: int
    train_graphs: int
    test_cases: int
    episodes: int
    num_networks: int  # multi-network case: networks in the pool
    # DL-graph experiment (Fig. 7).
    dl_designs: int
    dl_variants: int
    dl_group_target: int
    dl_devices: int
    dl_episodes: int
    dl_test_cases: int
    # Adaptivity (Fig. 6).
    adapt_devices: int
    adapt_min_devices: int
    adapt_changes: int
    adapt_graphs: int
    # Case study (Figs. 9, 11).
    case_vehicles: int
    case_duration_s: float
    case_cav_fraction: float
    case_train: int
    case_test: int
    case_episodes: int
    # Convergence studies (Figs. 14-15).
    convergence_episodes: int
    convergence_eval_every: int
    convergence_eval_cases: int
    # Pairwise comparison (Table 6).
    pairwise_cases: int
    # Timing (Table 7 / Fig. 17).
    timing_graph_sizes: tuple[int, ...]
    timing_repeats: int


PAPER = Scale(
    name="paper",
    num_tasks=20,
    num_devices=10,
    train_graphs=150,
    test_cases=150,
    episodes=200,
    num_networks=10,
    dl_designs=10,
    dl_variants=30,
    dl_group_target=40,
    dl_devices=8,
    dl_episodes=200,
    dl_test_cases=150,
    adapt_devices=20,
    adapt_min_devices=16,
    adapt_changes=8,
    adapt_graphs=20,
    case_vehicles=3980,
    case_duration_s=3600.0,
    case_cav_fraction=0.10,
    case_train=450,
    case_test=300,
    case_episodes=200,
    convergence_episodes=200,
    convergence_eval_every=5,
    convergence_eval_cases=20,
    pairwise_cases=1000,
    timing_graph_sizes=(10, 20, 40, 80),
    timing_repeats=5,
)

# Sized so the full tier-1 suite (unit tests + every quick-scale
# benchmark) stays under ~90s wall clock on one core; every experiment
# still runs multiple episodes/cases through the paper-scale code paths.
QUICK = Scale(
    name="quick",
    num_tasks=8,
    num_devices=5,
    train_graphs=4,
    test_cases=6,
    episodes=14,
    num_networks=3,
    dl_designs=2,
    dl_variants=2,
    dl_group_target=16,
    dl_devices=5,
    dl_episodes=4,
    dl_test_cases=2,
    adapt_devices=8,
    adapt_min_devices=6,
    adapt_changes=3,
    adapt_graphs=3,
    case_vehicles=300,
    case_duration_s=100.0,
    case_cav_fraction=0.30,
    case_train=5,
    case_test=2,
    case_episodes=8,
    convergence_episodes=4,
    convergence_eval_every=2,
    convergence_eval_cases=1,
    pairwise_cases=6,
    timing_graph_sizes=(6, 12, 18),
    timing_repeats=1,
)


def active_scale() -> Scale:
    """Preset selected by the ``REPRO_SCALE`` environment variable."""
    name = os.environ.get("REPRO_SCALE", "quick").lower()
    if name == "paper":
        return PAPER
    if name == "quick":
        return QUICK
    raise ValueError(f"unknown REPRO_SCALE={name!r}; use 'quick' or 'paper'")
