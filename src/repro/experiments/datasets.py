"""Dataset builders for the synthetic experiments (paper §5.1).

Two generalization regimes:

* **single-device-network** — one network shared by train and test
  (Placeto's setting; application-level generalization only);
* **multiple-device-network** — train/test instances pair graphs with
  networks of varying per-device compute and communication capacity
  (device-network generalization, where GiPH's gpNet matters).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.placement import PlacementProblem
from ..devices.generator import DeviceNetworkParams, generate_device_network
from ..graphs.generator import TaskGraphParams, generate_task_graph
from .config import Scale

__all__ = ["Dataset", "single_network_dataset", "multi_network_dataset"]


@dataclass(frozen=True)
class Dataset:
    """Train/test splits of placement problems."""

    train: list[PlacementProblem]
    test: list[PlacementProblem]
    name: str


def _graph_params(scale: Scale, rng: np.random.Generator) -> TaskGraphParams:
    """Per-graph parameter draw: varied shape/density as in §B.2 (the
    generators take multiple values per parameter)."""
    return TaskGraphParams(
        num_tasks=scale.num_tasks,
        shape=float(rng.choice([0.5, 1.0, 2.0])),
        connect_prob=float(rng.choice([0.2, 0.3, 0.5])),
        het_compute=float(rng.choice([0.25, 0.5])),
        het_data=float(rng.choice([0.25, 0.5])),
        constraint_prob=0.25,
    )


def _network_params(scale: Scale, rng: np.random.Generator, num_devices: int | None = None) -> DeviceNetworkParams:
    return DeviceNetworkParams(
        num_devices=num_devices or scale.num_devices,
        mean_speed=float(rng.choice([5.0, 10.0, 20.0])),
        mean_bandwidth=float(rng.choice([50.0, 100.0])),
        mean_delay=float(rng.choice([0.5, 1.0])),
        het_speed=0.5,
        het_bandwidth=0.5,
        support_prob=0.6,
    )


def single_network_dataset(scale: Scale, rng: np.random.Generator) -> Dataset:
    """One device network; graphs split evenly into train/test (§5.1
    case 1: 300 graphs split equally in the paper)."""
    network = generate_device_network(_network_params(scale, rng), rng)
    train = [
        PlacementProblem(generate_task_graph(_graph_params(scale, rng), rng), network)
        for _ in range(scale.train_graphs)
    ]
    test = [
        PlacementProblem(generate_task_graph(_graph_params(scale, rng), rng), network)
        for _ in range(scale.test_cases)
    ]
    return Dataset(train, test, "single-network")


def multi_network_dataset(
    scale: Scale, rng: np.random.Generator, vary_sizes: bool = False
) -> Dataset:
    """Multiple device networks with varying capacities (§5.1 case 2:
    500 test cases from 10 networks × 120 graphs in the paper)."""
    sizes = None
    if vary_sizes:
        sizes = [
            int(rng.integers(max(2, scale.num_devices // 2), scale.num_devices + 1))
            for _ in range(scale.num_networks)
        ]
    networks = [
        generate_device_network(
            _network_params(scale, rng, num_devices=None if sizes is None else sizes[i]),
            rng,
            uid_offset=i * 1000,
            name=f"net-{i}",
        )
        for i in range(scale.num_networks)
    ]

    def sample_problems(count: int) -> list[PlacementProblem]:
        problems = []
        for _ in range(count):
            network = networks[int(rng.integers(0, len(networks)))]
            graph = generate_task_graph(_graph_params(scale, rng), rng)
            problems.append(PlacementProblem(graph, network))
        return problems

    return Dataset(
        sample_problems(scale.train_graphs),
        sample_problems(scale.test_cases),
        "multi-network" + ("-varied-sizes" if vary_sizes else ""),
    )
