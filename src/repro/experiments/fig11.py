"""Figure 11: relocation costs and energy-objective generality (§5.3, §6).

Left: the relocation cost GiPH's policy incurs when reacting to a
network change, as a function of the pipeline frequency — amortizing
relocation over future runs makes high-frequency pipelines tolerate
costlier moves, so incurred cost rises with frequency.

Right: swapping the reward to an energy objective, GiPH's placements
beat both random and (makespan-optimizing) HEFT on total energy.

Seed-stream layout: the two panels are independent sub-experiments —
the relocation sweep uses stages 0 (trace), 1 (training) and 2 (one
stream per scenario cell, fanned over ``workers``); the energy
comparison uses stages 3 (trace), 4 (training) and 5 (one stream per
test case, fanned over ``workers``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..baselines.giph_policy import GiPHSearchPolicy
from ..baselines.heft import heft_placement
from ..casestudy.measurements import TABLE2_RELOCATION
from ..core.agent import GiPHAgent
from ..core.placement import PlacementProblem, random_placement
from ..core.search import run_search
from ..parallel.backends import ExecutionBackend, resolve_backend
from ..parallel.pool import get_context as pool_context
from ..sim.metrics import energy_cost
from ..sim.objectives import EnergyObjective, MakespanObjective, Objective
from ..sim.relocation import RelocationCostModel
from .base import ExperimentReport
from .config import Scale
from .fig9 import case_study_problems, trace_cache_counter
from .reporting import banner, format_table
from .runner import stage_key, train_giph

__all__ = ["run", "RelocationAwareMakespan"]

FREQUENCIES = (0.1, 1.0, 10.0, 30.0)


class RelocationAwareMakespan:
    """Makespan plus amortized relocation cost away from a reference placement.

    ρ(M) = makespan(M) + Σ_{i: M(i) ≠ M_ref(i)} cost_i / f  — the §5.3
    trade-off: a relocation is worth its cost if it speeds up all future
    runs of a pipeline executing at frequency f.
    """

    # Noise-free makespan plus a placement-determined penalty: repeatable,
    # so PlacementEvaluator may cache values.
    deterministic = True

    def __init__(
        self,
        reference_placement: Sequence[int],
        relocation_model: RelocationCostModel,
        task_kinds: Sequence[str],
        problem: PlacementProblem,
        pipeline_frequency_hz: float,
    ) -> None:
        if pipeline_frequency_hz <= 0:
            raise ValueError("pipeline frequency must be positive")
        self.reference = tuple(reference_placement)
        self.model = relocation_model
        self.task_kinds = tuple(task_kinds)
        self.problem = problem
        self.frequency = pipeline_frequency_hz
        self._makespan = MakespanObjective()

    def relocation_cost_ms(self, placement: Sequence[int]) -> float:
        """Un-amortized total relocation cost vs the reference placement."""
        total = 0.0
        network = self.problem.network
        for i, (old, new) in enumerate(zip(self.reference, placement)):
            if old == new:
                continue
            kind = self.task_kinds[i]
            if kind not in self.model.profiles:
                continue  # pinned sensor/actuation tasks never move
            total += self.model.cost_ms(
                kind, network, network.devices[old].uid, network.devices[new].uid
            )
        return total

    def evaluate(self, cost_model, placement: Sequence[int]) -> float:
        makespan = self._makespan.evaluate(cost_model, placement)
        return makespan + self.relocation_cost_ms(placement) / self.frequency


@dataclass(frozen=True)
class _RelocationContext:
    """Broadcast payload for the per-scenario relocation-sweep cells."""

    seed: int
    agent: GiPHAgent
    scenarios: list


def _relocation_cell(scenario_index: int) -> dict[float, float]:
    """One scenario's incurred relocation cost at every pipeline frequency.

    The reference placement draws from ``[seed, 2, i]`` and each
    frequency's search from ``[seed, 2, i, f]`` — the cell's result is a
    pure function of (seed, scenario index), so cells fan out freely.
    """
    ctx: _RelocationContext = pool_context()
    scenario = ctx.scenarios[scenario_index]
    problem = scenario.problem
    model = RelocationCostModel(
        TABLE2_RELOCATION,
        {uid: t for uid, t in scenario.device_types.items() if t != "CIS"},
    )
    reference = random_placement(
        problem, np.random.default_rng([ctx.seed, 2, scenario_index])
    )
    out: dict[float, float] = {}
    for freq_index, freq in enumerate(FREQUENCIES):
        objective = RelocationAwareMakespan(
            reference, model, scenario.task_kinds, problem, freq
        )
        ctx.agent.rng = np.random.default_rng([ctx.seed, 2, scenario_index, freq_index])
        trace = run_search(
            agent=ctx.agent,
            problem=problem,
            objective=objective,
            initial_placement=reference,
            episode_length=problem.graph.num_tasks,
        )
        out[freq] = objective.relocation_cost_ms(trace.best_placement)
    return out


def _relocation_sweep(
    scale: Scale, seed: int, backend: ExecutionBackend, workers: int = 1
):
    """Left panel: incurred relocation cost vs pipeline frequency.

    ``workers`` parallelizes a cold trace extraction; it is passed as an
    integer (not ``backend``) because windowed extraction only accepts
    direct-execution backends — a shard backend still extracts locally.
    """
    train, test, scenarios, source = case_study_problems(scale, (seed, 0), workers=workers)
    # Training is inline glue (its stream is not a fan-out cell), so the
    # backend memoizes it: a merge pass loads what the shard runs built.
    agent = backend.compute(
        "stage",
        stage_key("fig11", "relocation-train", seed, scale),
        lambda: train_giph(train, np.random.default_rng([seed, 1]), scale.case_episodes),
    )

    eval_scenarios = scenarios[: max(len(test), 1)]
    context = _RelocationContext(seed=seed, agent=agent, scenarios=eval_scenarios)
    cells = backend.fanout(_relocation_cell, range(len(eval_scenarios)), context)

    incurred: dict[float, list[float]] = {f: [] for f in FREQUENCIES}
    for cell in cells:
        for freq in FREQUENCIES:
            incurred[freq].append(cell[freq])
    rows = [[freq, float(np.mean(incurred[freq]))] for freq in FREQUENCIES]
    return rows, incurred, source


@dataclass(frozen=True)
class _EnergyContext:
    """Broadcast payload for the per-case energy-comparison cells."""

    seed: int
    policy: GiPHSearchPolicy
    problems: list[PlacementProblem]


def _energy_cell(case_index: int) -> tuple[float, float, float]:
    """(giph, heft, random) total energy of one test case."""
    ctx: _EnergyContext = pool_context()
    problem = ctx.problems[case_index]
    objective = EnergyObjective()
    rng = np.random.default_rng([ctx.seed, 5, case_index])
    initial = random_placement(problem, rng)
    trace = ctx.policy.search(
        problem, objective, initial, 2 * problem.graph.num_tasks, rng
    )
    return (
        trace.best_value,
        energy_cost(problem.cost_model, heft_placement(problem).placement),
        energy_cost(problem.cost_model, initial),
    )


def _energy_comparison(
    scale: Scale, seed: int, backend: ExecutionBackend, workers: int = 1
):
    """Right panel: total energy of GiPH vs HEFT vs random placements."""
    train, test, _, source = case_study_problems(scale, (seed, 3), workers=workers)
    agent = backend.compute(
        "stage",
        stage_key("fig11", "energy-train", seed, scale),
        lambda: train_giph(
            train, np.random.default_rng([seed, 4]), scale.case_episodes,
            objective=EnergyObjective(),
        ),
    )

    context = _EnergyContext(seed=seed, policy=GiPHSearchPolicy(agent), problems=list(test))
    cells = backend.fanout(_energy_cell, range(len(test)), context)
    totals = {"giph": [], "heft": [], "random": []}
    for giph, heft, rand in cells:
        totals["giph"].append(giph)
        totals["heft"].append(heft)
        totals["random"].append(rand)
    return {k: float(np.mean(v)) for k, v in totals.items()}, source


def run(
    scale: Scale,
    seed: int = 0,
    workers: int = 1,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    backend = resolve_backend(backend, workers)
    reloc_rows, incurred, reloc_source = _relocation_sweep(scale, seed, backend, workers=workers)
    energy, energy_source = _energy_comparison(scale, seed, backend, workers=workers)

    text = "\n".join(
        [
            banner("Fig. 11 (left): incurred relocation cost vs pipeline frequency"),
            format_table(["pipeline frequency (Hz)", "mean relocation cost (ms)"], reloc_rows),
            banner("Fig. 11 (right): total energy cost across test cases"),
            format_table(
                ["policy", "mean energy"],
                [[k, v] for k, v in sorted(energy.items(), key=lambda kv: kv[1])],
            ),
        ]
    )
    return ExperimentReport(
        experiment_id="fig11",
        title="Relocation cost vs pipeline frequency; energy-objective comparison",
        text=text,
        data={
            "relocation_cost_by_frequency": {str(r[0]): r[1] for r in reloc_rows},
            "energy": energy,
            "trace_cache": trace_cache_counter([reloc_source, energy_source]),
        },
    )
