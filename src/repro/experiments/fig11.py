"""Figure 11: relocation costs and energy-objective generality (§5.3, §6).

Left: the relocation cost GiPH's policy incurs when reacting to a
network change, as a function of the pipeline frequency — amortizing
relocation over future runs makes high-frequency pipelines tolerate
costlier moves, so incurred cost rises with frequency.

Right: swapping the reward to an energy objective, GiPH's placements
beat both random and (makespan-optimizing) HEFT on total energy.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..baselines.giph_policy import GiPHSearchPolicy
from ..baselines.heft import heft_placement
from ..casestudy.measurements import TABLE2_RELOCATION
from ..core.placement import PlacementProblem, random_placement
from ..core.search import run_search
from ..sim.metrics import energy_cost
from ..sim.objectives import EnergyObjective, MakespanObjective, Objective
from ..sim.relocation import RelocationCostModel
from .base import ExperimentReport
from .config import Scale
from .fig9 import case_study_problems
from .reporting import banner, format_table
from .runner import train_giph

__all__ = ["run", "RelocationAwareMakespan"]


class RelocationAwareMakespan:
    """Makespan plus amortized relocation cost away from a reference placement.

    ρ(M) = makespan(M) + Σ_{i: M(i) ≠ M_ref(i)} cost_i / f  — the §5.3
    trade-off: a relocation is worth its cost if it speeds up all future
    runs of a pipeline executing at frequency f.
    """

    # Noise-free makespan plus a placement-determined penalty: repeatable,
    # so PlacementEvaluator may cache values.
    deterministic = True

    def __init__(
        self,
        reference_placement: Sequence[int],
        relocation_model: RelocationCostModel,
        task_kinds: Sequence[str],
        problem: PlacementProblem,
        pipeline_frequency_hz: float,
    ) -> None:
        if pipeline_frequency_hz <= 0:
            raise ValueError("pipeline frequency must be positive")
        self.reference = tuple(reference_placement)
        self.model = relocation_model
        self.task_kinds = tuple(task_kinds)
        self.problem = problem
        self.frequency = pipeline_frequency_hz
        self._makespan = MakespanObjective()

    def relocation_cost_ms(self, placement: Sequence[int]) -> float:
        """Un-amortized total relocation cost vs the reference placement."""
        total = 0.0
        network = self.problem.network
        for i, (old, new) in enumerate(zip(self.reference, placement)):
            if old == new:
                continue
            kind = self.task_kinds[i]
            if kind not in self.model.profiles:
                continue  # pinned sensor/actuation tasks never move
            total += self.model.cost_ms(
                kind, network, network.devices[old].uid, network.devices[new].uid
            )
        return total

    def evaluate(self, cost_model, placement: Sequence[int]) -> float:
        makespan = self._makespan.evaluate(cost_model, placement)
        return makespan + self.relocation_cost_ms(placement) / self.frequency


def _relocation_sweep(scale: Scale, rng: np.random.Generator):
    """Left panel: incurred relocation cost vs pipeline frequency."""
    train, test, scenarios = case_study_problems(scale, rng)
    agent = train_giph(train, rng, scale.case_episodes)
    frequencies = [0.1, 1.0, 10.0, 30.0]

    rows = []
    incurred: dict[float, list[float]] = {f: [] for f in frequencies}
    eval_scenarios = scenarios[: max(len(test), 1)]
    for scenario in eval_scenarios:
        problem = scenario.problem
        model = RelocationCostModel(
            TABLE2_RELOCATION,
            {uid: t for uid, t in scenario.device_types.items() if t != "CIS"},
        )
        reference = random_placement(problem, rng)
        for freq in frequencies:
            objective = RelocationAwareMakespan(
                reference, model, scenario.task_kinds, problem, freq
            )
            trace = run_search(
                agent, problem, objective, reference, episode_length=problem.graph.num_tasks
            )
            incurred[freq].append(objective.relocation_cost_ms(trace.best_placement))
    for freq in frequencies:
        rows.append([freq, float(np.mean(incurred[freq]))])
    return rows, incurred


def _energy_comparison(scale: Scale, rng: np.random.Generator):
    """Right panel: total energy of GiPH vs HEFT vs random placements."""
    train, test, _ = case_study_problems(scale, rng)
    objective = EnergyObjective()
    agent = train_giph(train, rng, scale.case_episodes, objective=objective)
    policy = GiPHSearchPolicy(agent)

    totals = {"giph": [], "heft": [], "random": []}
    for problem in test:
        initial = random_placement(problem, rng)
        trace = policy.search(
            problem, objective, initial, 2 * problem.graph.num_tasks, rng
        )
        totals["giph"].append(trace.best_value)
        totals["heft"].append(
            energy_cost(problem.cost_model, heft_placement(problem).placement)
        )
        totals["random"].append(energy_cost(problem.cost_model, initial))
    return {k: float(np.mean(v)) for k, v in totals.items()}


def run(scale: Scale, seed: int = 0) -> ExperimentReport:
    rng = np.random.default_rng(seed)
    reloc_rows, incurred = _relocation_sweep(scale, rng)
    energy = _energy_comparison(scale, rng)

    text = "\n".join(
        [
            banner("Fig. 11 (left): incurred relocation cost vs pipeline frequency"),
            format_table(["pipeline frequency (Hz)", "mean relocation cost (ms)"], reloc_rows),
            banner("Fig. 11 (right): total energy cost across test cases"),
            format_table(
                ["policy", "mean energy"],
                [[k, v] for k, v in sorted(energy.items(), key=lambda kv: kv[1])],
            ),
        ]
    )
    return ExperimentReport(
        experiment_id="fig11",
        title="Relocation cost vs pipeline frequency; energy-objective comparison",
        text=text,
        data={
            "relocation_cost_by_frequency": {str(r[0]): r[1] for r in reloc_rows},
            "energy": energy,
        },
    )
