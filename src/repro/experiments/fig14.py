"""Figure 14: policy convergence of the GNN implementation alternatives.

Appendix B.6 trains GiPH, GiPH-3, GiPH-5, GiPH-NE, GraphSAGE-NE,
GiPH-NE-Pol and GiPH-task-eft (plus Placeto where applicable) and
evaluates every few episodes on held-out cases, across three settings:
a single network, multiple fixed-size networks, and networks of varied
sizes.  Expected shape: GiPH/GiPH-k converge; GraphSAGE-NE (one-way
message passing) and GiPH-task-eft (no gpNet) are the unstable ones.

Every (setting, variant) cell trains from its own seed-derived stream
``default_rng([seed, setting_idx, variant_idx, 0])`` — so curves are
not spuriously correlated across cells, ``--seed`` moves the whole
figure, and the cell grid can fan out across ``workers`` processes with
bit-identical results for any worker count.  Evaluation streams are
shared per setting so variants stay comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..baselines.giph_policy import GiPHSearchPolicy
from ..baselines.task_eft import TaskEftAgent, TaskEftTrainer
from ..core.agent import GiPHAgent
from ..core.features import FeatureConfig
from ..core.placement import PlacementProblem
from ..core.reinforce import ReinforceConfig, ReinforceTrainer
from ..parallel.backends import ExecutionBackend, resolve_backend
from ..parallel.pool import get_context as pool_context
from ..sim.objectives import MakespanObjective
from .base import ExperimentReport
from .config import Scale
from .datasets import Dataset, multi_network_dataset, single_network_dataset
from .reporting import banner, format_series
from .runner import evaluate_policies

__all__ = ["run", "convergence_curve", "GNN_VARIANTS"]

GNN_VARIANTS = ("giph", "giph-3", "giph-5", "giph-ne", "graphsage-ne", "giph-ne-pol")


def convergence_curve(
    variant: str,
    dataset: Dataset,
    scale: Scale,
    rng: np.random.Generator,
    feature_config: FeatureConfig | None = None,
    eval_seed: int | Sequence[int] = 12345,
) -> list[float]:
    """Mean eval SLR after every ``convergence_eval_every`` episodes.

    ``eval_seed`` seeds the held-out evaluation sweep; it is re-derived
    per evaluation point so every point of the curve (and, when callers
    pass the same seed across variants, every variant) is measured under
    identical evaluation conditions.
    """
    objective = MakespanObjective()
    eval_cases = dataset.test[: scale.convergence_eval_cases]
    curve: list[float] = []

    def evaluate(policy) -> float:
        result = evaluate_policies({"p": policy}, eval_cases, np.random.default_rng(eval_seed))
        return result.mean_final("p")

    if variant == "giph-task-eft":
        agent = TaskEftAgent(rng)
        trainer = TaskEftTrainer(agent, objective)
        for _ in range(scale.convergence_episodes // scale.convergence_eval_every):
            trainer.train(dataset.train, rng, episodes=scale.convergence_eval_every)
            curve.append(evaluate(agent))
        return curve

    agent = GiPHAgent(rng, embedding=variant)
    config = ReinforceConfig(
        episodes=scale.convergence_episodes,
        feature_config=feature_config or FeatureConfig(),
    )
    trainer = ReinforceTrainer(agent, objective, config)
    policy = GiPHSearchPolicy(agent, feature_config=feature_config)
    for _ in range(scale.convergence_episodes // scale.convergence_eval_every):
        trainer.train(dataset.train, rng, episodes=scale.convergence_eval_every)
        curve.append(evaluate(policy))
    return curve


@dataclass(frozen=True)
class _Fig14Context:
    """Broadcast payload for the (setting, variant) cell workers."""

    scale: Scale
    seed: int
    datasets: list[Dataset]
    variants: list[str]


def _cell_curve(cell: tuple[int, int]) -> list[float]:
    """Train and evaluate one (setting, variant) cell.

    Training draws from ``default_rng([seed, setting, variant, 0])`` —
    per-cell streams, so curves are not spuriously correlated — while
    every evaluation point uses the *setting-shared* stream
    ``default_rng([seed, setting, 1])``: variants are compared on
    identical held-out cases and initial placements, which is the
    figure's point.
    """
    setting_idx, variant_idx = cell
    ctx: _Fig14Context = pool_context()
    train_rng = np.random.default_rng([ctx.seed, setting_idx, variant_idx, 0])
    return convergence_curve(
        ctx.variants[variant_idx],
        ctx.datasets[setting_idx],
        ctx.scale,
        train_rng,
        eval_seed=(ctx.seed, setting_idx, 1),
    )


def run(
    scale: Scale,
    seed: int = 0,
    workers: int = 1,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    rng = np.random.default_rng(seed)
    settings: list[tuple[str, Dataset]] = [
        ("single network", single_network_dataset(scale, rng)),
        ("multiple networks, same size", multi_network_dataset(scale, rng)),
        ("multiple networks, varied sizes", multi_network_dataset(scale, rng, vary_sizes=True)),
    ]
    variants = [*GNN_VARIANTS, "giph-task-eft"]

    cells = [(s, v) for s in range(len(settings)) for v in range(len(variants))]
    context = _Fig14Context(
        scale=scale,
        seed=seed,
        datasets=[dataset for _, dataset in settings],
        variants=variants,
    )
    flat_curves = resolve_backend(backend, workers).fanout(_cell_curve, cells, context)

    sections = []
    data: dict[str, dict[str, list[float]]] = {}
    episodes_axis = list(
        range(
            scale.convergence_eval_every,
            scale.convergence_episodes + 1,
            scale.convergence_eval_every,
        )
    )
    for setting_idx, (label, _) in enumerate(settings):
        curves = {
            variants[v]: flat_curves[setting_idx * len(variants) + v]
            for v in range(len(variants))
        }
        sections.append(banner(f"Fig. 14: convergence — {label}"))
        sections.append(
            format_series(
                curves,
                x=episodes_axis,
                x_label="episodes",
                title="average SLR on evaluation cases",
            )
        )
        data[label] = curves

    return ExperimentReport(
        experiment_id="fig14",
        title="Convergence of GNN implementation alternatives",
        text="\n".join(sections),
        data=data,
    )
