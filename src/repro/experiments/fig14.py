"""Figure 14: policy convergence of the GNN implementation alternatives.

Appendix B.6 trains GiPH, GiPH-3, GiPH-5, GiPH-NE, GraphSAGE-NE,
GiPH-NE-Pol and GiPH-task-eft (plus Placeto where applicable) and
evaluates every few episodes on held-out cases, across three settings:
a single network, multiple fixed-size networks, and networks of varied
sizes.  Expected shape: GiPH/GiPH-k converge; GraphSAGE-NE (one-way
message passing) and GiPH-task-eft (no gpNet) are the unstable ones.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..baselines.giph_policy import GiPHSearchPolicy
from ..baselines.task_eft import TaskEftAgent, TaskEftTrainer
from ..core.agent import GiPHAgent
from ..core.features import FeatureConfig
from ..core.placement import PlacementProblem
from ..core.reinforce import ReinforceConfig, ReinforceTrainer
from ..sim.objectives import MakespanObjective
from .base import ExperimentReport
from .config import Scale
from .datasets import Dataset, multi_network_dataset, single_network_dataset
from .reporting import banner, format_series
from .runner import evaluate_policies

__all__ = ["run", "convergence_curve", "GNN_VARIANTS"]

GNN_VARIANTS = ("giph", "giph-3", "giph-5", "giph-ne", "graphsage-ne", "giph-ne-pol")


def convergence_curve(
    variant: str,
    dataset: Dataset,
    scale: Scale,
    rng: np.random.Generator,
    feature_config: FeatureConfig | None = None,
) -> list[float]:
    """Mean eval SLR after every ``convergence_eval_every`` episodes."""
    objective = MakespanObjective()
    eval_cases = dataset.test[: scale.convergence_eval_cases]
    curve: list[float] = []

    def evaluate(policy) -> float:
        result = evaluate_policies({"p": policy}, eval_cases, np.random.default_rng(12345))
        return result.mean_final("p")

    if variant == "giph-task-eft":
        agent = TaskEftAgent(rng)
        trainer = TaskEftTrainer(agent, objective)
        for _ in range(scale.convergence_episodes // scale.convergence_eval_every):
            trainer.train(dataset.train, rng, episodes=scale.convergence_eval_every)
            curve.append(evaluate(agent))
        return curve

    agent = GiPHAgent(rng, embedding=variant)
    config = ReinforceConfig(
        episodes=scale.convergence_episodes,
        feature_config=feature_config or FeatureConfig(),
    )
    trainer = ReinforceTrainer(agent, objective, config)
    policy = GiPHSearchPolicy(agent, feature_config=feature_config)
    for _ in range(scale.convergence_episodes // scale.convergence_eval_every):
        trainer.train(dataset.train, rng, episodes=scale.convergence_eval_every)
        curve.append(evaluate(policy))
    return curve


def run(scale: Scale, seed: int = 0) -> ExperimentReport:
    rng = np.random.default_rng(seed)
    settings: list[tuple[str, Dataset]] = [
        ("single network", single_network_dataset(scale, rng)),
        ("multiple networks, same size", multi_network_dataset(scale, rng)),
        ("multiple networks, varied sizes", multi_network_dataset(scale, rng, vary_sizes=True)),
    ]
    variants = [*GNN_VARIANTS, "giph-task-eft"]

    sections = []
    data: dict[str, dict[str, list[float]]] = {}
    episodes_axis = list(
        range(
            scale.convergence_eval_every,
            scale.convergence_episodes + 1,
            scale.convergence_eval_every,
        )
    )
    for label, dataset in settings:
        curves = {
            v: convergence_curve(v, dataset, scale, np.random.default_rng(seed + 1))
            for v in variants
        }
        sections.append(banner(f"Fig. 14: convergence — {label}"))
        sections.append(
            format_series(
                curves,
                x=episodes_axis,
                x_label="episodes",
                title="average SLR on evaluation cases",
            )
        )
        data[label] = curves

    return ExperimentReport(
        experiment_id="fig14",
        title="Convergence of GNN implementation alternatives",
        text="\n".join(sections),
        data=data,
    )
