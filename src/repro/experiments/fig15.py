"""Figure 15: convergence after removing the start-time-potential feature.

The EST potential aggregates neighborhood schedule information into a
single node feature; without it GiPH-NE-Pol (no GNN) has nothing doing
that aggregation and stops improving, while GiPH's message passing
compensates — the least-affected variant (Appendix B.6).

Per-variant training streams ``default_rng([seed, variant, 0])`` (same
fix as fig14: a shared ``default_rng(seed + 1)`` would correlate every
curve) with a shared eval stream ``(seed, 1)`` keeping variants measured
on identical held-out sweeps — which is also what lets the variant cells
fan out over ``workers`` with bit-identical curves at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.features import FeatureConfig
from ..parallel.backends import ExecutionBackend, resolve_backend
from ..parallel.pool import get_context as pool_context
from .base import ExperimentReport
from .config import Scale
from .datasets import Dataset, multi_network_dataset
from .fig14 import convergence_curve
from .reporting import banner, format_series

__all__ = ["run"]

VARIANTS = ("giph", "giph-3", "giph-5", "giph-ne-pol")


@dataclass(frozen=True)
class _Fig15Context:
    """Broadcast payload for the per-variant convergence cells."""

    seed: int
    scale: Scale
    dataset: Dataset
    feature_config: FeatureConfig


def _variant_curve(variant_index: int) -> list[float]:
    ctx: _Fig15Context = pool_context()
    return convergence_curve(
        VARIANTS[variant_index],
        ctx.dataset,
        ctx.scale,
        np.random.default_rng([ctx.seed, variant_index, 0]),
        feature_config=ctx.feature_config,
        eval_seed=(ctx.seed, 1),
    )


def run(
    scale: Scale,
    seed: int = 0,
    workers: int = 1,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    rng = np.random.default_rng(seed)
    dataset = multi_network_dataset(scale, rng, vary_sizes=True)

    context = _Fig15Context(
        seed=seed,
        scale=scale,
        dataset=dataset,
        feature_config=FeatureConfig(use_start_time_potential=False),
    )
    curves = dict(
        zip(
            VARIANTS,
            resolve_backend(backend, workers).fanout(
                _variant_curve, range(len(VARIANTS)), context
            ),
        )
    )
    episodes_axis = list(
        range(
            scale.convergence_eval_every,
            scale.convergence_episodes + 1,
            scale.convergence_eval_every,
        )
    )
    text = "\n".join(
        [
            banner("Fig. 15: convergence without the start-time-potential feature"),
            format_series(
                curves,
                x=episodes_axis,
                x_label="episodes",
                title="average SLR on evaluation cases (EST potential removed)",
            ),
        ]
    )
    return ExperimentReport(
        experiment_id="fig15",
        title="Feature ablation: removing the EST potential",
        text=text,
        data={"curves": curves},
    )
