"""Figure 15: convergence after removing the start-time-potential feature.

The EST potential aggregates neighborhood schedule information into a
single node feature; without it GiPH-NE-Pol (no GNN) has nothing doing
that aggregation and stops improving, while GiPH's message passing
compensates — the least-affected variant (Appendix B.6).
"""

from __future__ import annotations

import numpy as np

from ..core.features import FeatureConfig
from .base import ExperimentReport
from .config import Scale
from .datasets import multi_network_dataset
from .fig14 import convergence_curve
from .reporting import banner, format_series

__all__ = ["run"]

VARIANTS = ("giph", "giph-3", "giph-5", "giph-ne-pol")


def run(scale: Scale, seed: int = 0) -> ExperimentReport:
    rng = np.random.default_rng(seed)
    dataset = multi_network_dataset(scale, rng, vary_sizes=True)
    ablated = FeatureConfig(use_start_time_potential=False)

    # Per-variant training streams (same fix as fig14: a shared
    # default_rng(seed + 1) would correlate every curve); the shared
    # eval stream keeps variants measured on identical held-out sweeps.
    curves = {
        v: convergence_curve(
            v,
            dataset,
            scale,
            np.random.default_rng([seed, i, 0]),
            feature_config=ablated,
            eval_seed=(seed, 1),
        )
        for i, v in enumerate(VARIANTS)
    }
    episodes_axis = list(
        range(
            scale.convergence_eval_every,
            scale.convergence_episodes + 1,
            scale.convergence_eval_every,
        )
    )
    text = "\n".join(
        [
            banner("Fig. 15: convergence without the start-time-potential feature"),
            format_series(
                curves,
                x=episodes_axis,
                x_label="episodes",
                title="average SLR on evaluation cases (EST potential removed)",
            ),
        ]
    )
    return ExperimentReport(
        experiment_id="fig15",
        title="Feature ablation: removing the EST potential",
        text=text,
        data={"curves": curves},
    )
