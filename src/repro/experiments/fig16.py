"""Figure 16: total-cost minimization (paper §B.8).

GiPH's reward is swapped for the reduction of
Σ compute cost + Σ communication cost.  HEFT still optimizes makespan,
so GiPH should beat it (and random) on this objective — demonstrating
objective generality.  Reported, like the paper, as total cost of the
final placements versus task-graph depth.

Seed-stream layout: stage 0 — dataset, stage 1 — training, stage 2 —
evaluation (fanned per case over ``workers``).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..baselines.random_policies import RandomPlacementPolicy
from ..sim.objectives import TotalCostObjective
from ..parallel.backends import ExecutionBackend
from .base import ExperimentReport
from .config import Scale
from .datasets import multi_network_dataset
from .reporting import banner, format_table
from .runner import HeftPolicy, TrainSpec, evaluate_policies, train_policy_grid

__all__ = ["run"]


def run(
    scale: Scale,
    seed: int = 0,
    workers: int = 1,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    dataset = multi_network_dataset(scale, np.random.default_rng([seed, 0]))
    objective = TotalCostObjective()

    trained = train_policy_grid(
        [dataset.train],
        [TrainSpec("giph", "giph", (seed, 1, 0), scale.episodes, objective=objective)],
        workers=workers,
        backend=backend,
    )
    policies = {
        "giph": trained["giph"],
        "random": RandomPlacementPolicy(),
        "heft": HeftPolicy(),
    }
    result = evaluate_policies(
        policies,
        dataset.test,
        np.random.default_rng([seed, 2]),
        normalize_slr=False,
        objective=objective,
        workers=workers,
        backend=backend,
    )

    by_depth: dict[int, dict[str, list[float]]] = defaultdict(lambda: defaultdict(list))
    for idx, problem in enumerate(dataset.test):
        for name in policies:
            by_depth[problem.graph.depth][name].append(result.finals[name][idx])

    names = list(policies)
    rows = []
    for depth in sorted(by_depth):
        rows.append(
            [depth, *(float(np.mean(by_depth[depth][n])) for n in names)]
        )

    text = "\n".join(
        [
            banner("Fig. 16: total communication+computation cost vs graph depth"),
            format_table(["depth", *names], rows),
        ]
    )
    return ExperimentReport(
        experiment_id="fig16",
        title="Total cost minimization via reward swap",
        text=text,
        data={"overall": {n: result.mean_final(n) for n in names}},
    )
