"""Figure 16: total-cost minimization (paper §B.8).

GiPH's reward is swapped for the reduction of
Σ compute cost + Σ communication cost.  HEFT still optimizes makespan,
so GiPH should beat it (and random) on this objective — demonstrating
objective generality.  Reported, like the paper, as total cost of the
final placements versus task-graph depth.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..baselines.giph_policy import GiPHSearchPolicy
from ..baselines.random_policies import RandomPlacementPolicy
from ..sim.objectives import TotalCostObjective
from .base import ExperimentReport
from .config import Scale
from .datasets import multi_network_dataset
from .reporting import banner, format_table
from .runner import HeftPolicy, evaluate_policies, train_giph

__all__ = ["run"]


def run(scale: Scale, seed: int = 0) -> ExperimentReport:
    rng = np.random.default_rng(seed)
    dataset = multi_network_dataset(scale, rng)
    objective = TotalCostObjective()

    policies = {
        "giph": GiPHSearchPolicy(
            train_giph(dataset.train, rng, scale.episodes, objective=objective)
        ),
        "random": RandomPlacementPolicy(),
        "heft": HeftPolicy(),
    }
    result = evaluate_policies(
        policies, dataset.test, rng, normalize_slr=False, objective=objective
    )

    by_depth: dict[int, dict[str, list[float]]] = defaultdict(lambda: defaultdict(list))
    for idx, problem in enumerate(dataset.test):
        for name in policies:
            by_depth[problem.graph.depth][name].append(result.finals[name][idx])

    names = list(policies)
    rows = []
    for depth in sorted(by_depth):
        rows.append(
            [depth, *(float(np.mean(by_depth[depth][n])) for n in names)]
        )

    text = "\n".join(
        [
            banner("Fig. 16: total communication+computation cost vs graph depth"),
            format_table(["depth", *names], rows),
        ]
    )
    return ExperimentReport(
        experiment_id="fig16",
        title="Total cost minimization via reward swap",
        text=text,
        data={"overall": {n: result.mean_final(n) for n in names}},
    )
