"""Figure 4: placement quality and search efficiency of search policies.

Four panels: {single network, multiple networks} × {noise 0, noise 0.2}.
Each panel plots average SLR against the number of search steps for
GiPH, GiPH-task-EFT, Placeto, random-task+EFT and random sampling.
Expected shape (paper): GiPH lowest everywhere; Placeto degrades under
noise and falls behind random in the multi-network case.

Seed-stream layout (``default_rng([seed, stage, ...])``):

* stage 0 — dataset generation, one stream per dataset;
* stage 1 — training, one stream per (dataset, policy) cell, fanned out
  over ``workers`` processes;
* stage 2 — evaluation, one stream per dataset **shared by both noise
  panels**: the noise-0 and noise-0.2 panels of a dataset evaluate the
  same case seeds (same test order, same initial placements, same
  search streams) so only the injected noise differs and the panels are
  directly comparable.  The old threaded-through rng advanced between
  panels, silently evaluating them on different cases.
"""

from __future__ import annotations

import numpy as np

from ..baselines.random_policies import RandomPlacementPolicy, RandomTaskEftPolicy
from ..parallel.backends import ExecutionBackend
from .base import ExperimentReport
from .config import Scale
from .datasets import Dataset, multi_network_dataset, single_network_dataset
from .reporting import banner, format_evaluator_stats, format_gnn_stats, format_series
from .runner import TrainSpec, evaluate_policies, train_policy_grid

__all__ = ["run", "eval_stream"]

_DATA, _TRAIN, _EVAL = 0, 1, 2


def eval_stream(seed: int, dataset_index: int) -> list[int]:
    """Derivation key of a dataset's evaluation stream.

    Shared by the dataset's noise-0 and noise-0.2 panels — the panel
    comparability contract (see the module docstring and
    ``tests/parallel/test_determinism.py``).
    """
    return [seed, _EVAL, dataset_index]


def _train_specs(
    seed: int, dataset_index: int, dataset: Dataset, scale: Scale
) -> tuple[list[TrainSpec], list[list]]:
    """Training cells for one dataset's panels.

    Training never sees the evaluation noise (§5 injects noise at test
    time only), so the noise-0 and noise-0.2 panels of a dataset share
    the same trained policies instead of paying for training twice.
    """
    problem_sets: list[list] = [dataset.train]
    specs = [
        TrainSpec("giph", "giph", (seed, _TRAIN, dataset_index, 0), scale.episodes),
        TrainSpec(
            "giph-task-eft", "task-eft", (seed, _TRAIN, dataset_index, 1), scale.episodes
        ),
    ]
    device_counts = {p.network.num_devices for p in dataset.train + dataset.test}
    placeto_key = 0
    if len(device_counts) > 1:
        # paper's multi-network case: head sized for the largest cluster
        biggest = [p for p in dataset.train if p.network.num_devices == max(device_counts)]
        problem_sets.append(biggest or dataset.train[:1])
        placeto_key = 1
    specs.append(
        TrainSpec(
            "placeto", "placeto", (seed, _TRAIN, dataset_index, 2), scale.episodes,
            problems_key=placeto_key,
        )
    )
    return specs, problem_sets


def run(
    scale: Scale,
    seed: int = 0,
    workers: int = 1,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    """Reproduce Fig. 4's four panels at the given scale.

    The per-dataset training cells and per-case evaluation sweeps fan
    out through ``backend`` (default: inline/fork sized by ``workers``);
    reports are bit-identical for any worker count and any backend
    (wall-clock ``search_seconds`` excepted).
    """
    sections: list[str] = []
    data: dict[str, dict] = {}

    for dataset_index, (dataset_builder, label) in enumerate(
        (
            (single_network_dataset, "single-network"),
            (multi_network_dataset, "multi-network"),
        )
    ):
        dataset = dataset_builder(scale, np.random.default_rng([seed, _DATA, dataset_index]))
        specs, problem_sets = _train_specs(seed, dataset_index, dataset, scale)
        trained = train_policy_grid(problem_sets, specs, workers=workers, backend=backend)
        policies = {
            "giph": trained["giph"],
            "giph-task-eft": trained["giph-task-eft"],
            "random-task-eft": RandomTaskEftPolicy(),
            "random": RandomPlacementPolicy(),
            "placeto": trained["placeto"],
        }
        for noise in (0.0, 0.2):
            panel = f"{label}, noise={noise}"
            result = evaluate_policies(
                policies,
                dataset.test,
                np.random.default_rng(eval_stream(seed, dataset_index)),
                noise=noise,
                workers=workers,
                backend=backend,
            )
            sections.append(banner(f"Fig. 4 panel: {panel}"))
            sections.append(
                format_series(
                    {name: curve for name, curve in result.curves.items()},
                    x_label="search step",
                    title="average SLR (best-so-far) vs search steps",
                    every=max(1, scale.num_tasks // 2),
                )
            )
            # Deterministic counters only in the persisted report text;
            # wall-clock timing lives in `data` (the benchmark prints it)
            # so same-seed result artifacts stay diffable.
            sections.append(format_evaluator_stats(result.evaluator_stats))
            sections.append(format_gnn_stats(result.gnn_stats))
            data[panel] = {
                "noise": noise,
                # Provenance: the derived case-seed stream this panel
                # evaluated under — equal across a dataset's two noise
                # panels by construction.
                "eval_stream": eval_stream(seed, dataset_index),
                "curves": {k: v.tolist() for k, v in result.curves.items()},
                "final": {k: result.mean_final(k) for k in result.finals},
                "evaluator": {
                    k: s.as_dict() for k, s in result.evaluator_stats.items()
                },
                # forwards/backwards are deterministic; the embedded
                # "gnn_seconds" is volatile and stripped from the
                # report's canonical form (see VOLATILE_DATA_KEYS).
                "gnn": {k: s.as_dict() for k, s in result.gnn_stats.items()},
                "search_seconds": dict(result.search_seconds),
            }

    return ExperimentReport(
        experiment_id="fig4",
        title="Placement quality and search efficiency of search-based policies",
        text="\n".join(sections),
        data=data,
    )
