"""Figure 4: placement quality and search efficiency of search policies.

Four panels: {single network, multiple networks} × {noise 0, noise 0.2}.
Each panel plots average SLR against the number of search steps for
GiPH, GiPH-task-EFT, Placeto, random-task+EFT and random sampling.
Expected shape (paper): GiPH lowest everywhere; Placeto degrades under
noise and falls behind random in the multi-network case.
"""

from __future__ import annotations

import numpy as np

from ..baselines.giph_policy import GiPHSearchPolicy
from ..baselines.random_policies import RandomPlacementPolicy, RandomTaskEftPolicy
from .base import ExperimentReport
from .config import Scale
from .datasets import Dataset, multi_network_dataset, single_network_dataset
from .reporting import banner, format_evaluator_stats, format_series
from .runner import evaluate_policies, train_giph, train_placeto, train_task_eft

__all__ = ["run"]


def _train_panel_policies(dataset: Dataset, scale: Scale, rng: np.random.Generator):
    """Train each panel's learned policies once per dataset.

    Training never sees the evaluation noise (§5 injects noise at test
    time only), so the noise-0 and noise-0.2 panels of a dataset share
    the same trained policies instead of paying for training twice.
    """
    giph = train_giph(dataset.train, rng, scale.episodes)
    task_eft = train_task_eft(dataset.train, rng, scale.episodes)
    policies = {
        "giph": GiPHSearchPolicy(giph),
        "giph-task-eft": task_eft,
        "random-task-eft": RandomTaskEftPolicy(),
        "random": RandomPlacementPolicy(),
    }
    device_counts = {p.network.num_devices for p in dataset.train + dataset.test}
    if len(device_counts) == 1:
        policies["placeto"] = train_placeto(dataset.train, rng, scale.episodes)
    else:  # paper's multi-network case: head sized for the largest cluster
        biggest = [p for p in dataset.train if p.network.num_devices == max(device_counts)]
        policies["placeto"] = train_placeto(
            biggest or dataset.train[:1], rng, scale.episodes
        )
    return policies


def run(scale: Scale, seed: int = 0) -> ExperimentReport:
    """Reproduce Fig. 4's four panels at the given scale."""
    rng = np.random.default_rng(seed)
    sections: list[str] = []
    data: dict[str, dict] = {}

    for dataset_builder, label in (
        (single_network_dataset, "single-network"),
        (multi_network_dataset, "multi-network"),
    ):
        dataset = dataset_builder(scale, rng)
        policies = _train_panel_policies(dataset, scale, rng)
        for noise in (0.0, 0.2):
            panel = f"{label}, noise={noise}"
            result = evaluate_policies(policies, dataset.test, rng, noise=noise)
            sections.append(banner(f"Fig. 4 panel: {panel}"))
            sections.append(
                format_series(
                    {name: curve for name, curve in result.curves.items()},
                    x_label="search step",
                    title="average SLR (best-so-far) vs search steps",
                    every=max(1, scale.num_tasks // 2),
                )
            )
            # Deterministic counters only in the persisted report text;
            # wall-clock timing lives in `data` (the benchmark prints it)
            # so same-seed result artifacts stay diffable.
            sections.append(format_evaluator_stats(result.evaluator_stats))
            data[panel] = {
                "curves": {k: v.tolist() for k, v in result.curves.items()},
                "final": {k: result.mean_final(k) for k in result.finals},
                "evaluator": {
                    k: s.as_dict() for k, s in result.evaluator_stats.items()
                },
                "search_seconds": dict(result.search_seconds),
            }

    return ExperimentReport(
        experiment_id="fig4",
        title="Placement quality and search efficiency of search-based policies",
        text="\n".join(sections),
        data=data,
    )
