"""Figure 5: average SLR with respect to task-graph depth.

Deeper graphs have longer critical paths, so SLR rises for every method;
GiPH should track HEFT closely and beat the other search policies.

Seed-stream layout: stage 0 — dataset, stage 1 — one stream per
training cell (fanned over ``workers``), stage 2 — evaluation (fanned
per case).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..baselines.random_policies import RandomPlacementPolicy, RandomTaskEftPolicy
from ..parallel.backends import ExecutionBackend
from .base import ExperimentReport
from .config import Scale
from .datasets import multi_network_dataset
from .reporting import banner, format_table
from .runner import HeftPolicy, TrainSpec, evaluate_policies, train_policy_grid

__all__ = ["run"]


def run(
    scale: Scale,
    seed: int = 0,
    workers: int = 1,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    dataset = multi_network_dataset(scale, np.random.default_rng([seed, 0]))

    trained = train_policy_grid(
        [dataset.train],
        [
            TrainSpec("giph", "giph", (seed, 1, 0), scale.episodes),
            TrainSpec("giph-task-eft", "task-eft", (seed, 1, 1), scale.episodes),
        ],
        workers=workers,
        backend=backend,
    )
    policies = {
        "giph": trained["giph"],
        "giph-task-eft": trained["giph-task-eft"],
        "random-task-eft": RandomTaskEftPolicy(),
        "random": RandomPlacementPolicy(),
        "heft": HeftPolicy(),
    }
    result = evaluate_policies(
        policies, dataset.test, np.random.default_rng([seed, 2]), workers=workers, backend=backend
    )

    # Group final SLR by graph depth.
    by_depth: dict[int, dict[str, list[float]]] = defaultdict(lambda: defaultdict(list))
    for case_index, problem in enumerate(dataset.test):
        depth = problem.graph.depth
        for name in policies:
            by_depth[depth][name].append(result.finals[name][case_index])

    names = list(policies)
    rows = []
    mean_by_policy: dict[str, list[float]] = {n: [] for n in names}
    for depth in sorted(by_depth):
        row: list[object] = [depth, len(by_depth[depth][names[0]])]
        for name in names:
            mean = float(np.mean(by_depth[depth][name]))
            row.append(mean)
            mean_by_policy[name].append(mean)
        rows.append(row)

    text = "\n".join(
        [
            banner("Fig. 5: average SLR vs task-graph depth"),
            format_table(["depth", "cases", *names], rows),
        ]
    )
    return ExperimentReport(
        experiment_id="fig5",
        title="Average SLR with respect to the depth of the task graph",
        text=text,
        data={
            "depths": sorted(by_depth),
            "mean_slr": {n: mean_by_policy[n] for n in names},
            "overall": {n: result.mean_final(n) for n in names},
        },
    )
