"""Figure 6: adaptivity to device-network changes.

A cluster starts at full strength; devices are randomly removed and
replaced by lower-capacity ones (§5).  The sweep is expressed as a
scenario (:mod:`repro.scenarios`) replayed by the streaming
:class:`~repro.scenarios.ScenarioRunner`: after each churn event every
policy re-places the application graphs on the *new* network from its
carried placement, without retraining — except the RNN placer, which is
retrained per change (:class:`~repro.baselines.RnnPlacerPolicy`), and
HEFT, which is recomputed per change.  Expected shape: GiPH stays near
HEFT; Placeto drifts to or below random; random degrades as high-cost
devices accumulate.  On top of the seed version's SLR series, the
scenario engine also reports migration bills and regret against a
fresh-search oracle.
"""

from __future__ import annotations

import numpy as np

from ..baselines.giph_policy import GiPHSearchPolicy
from ..baselines.random_policies import RandomPlacementPolicy
from ..baselines.rnn_placer import RnnPlacerPolicy
from ..core.placement import PlacementProblem
from ..devices.dynamics import ChurnConfig
from ..parallel.backends import ExecutionBackend, resolve_backend
from ..scenarios import ClusterSpec, ScenarioRunner, ScenarioSpec, WorkloadSpec, materialize
from .base import ExperimentReport
from .config import Scale
from .reporting import banner, format_series
from .runner import HeftPolicy, stage_key, train_giph, train_placeto, train_task_eft

__all__ = ["run", "adaptivity_spec"]

POLICIES = ("giph", "giph-task-eft", "placeto", "random", "rnn-placer", "heft")


def adaptivity_spec(scale: Scale, seed: int = 0) -> ScenarioSpec:
    """The Fig. 6 protocol as a declarative scenario."""
    return ScenarioSpec(
        name="fig6-adaptivity",
        seed=seed,
        workload=WorkloadSpec(
            initial_graphs=scale.adapt_graphs, num_tasks=scale.num_tasks
        ),
        cluster=ClusterSpec(num_devices=scale.adapt_devices, support_prob=0.7),
        churn=ChurnConfig(
            min_devices=scale.adapt_min_devices,
            max_devices=scale.adapt_devices,
            num_changes=scale.adapt_changes,
        ),
        description="paper Fig. 6: churn between full and reduced capacity",
    )


def _train_all(train_problems, rng: np.random.Generator, scale: Scale):
    """The three learned policies, trained from one shared stream.

    One unit on purpose: the trainings consume a single threaded rng, so
    they memoize (and replay at shard merge) only as a bundle.
    """
    giph_policy = GiPHSearchPolicy(train_giph(train_problems, rng, scale.episodes))
    task_eft = train_task_eft(train_problems, rng, scale.episodes)
    placeto = train_placeto(train_problems, rng, scale.episodes)
    return giph_policy, task_eft, placeto


def run(
    scale: Scale,
    seed: int = 0,
    workers: int = 1,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    backend = resolve_backend(backend, workers)
    materialized = materialize(adaptivity_spec(scale, seed))

    # Learned policies trained once, on the initial network only.
    train_problems = [
        PlacementProblem(g, materialized.initial_network) for g in materialized.initial_graphs
    ]
    giph_policy, task_eft, placeto = backend.compute(
        "stage",
        stage_key("fig6", "train", seed, scale),
        lambda: _train_all(train_problems, np.random.default_rng(seed), scale),
    )

    # The six policy replays are independent (per-policy seed streams,
    # one EvaluatorPool each), so they fan out across workers.
    result = ScenarioRunner(materialized).run(
        {
            "giph": giph_policy,
            "giph-task-eft": task_eft,
            "placeto": placeto,
            "random": RandomPlacementPolicy(),
            # Retrained from scratch on every change (the paper's
            # "w/ retraining" baseline).
            "rnn-placer": RnnPlacerPolicy(samples_per_update=4, max_updates=8, patience=3),
            "heft": HeftPolicy(),
        },
        backend=backend,
    )

    slr_by_change = {name: result.slr_series(name) for name in POLICIES}
    migration_by_change = {
        name: result.reports[name].series("migration_cost_ms") for name in POLICIES
    }
    regret_by_change = {name: result.reports[name].series("regret") for name in POLICIES}

    x = list(range(1, len(slr_by_change["giph"]) + 1))
    text = "\n".join(
        [
            banner("Fig. 6: adaptivity to device network changes"),
            format_series(
                slr_by_change,
                x=x,
                x_label="network change #",
                title="average SLR after each change (no retraining except rnn-placer)",
            ),
            "",
            "adaptation summary (scenario engine):",
            *(
                f"  {name:<14s} mean regret {result.reports[name].mean_regret:+.3f}, "
                f"{result.reports[name].total_migrated_tasks:4d} migrations, "
                f"{result.reports[name].total_migration_cost_ms:9.1f} ms migration cost, "
                f"cache hit rate {result.reports[name].evaluator_stats.get('hit_rate', 0.0):.2f}"
                for name in POLICIES
            ),
        ]
    )
    return ExperimentReport(
        experiment_id="fig6",
        title="Adaptivity to device network changes",
        text=text,
        data={
            "slr_by_change": slr_by_change,
            "migration_by_change": migration_by_change,
            "regret_by_change": regret_by_change,
            "oracle_slr": list(result.oracle_slr),
        },
    )
