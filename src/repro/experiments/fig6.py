"""Figure 6: adaptivity to device-network changes.

A cluster starts at full strength; devices are randomly removed and
replaced by lower-capacity ones (§5).  After each change every policy
re-places a fixed set of application graphs on the *new* network without
retraining — except the RNN placer, which is retrained per change, and
HEFT, which is recomputed per change (it is an algorithm, not a learned
policy).  Expected shape: GiPH stays near HEFT; Placeto drifts to or
below random; random degrades as high-cost devices accumulate.
"""

from __future__ import annotations

import numpy as np

from ..baselines.giph_policy import GiPHSearchPolicy
from ..baselines.random_policies import RandomPlacementPolicy
from ..baselines.rnn_placer import RnnPlacer
from ..core.placement import PlacementProblem
from ..devices.dynamics import ChurnConfig, network_churn
from ..devices.generator import DeviceNetworkParams, generate_device_network
from ..graphs.generator import TaskGraphParams, generate_task_graph
from ..sim.metrics import cp_min_lower_bound
from ..sim.objectives import MakespanObjective
from .base import ExperimentReport
from .config import Scale
from .reporting import banner, format_series
from .runner import HeftPolicy, evaluate_policies, train_giph, train_placeto, train_task_eft

__all__ = ["run"]


def run(scale: Scale, seed: int = 0) -> ExperimentReport:
    rng = np.random.default_rng(seed)
    network = generate_device_network(
        DeviceNetworkParams(num_devices=scale.adapt_devices, support_prob=0.7), rng
    )
    graphs = [
        generate_task_graph(TaskGraphParams(num_tasks=scale.num_tasks), rng)
        for _ in range(scale.adapt_graphs)
    ]

    # Learned policies trained once, on the initial network only.
    train_problems = [PlacementProblem(g, network) for g in graphs]
    giph_policy = GiPHSearchPolicy(train_giph(train_problems, rng, scale.episodes))
    task_eft = train_task_eft(train_problems, rng, scale.episodes)
    placeto = train_placeto(train_problems, rng, scale.episodes)

    churn = ChurnConfig(
        min_devices=scale.adapt_min_devices,
        max_devices=scale.adapt_devices,
        num_changes=scale.adapt_changes,
    )

    policy_names = ["giph", "giph-task-eft", "placeto", "random", "rnn-placer", "heft"]
    slr_by_change: dict[str, list[float]] = {n: [] for n in policy_names}

    objective = MakespanObjective()
    for event in network_churn(network, churn, rng):
        problems = [PlacementProblem(g, event.network) for g in graphs]
        result = evaluate_policies(
            {
                "giph": giph_policy,
                "giph-task-eft": task_eft,
                "placeto": placeto,
                "random": RandomPlacementPolicy(),
                "heft": HeftPolicy(),
            },
            problems,
            rng,
        )
        for name in ("giph", "giph-task-eft", "placeto", "random", "heft"):
            slr_by_change[name].append(result.mean_final(name))

        # RNN placer: retrained from scratch on every change (the paper's
        # "w/ retraining" baseline).
        rnn_slrs = []
        for problem in problems:
            placer = RnnPlacer(problem, np.random.default_rng(rng.integers(0, 2**63)))
            fit = placer.fit(objective, samples_per_update=4, max_updates=8, patience=3)
            rnn_slrs.append(fit.best_value / cp_min_lower_bound(problem.cost_model))
        slr_by_change["rnn-placer"].append(float(np.mean(rnn_slrs)))

    text = "\n".join(
        [
            banner("Fig. 6: adaptivity to device network changes"),
            format_series(
                slr_by_change,
                x=list(range(1, len(slr_by_change["giph"]) + 1)),
                x_label="network change #",
                title="average SLR after each change (no retraining except rnn-placer)",
            ),
        ]
    )
    return ExperimentReport(
        experiment_id="fig6",
        title="Adaptivity to device network changes",
        text=text,
        data={"slr_by_change": slr_by_change},
    )
