"""Figure 7: deep-learning computation graphs (paper §5.2).

(a) SLR during the search on ENAS-generated recurrent-cell graphs,
grouped to a fixed node count and placed on a single simulated device
network; (b) the distribution of per-task relocation counts for GiPH,
showing it revisits "critical" groups instead of sweeping all nodes
uniformly as Placeto does.

Seed-stream layout: stage 0 — ENAS dataset, stage 1 — one stream per
training cell (fanned over ``workers``), stage 2 — evaluation (fanned
per case).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..baselines.random_policies import RandomPlacementPolicy, RandomTaskEftPolicy
from ..core.placement import PlacementProblem
from ..devices.generator import DeviceNetworkParams, generate_device_network
from ..graphs.enas import generate_enas_dataset
from ..graphs.grouping import group_operators
from ..parallel.backends import ExecutionBackend
from .base import ExperimentReport
from .config import Scale
from .datasets import Dataset
from .reporting import banner, format_series, format_table
from .runner import TrainSpec, evaluate_policies, train_policy_grid

__all__ = ["run", "build_dl_dataset"]


def build_dl_dataset(scale: Scale, rng: np.random.Generator) -> Dataset:
    """ENAS graphs, operator-grouped, on one shared device network."""
    raw = generate_enas_dataset(
        rng,
        num_designs=scale.dl_designs,
        variants_per_design=scale.dl_variants,
    )
    grouped = [group_operators(g, target_size=scale.dl_group_target).graph for g in raw]
    network = generate_device_network(
        DeviceNetworkParams(num_devices=scale.dl_devices, support_prob=1.0), rng
    )
    problems = [PlacementProblem(g, network) for g in grouped]
    rng.shuffle(problems)  # type: ignore[arg-type]
    if len(problems) == 1:
        # Degenerate (micro-scale) dataset: evaluate on the training graph.
        return Dataset(problems, problems, "dl-graphs")
    half = max(len(problems) // 2, 1)
    return Dataset(problems[:half], problems[half : half + scale.dl_test_cases], "dl-graphs")


def run(
    scale: Scale,
    seed: int = 0,
    workers: int = 1,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    dataset = build_dl_dataset(scale, np.random.default_rng([seed, 0]))

    trained = train_policy_grid(
        [dataset.train],
        [
            TrainSpec("giph", "giph", (seed, 1, 0), scale.dl_episodes),
            TrainSpec("giph-task-eft", "task-eft", (seed, 1, 1), scale.dl_episodes),
            TrainSpec("placeto", "placeto", (seed, 1, 2), scale.dl_episodes),
        ],
        workers=workers,
        backend=backend,
    )
    policies = {
        "giph": trained["giph"],
        "giph-task-eft": trained["giph-task-eft"],
        "placeto": trained["placeto"],
        "random-task-eft": RandomTaskEftPolicy(),
        "random": RandomPlacementPolicy(),
    }
    result = evaluate_policies(
        policies, dataset.test, np.random.default_rng([seed, 2]), workers=workers, backend=backend
    )

    # (b) relocation-count histogram over GiPH's evaluation searches
    # (non-zero counts only, as in the paper).
    counts = Counter()
    for trace in result.traces["giph"]:
        for c in trace.relocation_counts:
            if c > 0:
                counts[c] += 1
    hist_rows = [[k, counts[k]] for k in sorted(counts)]

    text = "\n".join(
        [
            banner("Fig. 7(a): SLR during search on DL computation graphs"),
            format_series(
                result.curves,
                x_label="search step",
                title="average SLR (best-so-far) vs search steps",
                every=max(1, scale.dl_group_target // 2),
            ),
            banner("Fig. 7(b): task relocation count distribution (GiPH)"),
            format_table(["relocations per task", "tasks"], hist_rows),
        ]
    )
    return ExperimentReport(
        experiment_id="fig7",
        title="Deep learning graphs: search efficiency and relocation counts",
        text=text,
        data={
            "curves": {k: v.tolist() for k, v in result.curves.items()},
            "final": {k: result.mean_final(k) for k in result.finals},
            "relocation_histogram": dict(counts),
        },
    )
