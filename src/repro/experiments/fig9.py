"""Figure 9: case study — autonomous intersection traffic management.

Placement cases are extracted from the (simulated) traffic trace and
split into train/test.  (a) plots average SLR vs search steps; (b) the
distribution of final SLRs, where GiPH should sit at or below HEFT's
mean.

Seed-stream layout: stage 0 — trace extraction, stage 1 — one stream
per training cell (fanned over ``workers``), stage 2 — evaluation
(fanned per case).  The trace is memoized through
:func:`repro.casestudy.trace.extract_trace_cached` keyed by (scale,
stream) — fig11 shares stage 0's stream, so one extraction serves both
experiments within a process (and across ``repro shard`` invocations
through the run store).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..baselines.random_policies import RandomPlacementPolicy, RandomTaskEftPolicy
from ..casestudy.trace import TraceConfig, extract_trace_cached
from ..casestudy.traffic import TrafficConfig
from ..parallel.backends import ExecutionBackend
from .base import ExperimentReport
from .config import Scale
from .reporting import banner, format_series, format_table
from .runner import HeftPolicy, TrainSpec, evaluate_policies, train_policy_grid

__all__ = ["run", "case_study_problems", "trace_cache_counter"]


def trace_cache_counter(sources: Sequence[str]) -> dict:
    """Report-data cache counter over this run's trace lookups.

    A ``hit`` is any lookup the memo or the run store satisfied without
    re-running the traffic simulation.  Run-dependent by nature (a
    second same-process run is all hits), so it lives with the other
    volatile report keys — see ``ExperimentReport.stable_data``.
    """
    hits = sum(1 for s in sources if s != "extracted")
    return {"hits": hits, "misses": len(sources) - hits, "sources": list(sources)}


def case_study_problems(scale: Scale, stream: Sequence[int], workers: int = 1):
    """(train, test, scenarios, cache source) from the traffic trace.

    ``stream`` is the extraction's full seed-derivation key (fed to
    ``default_rng(list(stream))``), which doubles as its memo identity.
    ``workers`` fans a cold extraction over snapshot windows (identical
    scenarios either way, so the cache key is unaffected).
    """
    config = TraceConfig(
        traffic=TrafficConfig(
            num_vehicles=scale.case_vehicles,
            duration_s=scale.case_duration_s,
            cav_fraction=scale.case_cav_fraction,
        ),
        max_cases=scale.case_train + scale.case_test,
    )
    scenarios, source = extract_trace_cached(config, stream, workers=workers)
    if len(scenarios) < 2:
        raise RuntimeError(
            f"trace produced only {len(scenarios)} placement cases; "
            "increase vehicles/duration/cav_fraction"
        )
    split = min(scale.case_train, len(scenarios) // 2)
    train = [s.problem for s in scenarios[:split]]
    test = [s.problem for s in scenarios[split : split + scale.case_test]]
    return train, test, scenarios, source


def run(
    scale: Scale,
    seed: int = 0,
    workers: int = 1,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    train, test, _, trace_source = case_study_problems(scale, (seed, 0), workers=workers)

    trained = train_policy_grid(
        [train],
        [
            TrainSpec("giph", "giph", (seed, 1, 0), scale.case_episodes),
            TrainSpec("giph-task-eft", "task-eft", (seed, 1, 1), scale.case_episodes),
        ],
        workers=workers,
        backend=backend,
    )
    policies = {
        "giph": trained["giph"],
        "giph-task-eft": trained["giph-task-eft"],
        "random-task-eft": RandomTaskEftPolicy(),
        "random": RandomPlacementPolicy(),
        "heft": HeftPolicy(),
    }
    result = evaluate_policies(
        policies, test, np.random.default_rng([seed, 2]), workers=workers, backend=backend
    )

    dist_rows = []
    for name in policies:
        finals = np.array(result.finals[name])
        dist_rows.append(
            [
                name,
                float(finals.mean()),
                float(np.percentile(finals, 25)),
                float(np.percentile(finals, 50)),
                float(np.percentile(finals, 75)),
                float(finals.max()),
            ]
        )

    text = "\n".join(
        [
            banner("Fig. 9(a): case-study search efficiency"),
            format_series(
                result.curves,
                x_label="search step",
                title="average SLR (best-so-far) vs search steps",
                every=5,
            ),
            banner("Fig. 9(b): final-SLR distribution across test cases"),
            format_table(["policy", "mean", "p25", "median", "p75", "max"], dist_rows),
        ]
    )
    return ExperimentReport(
        experiment_id="fig9",
        title="Case study: cooperative sensor fusion placement",
        text=text,
        data={
            "curves": {k: v.tolist() for k, v in result.curves.items()},
            "final_mean": {k: result.mean_final(k) for k in result.finals},
            "finals": {k: list(v) for k, v in result.finals.items()},
            "num_train": len(train),
            "num_test": len(test),
            "gnn": {k: s.as_dict() for k, s in result.gnn_stats.items()},
            "trace_cache": trace_cache_counter([trace_source]),
        },
    )
