"""Registry of the paper's experiment modules.

The single source of truth the CLI dispatches and generates help from:
experiment ids, module resolution with a clean error for unknown ids,
and which experiments fan out over ``--workers``.  Help strings derive
from this module, so they cannot drift from the modules that actually
exist / actually accept ``workers`` (``tests/test_cli.py`` locks the id
list to the package contents and the static parallel/serial split to
``run`` signature introspection).

Importing this module is cheap by design — the id tuples are static and
:func:`get_module` imports lazily — because the CLI builds its help from
it on every invocation, including ``repro --help`` and non-experiment
subcommands.
"""

from __future__ import annotations

import importlib
import inspect
from types import ModuleType

__all__ = [
    "EXPERIMENT_IDS",
    "SERIAL_EXPERIMENT_IDS",
    "UnknownExperimentError",
    "get_module",
    "supports_workers",
    "supports_backend",
    "parallel_experiment_ids",
    "serial_experiment_ids",
]

# Presentation order: figures first, then tables, then extras.
EXPERIMENT_IDS = (
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig9",
    "fig11",
    "fig14",
    "fig15",
    "fig16",
    "table1",
    "table6",
    "table7",
    "ablation",
)

# Serial by design: table1 is constants + a closed-form fit, table7 times
# wall clock (concurrency would corrupt its samples).  Declared statically
# so help generation never has to import the experiment modules;
# tests/test_cli.py asserts this split matches every module's actual
# ``run`` signature, which is what keeps it from drifting.
SERIAL_EXPERIMENT_IDS = ("table1", "table7")


class UnknownExperimentError(KeyError):
    """Raised for ids outside the registry; carries a user-facing message."""

    def __init__(self, experiment_id: str) -> None:
        self.experiment_id = experiment_id
        self.message = (
            f"unknown experiment {experiment_id!r}; valid ids: "
            + ", ".join(EXPERIMENT_IDS)
        )
        super().__init__(self.message)


def get_module(experiment_id: str) -> ModuleType:
    """The experiment module for ``experiment_id``.

    Validates against the registry first, so a typo surfaces as an
    :class:`UnknownExperimentError` naming every valid id rather than a
    raw ``ModuleNotFoundError`` traceback out of ``importlib``.
    """
    if experiment_id not in EXPERIMENT_IDS:
        raise UnknownExperimentError(experiment_id)
    return importlib.import_module(f"repro.experiments.{experiment_id}")


def supports_workers(experiment_id: str) -> bool:
    """Whether the experiment's ``run`` actually accepts ``workers``.

    Introspects the module's ``run`` signature (importing just that
    module), so dispatch follows the code even if the static split ever
    disagreed — and the drift-guard test would fail loudly first.
    """
    return "workers" in inspect.signature(get_module(experiment_id).run).parameters


def supports_backend(experiment_id: str) -> bool:
    """Whether the experiment's ``run`` accepts an execution ``backend``.

    Every experiment with a fan-out grid does (the same set that accepts
    ``workers``); table1/table7 are serial by design and accept neither.
    The shard orchestrator dispatches on this, so an experiment that
    cannot shard fails with a clean registry-level error instead of a
    ``TypeError`` out of its ``run``.
    """
    return "backend" in inspect.signature(get_module(experiment_id).run).parameters


def parallel_experiment_ids() -> tuple[str, ...]:
    """Ids whose ``run`` fans out over ``workers``, in registry order."""
    return tuple(i for i in EXPERIMENT_IDS if i not in SERIAL_EXPERIMENT_IDS)


def serial_experiment_ids() -> tuple[str, ...]:
    """Ids that run on one process by design (timing/constant tables)."""
    return SERIAL_EXPERIMENT_IDS
