"""Plain-text rendering of experiment outputs (the "figures" and "tables").

The harness has no plotting dependency; every figure is reported as the
numeric series the paper plots, every table as an aligned text table —
enough to check shapes (who wins, by what factor, where crossovers are).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "format_table",
    "format_series",
    "format_evaluator_stats",
    "format_gnn_stats",
    "ascii_chart",
    "banner",
]


def banner(title: str) -> str:
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Align columns; floats rendered to 3 decimals."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    grid = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in grid)) if grid else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in grid:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    x: Sequence[object] | None = None,
    x_label: str = "step",
    title: str | None = None,
    every: int = 1,
    chart: bool = True,
) -> str:
    """Render named numeric series side by side (one row per x value),
    followed by an ASCII line chart (the "figure" view)."""
    names = list(series)
    length = max(len(s) for s in series.values())
    xs = list(x) if x is not None else list(range(length))
    rows = []
    for i in range(0, length, every):
        row: list[object] = [xs[i] if i < len(xs) else ""]
        for name in names:
            s = series[name]
            row.append(float(s[i]) if i < len(s) else "")
        rows.append(row)
    # Always include the final point.
    if (length - 1) % every != 0:
        row = [xs[-1] if xs else ""]
        for name in names:
            s = series[name]
            row.append(float(s[-1]))
        rows.append(row)
    text = format_table([x_label, *names], rows, title=title)
    if chart and length >= 2:
        text += "\n\n" + ascii_chart(series, x_label=x_label)
    return text


def format_evaluator_stats(
    stats: Mapping[str, object],
    title: str = "scoring-path statistics (PlacementEvaluator)",
) -> str:
    """Table of per-policy evaluation counters from an evaluation sweep.

    ``stats`` maps policy name to a :class:`repro.runtime.EvaluatorStats`
    (duck-typed: anything with its counter attributes works).  Counters
    only — wall-clock throughput is deliberately excluded so persisted
    reports stay byte-identical across same-seed runs; benchmarks derive
    evaluations/sec from ``EvalResult.search_seconds`` themselves.
    """
    headers = ["policy", "evals", "cache hits", "hit rate", "fast path", "exact path"]
    rows = [
        [
            name,
            int(s.evaluations),
            int(s.cache_hits),
            float(s.hit_rate),
            int(s.fast_path),
            int(s.exact_path),
        ]
        for name, s in stats.items()
    ]
    return format_table(headers, rows, title=title)


def format_gnn_stats(
    stats: Mapping[str, object],
    title: str = "GNN hot-path statistics (embedding passes)",
) -> str:
    """Table of per-policy GNN forward/backward counters.

    ``stats`` maps policy name to a :class:`repro.core.gnn.GnnStats`.
    Counters only — the cumulative ``seconds`` member is wall-clock and
    deliberately excluded so persisted reports stay byte-identical
    across same-seed runs (it still reaches benchmarks through report
    ``data``, where volatile-key stripping handles it).
    """
    headers = ["policy", "gnn forwards", "gnn backwards"]
    rows = [[name, int(s.forwards), int(s.backwards)] for name, s in stats.items()]
    return format_table(headers, rows, title=title)


_MARKS = "*o+x#@%&"


def ascii_chart(
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    x_label: str = "step",
) -> str:
    """Plot the series as an ASCII line chart with a shared y-axis.

    Each series gets a marker character; overlapping points show the
    marker of the later series in iteration order.  Values are scaled to
    the joint [min, max] range, so relative ordering and crossovers — the
    reproducible content of the paper's figures — are visible directly.
    """
    if width < 10 or height < 4:
        raise ValueError("chart needs width >= 10 and height >= 4")
    names = list(series)
    if not names:
        raise ValueError("no series to plot")
    all_values = [float(v) for s in series.values() for v in s if np.isfinite(v)]
    if not all_values:
        raise ValueError("series contain no finite values")
    lo, hi = min(all_values), max(all_values)
    if hi - lo < 1e-12:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    max_len = max(len(s) for s in series.values())
    for k, name in enumerate(names):
        mark = _MARKS[k % len(_MARKS)]
        values = list(series[name])
        for t, value in enumerate(values):
            if not np.isfinite(value):
                continue
            col = int(round(t / max(max_len - 1, 1) * (width - 1)))
            rownum = int(round((hi - float(value)) / (hi - lo) * (height - 1)))
            grid[rownum][col] = mark

    lines = [f"{hi:10.3f} ┤" + "".join(grid[0])]
    for r in range(1, height - 1):
        lines.append(" " * 10 + " │" + "".join(grid[r]))
    lines.append(f"{lo:10.3f} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width + f"> {x_label}")
    legend = "   ".join(
        f"{_MARKS[k % len(_MARKS)]} {name}" for k, name in enumerate(names)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
