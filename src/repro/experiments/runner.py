"""Shared train/evaluate machinery for the experiment modules.

Evaluation follows §5's protocol: all search policies start each test
case from the same random initial placement, run for 2·|V| steps, and
report the best-so-far objective after every step, normalized to SLR
(makespan experiments) via the CP_MIN lower bound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..baselines.base import AdaptivePolicy, SearchPolicy, make_evaluator, trace_from_values
from ..baselines.giph_policy import GiPHSearchPolicy
from ..baselines.heft import heft_placement
from ..baselines.placeto import PlacetoAgent, PlacetoTrainer
from ..baselines.task_eft import TaskEftAgent, TaskEftTrainer
from ..core.agent import GiPHAgent
from ..core.gnn import GnnStats, gnn_stats
from ..core.placement import PlacementProblem, random_placement
from ..core.reinforce import ReinforceConfig, ReinforceTrainer
from ..core.search import SearchTrace
from ..parallel.backends import ExecutionBackend, resolve_backend
from ..parallel.pool import get_context as pool_context
from ..runtime.evaluator import EvaluatorStats, PlacementEvaluator
from ..sim.metrics import cp_min_lower_bound
from ..sim.objectives import MakespanObjective, Objective
from ..telemetry import metrics, span

__all__ = [
    "HeftPolicy",
    "EvalResult",
    "TrainSpec",
    "stage_key",
    "train_giph",
    "train_placeto",
    "train_task_eft",
    "train_policy_grid",
    "evaluate_policies",
    "average_curves",
]


def stage_key(experiment: str, stage: str, seed: int, scale) -> dict:
    """Store key for an experiment's non-fanned stage (see
    :meth:`repro.parallel.ExecutionBackend.compute`).

    Includes the *full* scale parameters, not just the preset name —
    two ad-hoc scales sharing a name must never share memoized stages.
    """
    import dataclasses

    return {
        "experiment": experiment,
        "stage": stage,
        "seed": seed,
        "scale": dataclasses.asdict(scale),
    }


class HeftPolicy(AdaptivePolicy):
    """HEFT wrapped as a (static) search policy: its placement is
    computed once and reported as a constant best-so-far curve."""

    name = "heft"

    def search(
        self,
        problem: PlacementProblem,
        objective: Objective,
        initial_placement: Sequence[int],
        episode_length: int,
        rng: np.random.Generator,
        evaluator: PlacementEvaluator | None = None,
    ) -> SearchTrace:
        evaluator = make_evaluator(problem, objective, evaluator)
        placement = heft_placement(problem).placement
        value = evaluator.evaluate(placement)
        return trace_from_values(
            [placement] * (episode_length + 1),
            [value] * (episode_length + 1),
            problem.graph.num_tasks,
        )


def train_giph(
    problems: Sequence[PlacementProblem],
    rng: np.random.Generator,
    episodes: int,
    objective: Objective | None = None,
    embedding: str = "giph",
    feature_config=None,
) -> GiPHAgent:
    """Train a GiPH agent (any GNN variant) on ``problems``."""
    agent = GiPHAgent(rng, embedding=embedding)
    config = ReinforceConfig(episodes=episodes)
    if feature_config is not None:
        config = ReinforceConfig(episodes=episodes, feature_config=feature_config)
    trainer = ReinforceTrainer(agent, objective or MakespanObjective(), config)
    trainer.train(problems, rng, episodes=episodes)
    return agent


def train_placeto(
    problems: Sequence[PlacementProblem],
    rng: np.random.Generator,
    episodes: int,
    objective: Objective | None = None,
) -> PlacetoAgent:
    """Train a Placeto agent; requires all problems share a device count."""
    counts = {p.network.num_devices for p in problems}
    if len(counts) != 1:
        raise ValueError(
            f"Placeto requires a fixed device count, got {sorted(counts)} — "
            "this is precisely the limitation GiPH lifts"
        )
    agent = PlacetoAgent(rng, num_devices=counts.pop())
    PlacetoTrainer(agent, objective or MakespanObjective()).train(problems, rng, episodes)
    return agent


def train_task_eft(
    problems: Sequence[PlacementProblem],
    rng: np.random.Generator,
    episodes: int,
    objective: Objective | None = None,
) -> TaskEftAgent:
    """Train the GiPH-task-EFT ablation agent."""
    agent = TaskEftAgent(rng)
    TaskEftTrainer(agent, objective or MakespanObjective()).train(problems, rng, episodes)
    return agent


@dataclass(frozen=True)
class TrainSpec:
    """One independently trainable cell of an experiment's policy grid.

    ``stream`` is the cell's full seed-derivation key (fed to
    ``default_rng(list(stream))``), so the cell's randomness is a pure
    function of its identity — never of which other cells train, in what
    order, or on which worker.  ``problems_key`` indexes the problem set
    the cell trains on (experiments with several datasets broadcast them
    all once and point each cell at one).
    """

    name: str
    kind: str  # "giph" | "task-eft" | "placeto"
    stream: tuple[int, ...]
    episodes: int
    problems_key: int = 0
    embedding: str = "giph"
    objective: Objective | None = None


@dataclass(frozen=True)
class _TrainGridContext:
    """Broadcast payload for the per-cell training workers."""

    problem_sets: tuple
    specs: tuple


def _train_grid_cell(index: int) -> SearchPolicy:
    """Train one :class:`TrainSpec` cell from its own derived stream."""
    ctx: _TrainGridContext = pool_context()
    spec: TrainSpec = ctx.specs[index]
    problems = ctx.problem_sets[spec.problems_key]
    rng = np.random.default_rng(list(spec.stream))
    with span("train.cell"):
        if spec.kind == "giph":
            agent = train_giph(
                problems, rng, spec.episodes,
                objective=spec.objective, embedding=spec.embedding,
            )
            return GiPHSearchPolicy(agent, name=spec.name)
        if spec.kind == "task-eft":
            return train_task_eft(problems, rng, spec.episodes, objective=spec.objective)
        if spec.kind == "placeto":
            return train_placeto(problems, rng, spec.episodes, objective=spec.objective)
        raise ValueError(f"unknown TrainSpec kind {spec.kind!r}")


def train_policy_grid(
    problem_sets: Sequence[Sequence[PlacementProblem]],
    specs: Sequence[TrainSpec],
    workers: int = 1,
    backend: ExecutionBackend | None = None,
) -> dict[str, SearchPolicy]:
    """Train every :class:`TrainSpec` cell, fanned out over ``backend``
    (default: inline/fork sized by ``workers``).

    Returns ``{spec.name: trained policy}`` in spec order.  Each cell
    draws exclusively from its own ``spec.stream``, so the mapping is
    bit-identical for any worker count and any backend (the tentpole
    contract of :mod:`repro.parallel`).
    """
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError("TrainSpec names must be unique within a grid")
    context = _TrainGridContext(
        problem_sets=tuple(list(p) for p in problem_sets), specs=tuple(specs)
    )
    backend = resolve_backend(backend, workers)
    with span("train.grid"):
        policies = backend.fanout(_train_grid_cell, range(len(specs)), context)
    return dict(zip(names, policies))


@dataclass(frozen=True)
class EvalResult:
    """Evaluation sweep output.

    ``curves[name][t]`` — mean normalized best-so-far value after t steps
    (t=0 is the shared initial placement); ``finals[name]`` — per-case
    final normalized values; ``traces[name]`` — raw per-case traces.
    ``evaluator_stats[name]`` / ``search_seconds[name]`` — scoring-path
    counters and wall time aggregated over the sweep's cases (see
    :func:`repro.experiments.reporting.format_evaluator_stats`).
    ``gnn_stats[name]`` — GNN forward/backward counters (deterministic)
    plus cumulative forward seconds (wall-clock, volatile) attributed to
    each policy's searches.
    """

    curves: dict[str, np.ndarray]
    finals: dict[str, list[float]]
    traces: dict[str, list[SearchTrace]]
    evaluator_stats: dict[str, EvaluatorStats] = field(default_factory=dict)
    search_seconds: dict[str, float] = field(default_factory=dict)
    gnn_stats: dict[str, GnnStats] = field(default_factory=dict)

    def mean_final(self, name: str) -> float:
        return float(np.mean(self.finals[name]))


def average_curves(curves: list[np.ndarray]) -> np.ndarray:
    """Average best-so-far curves of different lengths by extending each
    with its final value (a case that converged early stays converged)."""
    if not curves:
        raise ValueError("no curves to average")
    length = max(len(c) for c in curves)
    padded = [
        np.concatenate([c, np.full(length - len(c), c[-1])]) if len(c) < length else np.asarray(c)
        for c in curves
    ]
    return np.mean(padded, axis=0)


@dataclass(frozen=True)
class _EvalContext:
    """Broadcast payload for the per-case evaluation workers."""

    policies: dict[str, SearchPolicy]
    problems: list[PlacementProblem]
    case_seeds: list[int]
    noise: float
    episode_multiplier: int
    normalize_slr: bool
    objective: Objective | None


def _evaluate_case(case_index: int) -> dict[str, tuple]:
    """One test case: every policy searched from a shared initial placement.

    Fully determined by ``case_seeds[case_index]`` (each policy reseeds
    from the case's derived streams), so cases may run on any worker in
    any order without changing the sweep's result.
    """
    ctx: _EvalContext = pool_context()
    problem = ctx.problems[case_index]
    case_rng = np.random.default_rng(ctx.case_seeds[case_index])
    initial = random_placement(problem, case_rng)
    steps = ctx.episode_multiplier * problem.graph.num_tasks
    denom = cp_min_lower_bound(problem.cost_model) if ctx.normalize_slr else 1.0
    out: dict[str, tuple] = {}
    with span("eval.case"):
        for name, policy in ctx.policies.items():
            if ctx.objective is not None:
                case_objective: Objective = ctx.objective
            elif ctx.noise > 0.0:
                case_objective = MakespanObjective(
                    noise=ctx.noise, rng=np.random.default_rng(case_rng.integers(0, 2**63))
                )
            else:
                case_objective = MakespanObjective()
            evaluator = PlacementEvaluator(problem, case_objective)
            gnn_before = gnn_stats()
            began = time.perf_counter()
            trace = policy.search(
                problem,
                case_objective,
                initial,
                steps,
                np.random.default_rng(case_rng.integers(0, 2**63)),
                evaluator=evaluator,
            )
            elapsed = time.perf_counter() - began
            out[name] = (
                np.asarray(trace.best_over_time) / denom,
                trace.best_value / denom,
                trace,
                evaluator.stats,
                elapsed,
                # Delta of the process-global GNN counters over this search:
                # the search runs single-threaded inside this task, so the
                # delta is exactly the policy's own embedding work.
                gnn_stats().delta(gnn_before),
            )
    return out


def evaluate_policies(
    policies: Mapping[str, SearchPolicy],
    problems: Sequence[PlacementProblem],
    rng: np.random.Generator,
    noise: float = 0.0,
    episode_multiplier: int = 2,
    normalize_slr: bool = True,
    objective: Objective | None = None,
    workers: int = 1,
    backend: ExecutionBackend | None = None,
) -> EvalResult:
    """Run every policy on every test case from a shared initial placement.

    With ``normalize_slr`` (makespan experiments) values are divided by
    the CP_MIN lower bound; otherwise raw objective values are reported
    (cost/energy experiments pass their own ``objective``).

    The test cases fan out through ``backend`` (default: inline/fork
    sized by ``workers``).  Case seeds are drawn from ``rng`` up front
    in case order (the same draws the serial loop makes), every per-case
    search reseeds from those, and results are merged in case order — so
    curves, finals, and traces are bit-identical for any worker count
    and any backend.  Only ``search_seconds`` is wall-clock and
    therefore run-dependent.
    """
    if objective is not None and not getattr(objective, "deterministic", False):
        # Rejected at any worker count: cases run against pickled copies
        # of the objective (worker-count independence), so a shared noise
        # rng would be frozen per call / sampled in worker-dependent
        # order instead of advancing across cases.
        raise ValueError(
            "evaluate_policies cannot share one non-deterministic objective "
            "across cases; use the per-case `noise` parameter, which derives "
            "an independent noise stream per (case, policy)"
        )
    curves: dict[str, list[np.ndarray]] = {name: [] for name in policies}
    finals: dict[str, list[float]] = {name: [] for name in policies}
    traces: dict[str, list[SearchTrace]] = {name: [] for name in policies}
    stats: dict[str, EvaluatorStats] = {name: EvaluatorStats() for name in policies}
    seconds: dict[str, float] = {name: 0.0 for name in policies}
    gnn: dict[str, GnnStats] = {name: GnnStats() for name in policies}

    context = _EvalContext(
        policies=dict(policies),
        problems=list(problems),
        case_seeds=[int(rng.integers(0, 2**63)) for _ in range(len(problems))],
        noise=noise,
        episode_multiplier=episode_multiplier,
        normalize_slr=normalize_slr,
        objective=objective,
    )
    with span("eval.sweep"):
        case_results = resolve_backend(backend, workers).fanout(
            _evaluate_case, range(len(problems)), context
        )

    for case_out in case_results:
        for name, (curve, final, trace, case_stats, elapsed, case_gnn) in case_out.items():
            curves[name].append(curve)
            finals[name].append(final)
            traces[name].append(trace)
            stats[name].merge(case_stats)
            seconds[name] += elapsed
            gnn[name].merge(case_gnn)

    # Instance-scoped evaluator counters roll up into the process
    # registry here, at the merge point (gnn counters are registry-backed
    # and shipped with task deltas already — absorbing them again would
    # double-count).
    sweep_total = EvaluatorStats()
    for merged in stats.values():
        sweep_total.merge(merged)
    metrics().absorb("evaluator", sweep_total.as_dict(), skip=("hit_rate",))

    return EvalResult(
        curves={name: average_curves(cs) for name, cs in curves.items()},
        finals=finals,
        traces=traces,
        evaluator_stats=stats,
        search_seconds=seconds,
        gnn_stats=gnn,
    )
