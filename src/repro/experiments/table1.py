"""Tables 1-2: case-study measurements and the fitted latency model.

Table 1 and Table 2 are measured inputs in the paper; this module
reproduces them as the constants the case study consumes and reports the
quality of the C_i·T_j + S_j latency fit built on Table 1 (§B.4).

Deliberately rng-free and serial: the tables are constants and the fit
is a closed-form least squares, so there is no stream to derive and no
grid to fan out (``seed`` is accepted for harness uniformity only).
"""

from __future__ import annotations

import numpy as np

from ..casestudy.devicemodel import fit_latency_model
from ..casestudy.measurements import (
    DEVICE_TYPES,
    TABLE1_MEAN_MS,
    TABLE1_STD_MS,
    TABLE2_RELOCATION,
    TASK_KINDS,
)
from .base import ExperimentReport
from .config import Scale
from .reporting import banner, format_table

__all__ = ["run"]


def run(scale: Scale, seed: int = 0) -> ExperimentReport:
    fit = fit_latency_model()

    t1_rows = [
        [
            kind,
            *(
                f"{TABLE1_MEAN_MS[kind][t]:.0f}±{TABLE1_STD_MS[kind][t]:.0f}"
                for t in DEVICE_TYPES
            ),
        ]
        for kind in TASK_KINDS
    ]
    fit_rows = [
        [kind, *(f"{fit.predicted_ms(kind, t):.1f}" for t in DEVICE_TYPES)]
        for kind in TASK_KINDS
    ]
    t2_rows = [
        [
            kind,
            f"{p.migration_bytes:.0f}",
            f"{p.static_init_kbytes:.3f}",
            f"{p.startup_ms('A'):.2f}",
            f"{p.startup_ms('C'):.2f}",
        ]
        for kind, p in TABLE2_RELOCATION.items()
    ]

    text = "\n".join(
        [
            banner("Table 1: task running times by device type (ms, mean±std)"),
            format_table(["task", *DEVICE_TYPES], t1_rows),
            banner("Fitted latency model C_i·T_j + S_j (predicted means, ms)"),
            format_table(["task", *DEVICE_TYPES], fit_rows),
            f"relative RMS fit error: {fit.relative_rms_error():.3f}",
            banner("Table 2: relocation overhead per task"),
            format_table(
                ["task", "migration (B)", "static init (KB)", "startup A (ms)", "startup C (ms)"],
                t2_rows,
            ),
        ]
    )
    return ExperimentReport(
        experiment_id="table1",
        title="Case-study measurements and latency fit",
        text=text,
        data={
            "fit_rms": fit.relative_rms_error(),
            "unit_time": fit.unit_time,
            "startup": fit.startup,
        },
    )
