"""Table 6: pairwise placement-quality comparison of GiPH variants + HEFT.

For every test case and every ordered pair of methods, count whether the
row method's final SLR is better than / equal to / worse than the column
method's.  Expected shape: GiPH's "better" share dominates every
variant, and it trades roughly evenly with HEFT.

Seed-stream layout: stage 0 — dataset, stage 1 — one stream per GNN
variant's training cell (the repo's widest single-dataset training grid,
fanned over ``workers``), stage 2 — evaluation (fanned per case).
"""

from __future__ import annotations

import numpy as np

from ..parallel.backends import ExecutionBackend
from .base import ExperimentReport
from .config import Scale
from .datasets import multi_network_dataset
from .reporting import banner, format_table
from .runner import HeftPolicy, TrainSpec, evaluate_policies, train_policy_grid

__all__ = ["run", "pairwise_matrix"]

METHODS = ("giph", "giph-3", "giph-5", "giph-ne", "giph-ne-pol", "giph-task-eft", "heft")

_EQ_TOL = 1e-9


def pairwise_matrix(finals: dict[str, list[float]]) -> dict[tuple[str, str], tuple[float, float, float]]:
    """(row, col) -> (better%, equal%, worse%) of row vs col."""
    out = {}
    names = list(finals)
    n = len(next(iter(finals.values())))
    for a in names:
        for b in names:
            if a == b:
                continue
            better = equal = worse = 0
            for va, vb in zip(finals[a], finals[b]):
                if abs(va - vb) <= _EQ_TOL:
                    equal += 1
                elif va < vb:
                    better += 1
                else:
                    worse += 1
            out[(a, b)] = (100.0 * better / n, 100.0 * equal / n, 100.0 * worse / n)
    return out


def run(
    scale: Scale,
    seed: int = 0,
    workers: int = 1,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    dataset = multi_network_dataset(scale, np.random.default_rng([seed, 0]))
    test = dataset.test[: scale.pairwise_cases]

    embeddings = ("giph", "giph-3", "giph-5", "giph-ne", "giph-ne-pol")
    specs = [
        TrainSpec(name, "giph", (seed, 1, i), scale.episodes, embedding=name)
        for i, name in enumerate(embeddings)
    ]
    specs.append(
        TrainSpec(
            "giph-task-eft", "task-eft", (seed, 1, len(embeddings)), scale.episodes
        )
    )
    policies = dict(
        train_policy_grid([dataset.train], specs, workers=workers, backend=backend)
    )
    policies["heft"] = HeftPolicy()
    result = evaluate_policies(
        policies, test, np.random.default_rng([seed, 2]), workers=workers, backend=backend
    )
    matrix = pairwise_matrix(result.finals)

    rows = []
    for a in METHODS:
        for label, pick in (("better", 0), ("equal", 1), ("worse", 2)):
            row: list[object] = [a if pick == 0 else "", label]
            for b in METHODS:
                row.append("" if a == b else f"{matrix[(a, b)][pick]:.1f}%")
            rows.append(row)

    text = "\n".join(
        [
            banner(f"Table 6: pairwise SLR comparison over {len(test)} test cases"),
            format_table(["method", "", *METHODS], rows),
        ]
    )
    return ExperimentReport(
        experiment_id="table6",
        title="Pairwise placement quality comparison",
        text=text,
        data={
            "matrix": {f"{a}|{b}": v for (a, b), v in matrix.items()},
            "mean_final": {k: result.mean_final(k) for k in policies},
        },
    )
