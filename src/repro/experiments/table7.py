"""Table 7 / Figure 17: policy running and training time per sample.

Measures, per GNN variant, the wall-clock time of (a) one inference-mode
placement step (gpNet build + embedding + policy) and (b) one training
step amortized from a full episode, across graph sizes.  Expected shape
(paper): GiPH's full-depth message passing grows with graph size; the
k-step variants cap it; GiPH-NE-Pol (no GNN) is cheapest.

Streams derive per stage — problems from ``[seed, 0, slot]``, each
(variant, problem) measurement from ``[seed, 1, variant, slot]`` — but
this module intentionally takes no ``workers``: it *is* a wall-clock
measurement, and timing samples taken on processes contending for the
same cores would measure the scheduler, not the policies.
"""

from __future__ import annotations

import time

import numpy as np

from ..baselines.placeto import PlacetoAgent, PlacetoTrainer
from ..core.agent import GiPHAgent
from ..core.env import PlacementEnv
from ..core.placement import PlacementProblem, random_placement
from ..core.reinforce import ReinforceConfig, ReinforceTrainer
from ..devices.generator import DeviceNetworkParams, generate_device_network
from ..graphs.generator import TaskGraphParams, generate_task_graph
from ..sim.objectives import MakespanObjective
from .base import ExperimentReport
from .config import Scale
from .reporting import banner, format_table

__all__ = ["run", "VARIANTS"]

VARIANTS = ("giph", "giph-3", "giph-5", "giph-ne", "giph-ne-pol", "graphsage-ne")


def _problem(num_tasks: int, scale: Scale, rng: np.random.Generator) -> PlacementProblem:
    graph = generate_task_graph(TaskGraphParams(num_tasks=num_tasks, constraint_prob=0.0), rng)
    network = generate_device_network(
        DeviceNetworkParams(num_devices=scale.num_devices), rng
    )
    return PlacementProblem(graph, network)


def _time_variant(variant: str, problem: PlacementProblem, repeats: int, rng) -> tuple[float, float]:
    """(inference seconds/sample, training seconds/sample)."""
    objective = MakespanObjective()
    if variant == "placeto":
        agent = PlacetoAgent(rng, num_devices=problem.network.num_devices)
        placed = np.zeros(problem.graph.num_tasks, dtype=bool)
        placement = list(random_placement(problem, rng))
        t0 = time.perf_counter()
        for _ in range(repeats):
            for node in problem.graph.topo_order:
                from repro.nn import no_grad

                with no_grad():
                    agent.choose_device(problem, placement, node, placed)
        infer = (time.perf_counter() - t0) / (repeats * problem.graph.num_tasks)
        trainer = PlacetoTrainer(agent, objective)
        t0 = time.perf_counter()
        for _ in range(repeats):
            trainer.run_episode(problem, rng)
        train = (time.perf_counter() - t0) / (repeats * problem.graph.num_tasks)
        return infer, train

    agent = GiPHAgent(rng, embedding=variant)
    env = PlacementEnv(problem, objective)
    state = env.reset(rng=rng)
    steps = 2 * problem.graph.num_tasks
    t0 = time.perf_counter()
    for _ in range(repeats):
        s = env.reset(rng=rng)
        for _ in range(steps):
            action = agent.act_inference(env, s)
            s, _, _ = env.step(action)
    infer = (time.perf_counter() - t0) / (repeats * steps)

    trainer = ReinforceTrainer(agent, objective, ReinforceConfig())
    t0 = time.perf_counter()
    for _ in range(repeats):
        trainer.run_episode(problem, rng)
    train = (time.perf_counter() - t0) / (repeats * steps)
    return infer, train


def run(scale: Scale, seed: int = 0) -> ExperimentReport:
    variants = [*VARIANTS, "placeto"]

    table7_rows = []
    fig17: dict[str, dict[str, list[float]]] = {"infer": {}, "train": {}}
    # Slot 0 is the headline table's problem; slots 1.. the fig17 sizes.
    base_problem = _problem(scale.num_tasks, scale, np.random.default_rng([seed, 0, 0]))
    for variant_index, variant in enumerate(variants):
        infer, train = _time_variant(
            variant, base_problem, scale.timing_repeats,
            np.random.default_rng([seed, 1, variant_index, 0]),
        )
        table7_rows.append([variant, train, infer])

    size_rows = []
    for variant in variants:
        fig17["infer"][variant] = []
        fig17["train"][variant] = []
    for size_index, size in enumerate(scale.timing_graph_sizes):
        problem = _problem(size, scale, np.random.default_rng([seed, 0, 1 + size_index]))
        row: list[object] = [size]
        for variant_index, variant in enumerate(variants):
            infer, train = _time_variant(
                variant, problem, max(1, scale.timing_repeats // 2),
                np.random.default_rng([seed, 1, variant_index, 1 + size_index]),
            )
            fig17["infer"][variant].append(infer)
            fig17["train"][variant].append(train)
            row.append(infer)
        size_rows.append(row)

    text = "\n".join(
        [
            banner("Table 7: policy running time per placement sample (seconds)"),
            format_table(
                ["variant", "training s/sample", "running s/sample"],
                [[v, f"{tr:.4f}", f"{inf:.4f}"] for v, tr, inf in table7_rows],
            ),
            banner("Fig. 17: running time per sample vs graph size (seconds)"),
            format_table(
                ["graph size", *variants],
                [[r[0], *(f"{x:.4f}" for x in r[1:])] for r in size_rows],
            ),
        ]
    )
    return ExperimentReport(
        experiment_id="table7",
        title="Policy running/training time per placement sample",
        text=text,
        data={
            "table7": {v: {"train": tr, "infer": inf} for v, tr, inf in table7_rows},
            "fig17": fig17,
            "sizes": list(scale.timing_graph_sizes),
        },
    )
