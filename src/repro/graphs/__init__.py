"""Task-graph substrate: DAG structure, random generator, DL graphs, grouping."""

from .enas import CellDesign, generate_enas_dataset, sample_cell_design, unroll_cell
from .generator import TaskGraphParams, generate_task_graph, generate_task_graphs
from .grouping import GroupedGraph, group_operators
from .task_graph import TaskGraph

__all__ = [
    "TaskGraph",
    "TaskGraphParams",
    "generate_task_graph",
    "generate_task_graphs",
    "CellDesign",
    "sample_cell_design",
    "unroll_cell",
    "generate_enas_dataset",
    "GroupedGraph",
    "group_operators",
]
