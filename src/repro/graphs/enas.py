"""ENAS-style deep-learning computation graphs (paper §5.2, Appendix B.3).

The paper evaluates on computation graphs of recurrent cells found by
ENAS on Penn Treebank: 10 sampled cell designs × 30 (unroll steps,
batch size) variants = 300 graphs of 200-300 operators.  ENAS itself is
not available offline, so this module generates cells from the same
search space (per-node {activation, predecessor} choices, Fig. 13) and
unrolls them with realistic relative costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .task_graph import TaskGraph

__all__ = ["CellDesign", "sample_cell_design", "unroll_cell", "generate_enas_dataset"]

_ACTIVATIONS = ("tanh", "relu", "sigmoid", "identity")

# Relative compute weight of a cell node: the matmul dominates; the
# activation adds a small overhead except identity.
_ACT_COST = {"tanh": 1.1, "relu": 1.05, "sigmoid": 1.1, "identity": 1.0}


@dataclass(frozen=True)
class CellDesign:
    """A recurrent cell from the ENAS search space.

    ``predecessors[i]`` is the cell-local input of node ``i`` (node 0 reads
    the step input x_t combined with the recurrent state h_{t-1});
    ``activations[i]`` its nonlinearity.  Loose ends (nodes that feed no
    other node) are averaged to form the cell output, as in ENAS.
    """

    predecessors: tuple[int, ...]
    activations: tuple[str, ...]
    name: str = "enas-cell"

    def __post_init__(self) -> None:
        if len(self.predecessors) != len(self.activations):
            raise ValueError("predecessors and activations must have equal length")
        if len(self.predecessors) < 1:
            raise ValueError("cell needs at least one node")
        if self.predecessors[0] != -1:
            raise ValueError("node 0 must read the step input (predecessor -1)")
        for i, p in enumerate(self.predecessors[1:], start=1):
            if not 0 <= p < i:
                raise ValueError(f"node {i} must read an earlier node, got {p}")
        for act in self.activations:
            if act not in _ACTIVATIONS:
                raise ValueError(f"unknown activation {act!r}")

    @property
    def num_nodes(self) -> int:
        return len(self.predecessors)

    def loose_ends(self) -> tuple[int, ...]:
        used = set(self.predecessors[1:])
        return tuple(i for i in range(self.num_nodes) if i not in used)


def sample_cell_design(
    rng: np.random.Generator, num_nodes: int | None = None, name: str = "enas-cell"
) -> CellDesign:
    """Sample a cell uniformly from the ENAS recurrent search space."""
    if num_nodes is None:
        num_nodes = int(rng.integers(8, 13))  # ENAS PTB cells use ~12 nodes
    preds = [-1]
    acts = [str(rng.choice(_ACTIVATIONS))]
    for i in range(1, num_nodes):
        preds.append(int(rng.integers(0, i)))
        acts.append(str(rng.choice(_ACTIVATIONS)))
    return CellDesign(tuple(preds), tuple(acts), name)


def unroll_cell(
    design: CellDesign,
    steps: int,
    batch_size: int,
    hidden_size: int = 64,
    name: str | None = None,
) -> TaskGraph:
    """Unroll a recurrent cell into a computation DAG over ``steps`` steps.

    Operators per step: one input-prep op (embedding lookup + concat with
    h_{t-1}), one op per cell node, and one output-averaging op whose
    result is the recurrent state consumed by step t+1.  A final
    projection op closes the graph, so the DAG is single-exit; the step-0
    input op is its single entry (subsequent input ops hang off a chain
    of zero-data ordering edges, matching how the embedded sequence is
    produced sequentially).
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if batch_size < 1 or hidden_size < 1:
        raise ValueError("batch and hidden sizes must be positive")

    # Cost scales: one cell node is roughly a (batch x hidden) @ (hidden x
    # hidden) matmul; data on an edge is a (batch x hidden) activation.
    node_cost = batch_size * hidden_size / 64.0
    edge_data = float(batch_size * hidden_size)

    compute: list[float] = []
    edges: dict[tuple[int, int], float] = {}

    def add_op(cost: float) -> int:
        compute.append(cost)
        return len(compute) - 1

    prev_state: int | None = None  # op producing h_{t-1}
    prev_input: int | None = None  # previous step's input op (ordering chain)
    for _ in range(steps):
        inp = add_op(0.5 * node_cost)  # embedding + concat
        if prev_input is not None:
            edges[(prev_input, inp)] = 0.0  # sequence ordering, no payload
        if prev_state is not None:
            edges[(prev_state, inp)] = edge_data
        prev_input = inp

        node_ops: list[int] = []
        for local, (pred, act) in enumerate(zip(design.predecessors, design.activations)):
            op = add_op(_ACT_COST[act] * node_cost)
            src = inp if pred == -1 else node_ops[pred]
            edges[(src, op)] = edge_data
            node_ops.append(op)

        avg = add_op(0.2 * node_cost * len(design.loose_ends()))
        for le in design.loose_ends():
            edges[(node_ops[le], avg)] = edge_data
        prev_state = avg

    # Final projection / loss over the last hidden state.
    out = add_op(2.0 * node_cost)
    edges[(prev_state, out)] = edge_data

    return TaskGraph(
        compute=tuple(compute),
        edges=edges,
        name=name or f"{design.name}-T{steps}-B{batch_size}",
    )


def generate_enas_dataset(
    rng: np.random.Generator,
    num_designs: int = 10,
    variants_per_design: int = 30,
    steps_range: tuple[int, int] = (20, 30),
    batch_range: tuple[int, int] = (80, 150),
) -> list[TaskGraph]:
    """The §B.3 dataset: designs × (unroll steps, batch size) variants."""
    graphs: list[TaskGraph] = []
    for d in range(num_designs):
        design = sample_cell_design(rng, name=f"enas-cell-{d}")
        for v in range(variants_per_design):
            steps = int(rng.integers(steps_range[0], steps_range[1] + 1))
            batch = int(rng.integers(batch_range[0], batch_range[1] + 1))
            graphs.append(
                unroll_cell(design, steps, batch, name=f"enas-{d}-{v}-T{steps}-B{batch}")
            )
    return graphs
