"""Parametric random task-graph generator (paper Appendix B.2).

Follows the method of Topcuoglu et al. (2002): the DAG depth is sampled
around ``sqrt(M)/alpha``, per-level widths around ``alpha*sqrt(M)``, and
edges run from higher (shallower) levels to lower levels with probability
``p_c``.  Graphs are single-entry / single-exit by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .task_graph import TaskGraph

__all__ = ["TaskGraphParams", "generate_task_graph", "generate_task_graphs"]


@dataclass(frozen=True)
class TaskGraphParams:
    """Input parameters of the task-graph generator (§B.2 symbols).

    Attributes
    ----------
    num_tasks: M, number of tasks in the graph.
    shape: α, controls depth (≈√M/α) vs. width (≈α·√M).
    connect_prob: p_c, probability of an edge between nodes in
        consecutive-or-later levels.
    mean_compute: C̄, average task compute requirement.
    mean_data: B̄, average bytes per data link.
    het_compute: ε_C, compute heterogeneity (uniform ±ε_C·C̄).
    het_data: ε_B, data heterogeneity (uniform ±ε_B·B̄).
    num_hardware_types: number of distinct hardware requirements; type 0
        means "runs anywhere".
    constraint_prob: probability a task gets a non-trivial hardware
        requirement (drives the average number of feasible devices).
    """

    num_tasks: int = 20
    shape: float = 1.0
    connect_prob: float = 0.3
    mean_compute: float = 100.0
    mean_data: float = 100.0
    het_compute: float = 0.5
    het_data: float = 0.5
    num_hardware_types: int = 3
    constraint_prob: float = 0.25

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError("num_tasks must be >= 1")
        if self.shape <= 0:
            raise ValueError("shape must be positive")
        if not 0.0 <= self.connect_prob <= 1.0:
            raise ValueError("connect_prob must be in [0, 1]")
        if not 0.0 <= self.het_compute <= 1.0 or not 0.0 <= self.het_data <= 1.0:
            raise ValueError("heterogeneity factors must be in [0, 1]")
        if self.num_hardware_types < 1:
            raise ValueError("need at least hardware type 0")
        if not 0.0 <= self.constraint_prob <= 1.0:
            raise ValueError("constraint_prob must be in [0, 1]")


def _sample_levels(params: TaskGraphParams, rng: np.random.Generator) -> list[int]:
    """Split M tasks into levels; first and last levels have width 1."""
    m = params.num_tasks
    if m <= 2:
        return [1] * m
    mean_depth = np.sqrt(m) / params.shape
    depth = int(np.clip(round(rng.uniform(0.5 * mean_depth, 1.5 * mean_depth)), 2, m))
    interior = m - 2  # entry and exit take one task each
    num_interior_levels = max(depth - 2, 0)
    if num_interior_levels == 0 or interior == 0:
        widths = [1] + [1] * interior + [1]
        return widths[: 2 + interior] if interior else [1, 1]
    mean_width = params.shape * np.sqrt(m)
    raw = rng.uniform(0.5 * mean_width, 1.5 * mean_width, size=num_interior_levels)
    raw = np.maximum(raw, 1.0)
    # Scale to exactly `interior` tasks, then fix rounding drift.
    widths = np.maximum(np.round(raw * interior / raw.sum()).astype(int), 1)
    while widths.sum() > interior:
        widths[int(np.argmax(widths))] -= 1
        widths = np.maximum(widths, 1)
        if widths.sum() <= interior and (widths == 1).all():
            break
    while widths.sum() < interior:
        widths[int(np.argmin(widths))] += 1
    return [1] + list(widths) + [1]


def generate_task_graph(
    params: TaskGraphParams, rng: np.random.Generator, name: str | None = None
) -> TaskGraph:
    """Sample one random task graph.

    Connectivity guarantees: every non-entry task has at least one parent
    in an earlier level and every non-exit task at least one child in a
    later level, so the graph is single-entry/single-exit and connected.
    """
    widths = _sample_levels(params, rng)
    levels: list[list[int]] = []
    next_id = 0
    for w in widths:
        levels.append(list(range(next_id, next_id + w)))
        next_id += w
    n = next_id

    lo_c = params.mean_compute * (1 - params.het_compute)
    hi_c = params.mean_compute * (1 + params.het_compute)
    compute = rng.uniform(lo_c, hi_c, size=n)

    lo_b = params.mean_data * (1 - params.het_data)
    hi_b = params.mean_data * (1 + params.het_data)

    edges: dict[tuple[int, int], float] = {}

    def add_edge(u: int, v: int) -> None:
        if (u, v) not in edges:
            edges[(u, v)] = float(rng.uniform(lo_b, hi_b))

    # Random cross-level edges with probability p_c.
    for li, upper in enumerate(levels[:-1]):
        for lower in levels[li + 1 :]:
            for u in upper:
                for v in lower:
                    if rng.random() < params.connect_prob:
                        add_edge(u, v)

    # Guarantee a parent in an earlier level for every non-entry task …
    for li in range(1, len(levels)):
        earlier = [u for lvl in levels[:li] for u in lvl]
        for v in levels[li]:
            if not any((u, v) in edges for u in earlier):
                add_edge(int(rng.choice(earlier)), v)
    # … and a child in a later level for every non-exit task.
    for li in range(len(levels) - 1):
        later = [v for lvl in levels[li + 1 :] for v in lvl]
        for u in levels[li]:
            if not any((u, v) in edges for v in later):
                add_edge(u, int(rng.choice(later)))

    # Placement constraints: hardware requirement per task (0 = any).
    requirements = np.zeros(n, dtype=int)
    if params.num_hardware_types > 1:
        constrained = rng.random(n) < params.constraint_prob
        requirements[constrained] = rng.integers(
            1, params.num_hardware_types, size=int(constrained.sum())
        )

    return TaskGraph(
        compute=tuple(compute),
        edges=edges,
        requirements=tuple(int(r) for r in requirements),
        name=name or f"random-dag-{n}",
    )


def generate_task_graphs(
    params: TaskGraphParams, count: int, rng: np.random.Generator
) -> list[TaskGraph]:
    """Sample ``count`` i.i.d. task graphs."""
    return [generate_task_graph(params, rng, name=f"random-dag-{i}") for i in range(count)]
