"""Operator grouping for large DL graphs (paper §5.2).

"The grouping is done by iteratively merging the operator with in-degree
one and lowest cost into its sole predecessor until the graph size is
reduced to 40 nodes."  Operators in a group are placed on the same
device, shrinking the placement problem.
"""

from __future__ import annotations

from dataclasses import dataclass

from .task_graph import TaskGraph

__all__ = ["GroupedGraph", "group_operators"]


@dataclass(frozen=True)
class GroupedGraph:
    """A grouped task graph plus the group -> original-operator mapping."""

    graph: TaskGraph
    groups: tuple[tuple[int, ...], ...]  # groups[i] = original op ids in group i

    def group_of(self, op: int) -> int:
        for gid, members in enumerate(self.groups):
            if op in members:
                return gid
        raise KeyError(f"operator {op} not found in any group")


def _compatible(req_a: int, req_b: int) -> bool:
    """Two ops can share a group if their hardware requirements agree."""
    return req_a == 0 or req_b == 0 or req_a == req_b


def group_operators(graph: TaskGraph, target_size: int = 40) -> GroupedGraph:
    """Merge in-degree-1 lowest-cost operators into their predecessors.

    Stops when the graph has at most ``target_size`` groups or no merge
    candidate remains (a candidate must have exactly one parent and a
    hardware requirement compatible with it).
    """
    if target_size < 1:
        raise ValueError("target_size must be >= 1")

    # Mutable working copies, keyed by current group id (original op id of
    # the group's representative).
    compute = {i: graph.compute[i] for i in range(graph.num_tasks)}
    reqs = {i: graph.requirements[i] for i in range(graph.num_tasks)}
    members: dict[int, list[int]] = {i: [i] for i in range(graph.num_tasks)}
    parents: dict[int, set[int]] = {i: set(graph.parents[i]) for i in range(graph.num_tasks)}
    children: dict[int, set[int]] = {i: set(graph.children[i]) for i in range(graph.num_tasks)}
    data = dict(graph.edges)

    def merge(node: int, into: int) -> None:
        compute[into] += compute[node]
        if reqs[into] == 0:
            reqs[into] = reqs[node]
        members[into].extend(members[node])
        data.pop((into, node), None)
        # Re-wire node's children to `into`.
        for ch in list(children[node]):
            b = data.pop((node, ch))
            if ch == into:
                continue  # would create a self-loop; drop internal edge
            data[(into, ch)] = data.get((into, ch), 0.0) + b
            parents[ch].discard(node)
            parents[ch].add(into)
            children[into].add(ch)
        # Re-wire node's other parents (beyond `into`) to `into`.  With the
        # in-degree-1 candidate rule this loop is empty, but merge() stays
        # correct for general use.
        for pa in list(parents[node]):
            if pa == into:
                continue
            b = data.pop((pa, node))
            data[(pa, into)] = data.get((pa, into), 0.0) + b
            children[pa].discard(node)
            children[pa].add(into)
            parents[into].add(pa)
        children[into].discard(node)
        del compute[node], reqs[node], members[node], parents[node], children[node]

    while len(compute) > target_size:
        candidates = [
            i
            for i in compute
            if len(parents[i]) == 1 and _compatible(reqs[i], reqs[next(iter(parents[i]))])
        ]
        if not candidates:
            break
        node = min(candidates, key=lambda i: (compute[i], i))
        merge(node, next(iter(parents[node])))

    # Relabel surviving groups 0..k-1 in original-id order.
    order = sorted(compute)
    new_id = {old: new for new, old in enumerate(order)}
    new_compute = tuple(compute[old] for old in order)
    new_reqs = tuple(reqs[old] for old in order)
    new_edges = {(new_id[u], new_id[v]): b for (u, v), b in data.items()}
    grouped = TaskGraph(new_compute, new_edges, new_reqs, name=f"{graph.name}-grouped")
    return GroupedGraph(grouped, tuple(tuple(sorted(members[old])) for old in order))
