"""Task graph: the application DAG of the placement problem (paper §3).

Nodes are computation tasks with a compute requirement ``C_i`` and an
optional hardware requirement (placement constraint); edges carry the
amount of data ``B_ij`` transferred between dependent tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["TaskGraph"]


@dataclass(frozen=True)
class TaskGraph:
    """Immutable directed acyclic task graph.

    Parameters
    ----------
    compute:
        ``compute[i]`` is the compute requirement ``C_i`` of task ``i``
        (execution time = ``C_i / SP_k`` on device ``k``, Eq. 2).
    edges:
        Mapping ``(u, v) -> B_uv`` (bytes of data sent from ``u`` to ``v``).
    requirements:
        ``requirements[i]`` is the hardware type task ``i`` needs
        (``0`` denotes "any device"; see :mod:`repro.devices.network`).
    name:
        Optional label used in experiment reports.
    """

    compute: tuple[float, ...]
    edges: Mapping[tuple[int, int], float]
    requirements: tuple[int, ...] = ()
    name: str = "task-graph"
    # Derived structures, filled in __post_init__.
    parents: tuple[tuple[int, ...], ...] = field(default=(), compare=False)
    children: tuple[tuple[int, ...], ...] = field(default=(), compare=False)
    topo_order: tuple[int, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        n = len(self.compute)
        if n == 0:
            raise ValueError("task graph must have at least one task")
        if any(c < 0 for c in self.compute):
            raise ValueError("compute requirements must be non-negative")
        reqs = self.requirements or tuple([0] * n)
        if len(reqs) != n:
            raise ValueError("requirements length must match number of tasks")
        object.__setattr__(self, "requirements", tuple(int(r) for r in reqs))
        object.__setattr__(self, "compute", tuple(float(c) for c in self.compute))

        edges = {}
        for (u, v), b in dict(self.edges).items():
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u},{v}) references unknown task")
            if u == v:
                raise ValueError(f"self-loop on task {u}")
            if b < 0:
                raise ValueError(f"negative data size on edge ({u},{v})")
            edges[(int(u), int(v))] = float(b)
        object.__setattr__(self, "edges", edges)

        parents: list[list[int]] = [[] for _ in range(n)]
        children: list[list[int]] = [[] for _ in range(n)]
        for u, v in edges:
            parents[v].append(u)
            children[u].append(v)
        object.__setattr__(self, "parents", tuple(tuple(sorted(p)) for p in parents))
        object.__setattr__(self, "children", tuple(tuple(sorted(c)) for c in children))
        object.__setattr__(self, "topo_order", self._toposort(n, parents, children))

    @staticmethod
    def _toposort(n: int, parents: Sequence[Sequence[int]], children: Sequence[Sequence[int]]) -> tuple[int, ...]:
        indeg = [len(p) for p in parents]
        frontier = [i for i in range(n) if indeg[i] == 0]
        order: list[int] = []
        while frontier:
            node = frontier.pop()
            order.append(node)
            for child in children[node]:
                indeg[child] -= 1
                if indeg[child] == 0:
                    frontier.append(child)
        if len(order) != n:
            raise ValueError("task graph contains a cycle")
        return tuple(order)

    # -- structure queries ----------------------------------------------------

    @property
    def num_tasks(self) -> int:
        return len(self.compute)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def entries(self) -> tuple[int, ...]:
        """Tasks with no parents."""
        return tuple(i for i in range(self.num_tasks) if not self.parents[i])

    @property
    def exits(self) -> tuple[int, ...]:
        """Tasks with no children."""
        return tuple(i for i in range(self.num_tasks) if not self.children[i])

    def degree(self, i: int) -> int:
        """Total degree |E_i| of task i (used in the gpNet size formula)."""
        return len(self.parents[i]) + len(self.children[i])

    @property
    def depth(self) -> int:
        """Length (in nodes) of the longest path — the graph's depth."""
        level = [0] * self.num_tasks
        for v in self.topo_order:
            for u in self.parents[v]:
                level[v] = max(level[v], level[u] + 1)
        return max(level) + 1

    def levels(self) -> list[int]:
        """Topological level of each task (entries at level 0)."""
        level = [0] * self.num_tasks
        for v in self.topo_order:
            for u in self.parents[v]:
                level[v] = max(level[v], level[u] + 1)
        return level

    def data_out(self, i: int) -> float:
        """Total bytes task ``i`` sends to its children."""
        return sum(b for (u, _), b in self.edges.items() if u == i)

    def relabeled(self, mapping: Sequence[int], name: str | None = None) -> "TaskGraph":
        """Return a graph with task ``i`` renamed to ``mapping[i]``."""
        if sorted(mapping) != list(range(self.num_tasks)):
            raise ValueError("mapping must be a permutation of task ids")
        inv = list(mapping)
        compute = [0.0] * self.num_tasks
        reqs = [0] * self.num_tasks
        for old, new in enumerate(inv):
            compute[new] = self.compute[old]
            reqs[new] = self.requirements[old]
        edges = {(inv[u], inv[v]): b for (u, v), b in self.edges.items()}
        return TaskGraph(tuple(compute), edges, tuple(reqs), name or self.name)

    def to_networkx(self):
        """Export to a networkx.DiGraph (node attr ``compute``, edge attr ``data``)."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for i, c in enumerate(self.compute):
            g.add_node(i, compute=c, requirement=self.requirements[i])
        for (u, v), b in self.edges.items():
            g.add_edge(u, v, data=b)
        return g

    def __repr__(self) -> str:
        return (
            f"TaskGraph(name={self.name!r}, tasks={self.num_tasks}, "
            f"edges={self.num_edges}, depth={self.depth})"
        )


def mean_compute(graph: TaskGraph) -> float:
    """Average compute requirement across tasks."""
    return float(np.mean(graph.compute))
