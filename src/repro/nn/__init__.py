"""NumPy neural-network substrate (PyTorch/DGL substitute).

Public surface:

* :class:`~repro.nn.tensor.Tensor` — reverse-mode autodiff array.
* :class:`~repro.nn.module.Module` / :class:`~repro.nn.module.Parameter`.
* Layers: :class:`Linear`, :class:`MLP`, :class:`Sequential`,
  :class:`LSTMCell`, :class:`LSTM`, :class:`BiLSTM`, :class:`AdditiveAttention`.
* Optimizers: :class:`SGD`, :class:`Adam`.
* ``functional`` ops incl. graph segment aggregation (sum/mean/max),
  gather/scatter (``gather_rows``, ``scatter_rows``, ``index_add``), the
  batch-invariant ``linear`` kernel, and masked softmax.
"""

from . import functional, init
from .layers import MLP, Activation, Linear, Sequential
from .module import Module, Parameter
from .optim import SGD, Adam, Optimizer
from .rnn import LSTM, AdditiveAttention, BiLSTM, LSTMCell
from .tensor import Tensor, as_tensor, concat, no_grad, stack

__all__ = [
    "Tensor",
    "as_tensor",
    "concat",
    "stack",
    "no_grad",
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "Sequential",
    "Activation",
    "LSTMCell",
    "LSTM",
    "BiLSTM",
    "AdditiveAttention",
    "Optimizer",
    "SGD",
    "Adam",
    "functional",
    "init",
]
