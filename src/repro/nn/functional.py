"""Stateless neural-network operations.

Includes the graph-specific primitives (segment aggregation, masked
softmax) that DGL provided in the paper's artifact.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "relu",
    "tanh",
    "sigmoid",
    "softmax",
    "log_softmax",
    "masked_log_softmax",
    "linear",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "gather_rows",
    "scatter_rows",
    "index_add",
]


def relu(x: Tensor) -> Tensor:
    return as_tensor(x).relu()


def tanh(x: Tensor) -> Tensor:
    return as_tensor(x).tanh()


def sigmoid(x: Tensor) -> Tensor:
    return as_tensor(x).sigmoid()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def masked_log_softmax(scores: Tensor, mask: np.ndarray) -> Tensor:
    """Log-softmax over the entries of ``scores`` where ``mask`` is True.

    Masked-out entries get log-probability -inf (represented as a very
    large negative constant so gradients stay finite).  This is the
    "optional mask layer" of the GiPH policy network (paper §4.2.3).
    """
    scores = as_tensor(scores)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != scores.shape:
        raise ValueError(f"mask shape {mask.shape} != scores shape {scores.shape}")
    if not mask.any():
        raise ValueError("masked_log_softmax: no feasible action (mask all False)")
    neg = Tensor(np.where(mask, 0.0, -1e9))
    return log_softmax(scores + neg, axis=-1)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight (+ bias)`` with a batch-invariant kernel.

    ``np.matmul`` dispatches to different BLAS kernels depending on the
    row count, so ``(A @ W)[i]`` and ``A[i] @ W`` can differ in the last
    ulps.  This kernel instead uses ``np.einsum``, whose reduction over
    the input dimension runs in a fixed sequential order per output
    element, making each output row a function of its own input row
    alone — invariant to how rows are batched or partitioned across
    calls (pinned by ``tests/nn/test_segment_ops.py``).  The vectorized
    GNN sweep in :mod:`repro.core.gnn` relies on this to stay
    bit-identical to its per-task loop reference.  Use
    :class:`repro.nn.Linear` where partition invariance is not needed.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    if x.ndim not in (1, 2):
        raise ValueError(f"linear expects a 1-D or 2-D input, got ndim={x.ndim}")
    xd, wd = x.data, weight.data
    if wd.ndim != 2 or xd.shape[-1] != wd.shape[0]:
        raise ValueError(f"linear shape mismatch: x {xd.shape} vs weight {wd.shape}")
    out_data = np.einsum("...k,kj->...j", xd, wd)
    bias_t = as_tensor(bias) if bias is not None else None
    parents: tuple[Tensor, ...] = (x, weight)
    if bias_t is not None:
        out_data = out_data + bias_t.data
        parents = (x, weight, bias_t)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad @ wd.T)
        if weight.requires_grad:
            weight._accumulate(np.outer(xd, grad) if xd.ndim == 1 else xd.T @ grad)
        if bias_t is not None and bias_t.requires_grad:
            bias_t._accumulate(grad if grad.ndim == 1 else grad.sum(axis=0))

    return Tensor._make(out_data, parents, backward, "linear")


def segment_sum(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``values`` into ``num_segments`` buckets.

    The scatter-add primitive behind GNN message aggregation: row ``i`` of
    ``values`` is added to output row ``segment_ids[i]``.
    """
    values = as_tensor(values)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.ndim != 1 or len(segment_ids) != values.shape[0]:
        raise ValueError("segment_ids must be 1-D and match values' first axis")
    out_shape = (num_segments,) + values.shape[1:]
    out_data = np.zeros(out_shape, dtype=np.float64)
    np.add.at(out_data, segment_ids, values.data)

    def backward(grad: np.ndarray) -> None:
        if values.requires_grad:
            values._accumulate(grad[segment_ids])

    return Tensor._make(out_data, (values,), backward, "segment_sum")


def segment_mean(
    values: Tensor,
    segment_ids: np.ndarray,
    num_segments: int,
    counts: np.ndarray | None = None,
) -> Tensor:
    """Mean-aggregate rows of ``values`` per segment (empty segments -> 0).

    The paper's experiments aggregate messages by mean (§5, experiment
    details), while Eq. 1 writes a sum; both are exposed.  ``counts``
    optionally supplies the precomputed (empty-clamped-to-1) segment
    sizes — callers with static segment layouts (the GNN level plans)
    pass it to skip the per-call ``bincount``; it must equal
    ``maximum(bincount(segment_ids, minlength=num_segments), 1)``.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if counts is None:
        counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
        counts = np.maximum(counts, 1.0)  # avoid div-by-zero for empty segments
    summed = segment_sum(values, segment_ids, num_segments)
    return summed / Tensor(counts.reshape((-1,) + (1,) * (summed.ndim - 1)))


def segment_max(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Max-aggregate rows of ``values`` per segment (empty segments -> 0).

    Ties split the incoming gradient evenly among the maximizers — the
    same subgradient convention as :meth:`repro.nn.Tensor.max`.
    """
    values = as_tensor(values)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.ndim != 1 or len(segment_ids) != values.shape[0]:
        raise ValueError("segment_ids must be 1-D and match values' first axis")
    out_shape = (num_segments,) + values.shape[1:]
    out_data = np.full(out_shape, -np.inf, dtype=np.float64)
    np.maximum.at(out_data, segment_ids, values.data)
    empty = np.bincount(segment_ids, minlength=num_segments) == 0
    if empty.any():
        out_data[empty] = 0.0

    def backward(grad: np.ndarray) -> None:
        if not values.requires_grad:
            return
        winners = (values.data == out_data[segment_ids]).astype(np.float64)
        counts = np.zeros(out_shape, dtype=np.float64)
        np.add.at(counts, segment_ids, winners)
        np.maximum(counts, 1.0, out=counts)
        values._accumulate(winners * (grad / counts)[segment_ids])

    return Tensor._make(out_data, (values,), backward, "segment_max")


def gather_rows(values: Tensor, indices: np.ndarray) -> Tensor:
    """Select rows ``indices`` from ``values`` (differentiable gather)."""
    return as_tensor(values)[np.asarray(indices, dtype=np.int64)]


def scatter_rows(
    base: Tensor, indices: np.ndarray, rows: Tensor, assume_unique: bool = False
) -> Tensor:
    """Out-of-place row scatter: ``out = base; out[indices] = rows``.

    ``indices`` must be unique — with duplicates the forward would be
    write-order dependent and the gradient ill-defined.  The vectorized
    GNN finalizes one frontier level of node embeddings per call with
    this, instead of mutating a running Python list of row tensors.
    ``assume_unique`` skips the uniqueness check for callers whose
    indices come from a static, already-validated plan.
    """
    base = as_tensor(base)
    rows = as_tensor(rows)
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 1 or len(indices) != rows.shape[0]:
        raise ValueError("indices must be 1-D and match rows' first axis")
    if not assume_unique and len(np.unique(indices)) != len(indices):
        raise ValueError("scatter_rows indices must be unique")
    out_data = base.data.copy()
    out_data[indices] = rows.data

    def backward(grad: np.ndarray) -> None:
        if rows.requires_grad:
            rows._accumulate(grad[indices])
        if base.requires_grad:
            masked = grad.copy()
            masked[indices] = 0.0
            base._accumulate(masked)

    return Tensor._make(out_data, (base, rows), backward, "scatter_rows")


def index_add(base: Tensor, indices: np.ndarray, values: Tensor) -> Tensor:
    """Out-of-place scatter-add: ``out = base; out[indices] += values``.

    Duplicate indices accumulate (``np.add.at`` semantics) — the
    ``index_add_``-style scatter of the segment-op family.
    """
    base = as_tensor(base)
    values = as_tensor(values)
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 1 or len(indices) != values.shape[0]:
        raise ValueError("indices must be 1-D and match values' first axis")
    out_data = base.data.copy()
    np.add.at(out_data, indices, values.data)

    def backward(grad: np.ndarray) -> None:
        if base.requires_grad:
            base._accumulate(grad)
        if values.requires_grad:
            values._accumulate(grad[indices])

    return Tensor._make(out_data, (base, values), backward, "index_add")
