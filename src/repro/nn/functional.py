"""Stateless neural-network operations.

Includes the graph-specific primitives (segment aggregation, masked
softmax) that DGL provided in the paper's artifact.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "relu",
    "tanh",
    "sigmoid",
    "softmax",
    "log_softmax",
    "masked_log_softmax",
    "segment_sum",
    "segment_mean",
    "gather_rows",
]


def relu(x: Tensor) -> Tensor:
    return as_tensor(x).relu()


def tanh(x: Tensor) -> Tensor:
    return as_tensor(x).tanh()


def sigmoid(x: Tensor) -> Tensor:
    return as_tensor(x).sigmoid()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def masked_log_softmax(scores: Tensor, mask: np.ndarray) -> Tensor:
    """Log-softmax over the entries of ``scores`` where ``mask`` is True.

    Masked-out entries get log-probability -inf (represented as a very
    large negative constant so gradients stay finite).  This is the
    "optional mask layer" of the GiPH policy network (paper §4.2.3).
    """
    scores = as_tensor(scores)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != scores.shape:
        raise ValueError(f"mask shape {mask.shape} != scores shape {scores.shape}")
    if not mask.any():
        raise ValueError("masked_log_softmax: no feasible action (mask all False)")
    neg = Tensor(np.where(mask, 0.0, -1e9))
    return log_softmax(scores + neg, axis=-1)


def segment_sum(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``values`` into ``num_segments`` buckets.

    The scatter-add primitive behind GNN message aggregation: row ``i`` of
    ``values`` is added to output row ``segment_ids[i]``.
    """
    values = as_tensor(values)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.ndim != 1 or len(segment_ids) != values.shape[0]:
        raise ValueError("segment_ids must be 1-D and match values' first axis")
    out_shape = (num_segments,) + values.shape[1:]
    out_data = np.zeros(out_shape, dtype=np.float64)
    np.add.at(out_data, segment_ids, values.data)

    def backward(grad: np.ndarray) -> None:
        if values.requires_grad:
            values._accumulate(grad[segment_ids])

    return Tensor._make(out_data, (values,), backward, "segment_sum")


def segment_mean(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean-aggregate rows of ``values`` per segment (empty segments -> 0).

    The paper's experiments aggregate messages by mean (§5, experiment
    details), while Eq. 1 writes a sum; both are exposed.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0)  # avoid div-by-zero for empty segments
    summed = segment_sum(values, segment_ids, num_segments)
    return summed / Tensor(counts.reshape((-1,) + (1,) * (summed.ndim - 1)))


def gather_rows(values: Tensor, indices: np.ndarray) -> Tensor:
    """Select rows ``indices`` from ``values`` (differentiable gather)."""
    return as_tensor(values)[np.asarray(indices, dtype=np.int64)]
