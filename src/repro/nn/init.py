"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_uniform", "zeros", "orthogonal"]


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform — default for tanh/sigmoid layers."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He uniform — default for ReLU layers (the paper uses ReLU throughout)."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def orthogonal(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Orthogonal init — used for LSTM recurrent weights."""
    a = rng.standard_normal((fan_in, fan_out))
    q, r = np.linalg.qr(a if fan_in >= fan_out else a.T)
    q = q * np.sign(np.diag(r))
    return q if fan_in >= fan_out else q.T
