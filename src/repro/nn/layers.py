"""Feed-forward building blocks: Linear, MLP, Sequential.

The paper's networks are small feed-forward stacks (Table 5): two-layer
pre-embedding FNNs, single-layer message/aggregation FNNs, and a
10->16->1 policy MLP, all with ReLU activations.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["Linear", "MLP", "Sequential", "Activation"]

_ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "relu": lambda x: x.relu(),
    "tanh": lambda x: x.tanh(),
    "sigmoid": lambda x: x.sigmoid(),
    "identity": lambda x: x,
}


class Linear(Module):
    """Affine map ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        init_scheme: str = "he",
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear dimensions must be positive")
        initializer = init.he_uniform if init_scheme == "he" else init.glorot_uniform
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(initializer(rng, in_features, out_features))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Activation(Module):
    """Named activation wrapper so it can live in a Sequential."""

    def __init__(self, name: str) -> None:
        if name not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}")
        self.name = name

    def forward(self, x: Tensor) -> Tensor:
        return _ACTIVATIONS[self.name](x)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with a hidden activation on every layer but the last.

    ``MLP([10, 16, 1])`` is the paper's policy score function g(.).
    """

    def __init__(
        self,
        dims: Sequence[int],
        rng: np.random.Generator,
        activation: str = "relu",
        output_activation: str = "identity",
    ) -> None:
        if len(dims) < 2:
            raise ValueError("MLP needs at least an input and an output dimension")
        self.dims = tuple(dims)
        layers: list[Module] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(d_in, d_out, rng))
            is_last = i == len(dims) - 2
            layers.append(Activation(output_activation if is_last else activation))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
