"""Parameter and Module base classes (the torch.nn.Module analogue)."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A trainable tensor; always requires grad."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with parameter registration and (de)serialization.

    Submodules and parameters assigned as attributes are discovered
    automatically, mirroring the PyTorch convention used in the paper's
    artifact.
    """

    def parameters(self) -> Iterator[Parameter]:
        seen: set[int] = set()
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}.{name}" if prefix else name
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(full)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{i}", item

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot of all parameter values (copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values saved by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, value in state.items():
            if params[name].shape != value.shape:
                raise ValueError(f"shape mismatch for {name}: {params[name].shape} vs {value.shape}")
            params[name].data = np.array(value, dtype=np.float64)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError
