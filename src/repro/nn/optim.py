"""Gradient-based optimizers.

The paper trains every policy with Adam at a fixed learning rate of 0.01
(§5, experiment details); SGD is provided for tests and ablations.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Scale gradients so their global L2 norm is at most ``max_norm``.

        Returns the pre-clip norm.  REINFORCE returns have high variance;
        clipping keeps pure-NumPy training stable without changing the
        learning dynamics near convergence.
        """
        total = 0.0
        for p in self.params:
            if p.grad is not None:
                total += float((p.grad**2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for p in self.params:
                if p.grad is not None:
                    p.grad *= scale
        return norm


class SGD(Optimizer):
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(self, params: Iterable[Parameter], lr: float, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction.

    Optimizer state lives in two flat float64 buffers spanning every
    parameter (``_m``/``_v`` are reshaped views into them).  The default
    ``fused`` step concatenates the gradients once and runs each
    elementwise pass — moment decay, bias correction, the update — over
    all parameters at a time instead of once per tensor, so a model with
    dozens of small GNN weight matrices pays ufunc dispatch a handful of
    times per step rather than hundreds.  Elementwise math is
    per-element independent and the fused path evaluates the exact
    per-tensor expressions in the exact order, so trajectories are
    bit-identical between the two paths; any step where some parameter
    has no gradient falls back to the per-tensor loop, which skips that
    parameter's moment updates entirely (both paths must agree on this:
    a skipped tensor keeps stale moments AND skips decay).
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        fused: bool = True,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.fused = fused
        self._t = 0
        total = sum(p.data.size for p in self.params)
        self._flat_m = np.zeros(total)
        self._flat_v = np.zeros(total)
        self._slices: list[slice] = []
        offset = 0
        for p in self.params:
            self._slices.append(slice(offset, offset + p.data.size))
            offset += p.data.size
        # Per-tensor views aliasing the flat buffers (contiguous slices
        # reshape without copying), so both step paths share one state.
        self._m = [
            self._flat_m[sl].reshape(p.data.shape)
            for p, sl in zip(self.params, self._slices)
        ]
        self._v = [
            self._flat_v[sl].reshape(p.data.shape)
            for p, sl in zip(self.params, self._slices)
        ]

    def step(self) -> None:
        self._t += 1
        if self.fused and all(p.grad is not None for p in self.params):
            self._step_fused()
            return
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1**self._t
        bc2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            m *= b1
            m += (1 - b1) * p.grad
            v *= b2
            v += (1 - b2) * p.grad**2
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def _step_fused(self) -> None:
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1**self._t
        bc2 = 1.0 - b2**self._t
        m, v = self._flat_m, self._flat_v
        grad = np.concatenate([p.grad.ravel() for p in self.params])
        m *= b1
        m += (1 - b1) * grad
        v *= b2
        # ``g**2`` lowers to np.square for ndarrays, so squaring the
        # (private) concatenated copy in place matches it bit for bit.
        np.square(grad, out=grad)
        v += (1 - b2) * grad
        # Same association as the per-tensor expression:
        # (lr * (m / bc1)) / (sqrt(v / bc2) + eps).
        update = self.lr * (m / bc1)
        denom = np.sqrt(v / bc2)
        denom += self.eps
        update /= denom
        for p, sl in zip(self.params, self._slices):
            p.data -= update[sl].reshape(p.data.shape)
