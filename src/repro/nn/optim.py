"""Gradient-based optimizers.

The paper trains every policy with Adam at a fixed learning rate of 0.01
(§5, experiment details); SGD is provided for tests and ablations.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Scale gradients so their global L2 norm is at most ``max_norm``.

        Returns the pre-clip norm.  REINFORCE returns have high variance;
        clipping keeps pure-NumPy training stable without changing the
        learning dynamics near convergence.
        """
        total = 0.0
        for p in self.params:
            if p.grad is not None:
                total += float((p.grad**2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for p in self.params:
                if p.grad is not None:
                    p.grad *= scale
        return norm


class SGD(Optimizer):
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(self, params: Iterable[Parameter], lr: float, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1**self._t
        bc2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            m *= b1
            m += (1 - b1) * p.grad
            v *= b2
            v += (1 - b2) * p.grad**2
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
