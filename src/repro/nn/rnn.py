"""Recurrent layers for the HDP-style RNN placer baseline.

The paper's RNN baseline (Mirhoseini et al., 2018) is a seq2seq model:
a bi-LSTM encoder over operator embeddings and a unidirectional LSTM
decoder with additive attention that emits one device per operator.
"""

from __future__ import annotations

import numpy as np

from . import init
from .layers import Linear
from .module import Module, Parameter
from .tensor import Tensor, concat, stack

__all__ = ["LSTMCell", "LSTM", "BiLSTM", "AdditiveAttention"]


class LSTMCell(Module):
    """Standard LSTM cell with forget-gate bias of 1."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Gates packed as [i, f, g, o] along the output axis.
        self.w_ih = Parameter(init.glorot_uniform(rng, input_size, 4 * hidden_size))
        self.w_hh = Parameter(
            np.concatenate(
                [init.orthogonal(rng, hidden_size, hidden_size) for _ in range(4)], axis=1
            )
        )
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget-gate bias
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        gates = x @ self.w_ih + h_prev @ self.w_hh + self.bias
        H = self.hidden_size
        i = gates[..., 0:H].sigmoid()
        f = gates[..., H : 2 * H].sigmoid()
        g = gates[..., 2 * H : 3 * H].tanh()
        o = gates[..., 3 * H : 4 * H].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c

    def initial_state(self, batch: int | None = None) -> tuple[Tensor, Tensor]:
        shape = (self.hidden_size,) if batch is None else (batch, self.hidden_size)
        return Tensor(np.zeros(shape)), Tensor(np.zeros(shape))


class LSTM(Module):
    """Unidirectional LSTM over a sequence of vectors (T, input_size)."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        self.cell = LSTMCell(input_size, hidden_size, rng)

    def forward(
        self, xs: Tensor, state: tuple[Tensor, Tensor] | None = None
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """Return (T, hidden) outputs and the final (h, c) state."""
        if state is None:
            state = self.cell.initial_state()
        outputs = []
        for t in range(xs.shape[0]):
            h, c = self.cell(xs[t], state)
            state = (h, c)
            outputs.append(h)
        return stack(outputs, axis=0), state


class BiLSTM(Module):
    """Bidirectional LSTM; outputs are fwd/bwd concatenations (T, 2*hidden)."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        self.fwd = LSTM(input_size, hidden_size, rng)
        self.bwd = LSTM(input_size, hidden_size, rng)

    def forward(self, xs: Tensor) -> Tensor:
        out_f, _ = self.fwd(xs)
        rev = xs[np.arange(xs.shape[0] - 1, -1, -1)]
        out_b_rev, _ = self.bwd(rev)
        out_b = out_b_rev[np.arange(xs.shape[0] - 1, -1, -1)]
        return concat([out_f, out_b], axis=-1)


class AdditiveAttention(Module):
    """Bahdanau-style additive attention over encoder memory."""

    def __init__(self, query_size: int, memory_size: int, attn_size: int, rng: np.random.Generator) -> None:
        self.query_proj = Linear(query_size, attn_size, rng, bias=False)
        self.memory_proj = Linear(memory_size, attn_size, rng, bias=False)
        self.v = Parameter(init.glorot_uniform(rng, attn_size, 1).ravel())

    def forward(self, query: Tensor, memory: Tensor) -> Tensor:
        """Return the context vector for ``query`` over ``memory`` (T, mem)."""
        from .functional import softmax

        scores = (self.memory_proj(memory) + self.query_proj(query)).tanh() @ self.v
        weights = softmax(scores, axis=-1)  # (T,)
        return weights @ memory  # (mem,)
