"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the substrate that replaces PyTorch in this reproduction:
a small, well-tested autograd engine sufficient for the GNNs, MLPs and
LSTMs used by GiPH and its baselines.

Design notes
------------
* A :class:`Tensor` wraps an ``np.ndarray`` and records the operation that
  produced it (parents + a backward closure).  Calling :meth:`Tensor.backward`
  runs a topological sweep accumulating gradients into ``.grad``.
* Broadcasting is supported for elementwise ops; gradients are un-broadcast
  by summing over the broadcast axes (see :func:`_unbroadcast`).
* Only float64 is used.  The workloads here are small (embedding dims of
  5-40), so clarity wins over micro-optimization, per the project style
  guide.  Hot paths (message passing) batch nodes into level-wise matrices
  so the heavy lifting stays inside NumPy.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast to reach ``grad.shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with reverse-mode autodiff support."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "_op")
    __array_priority__ = 100  # so np scalars defer to our __r*__ methods

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        _op: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents = tuple(_parents) if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None
        self._op = _op

    # -- basic introspection ------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_tag})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    # -- graph plumbing -----------------------------------------------------

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        needs = False
        if _GRAD_ENABLED:
            for p in parents:
                if p.requires_grad:
                    needs = True
                    break
        return Tensor(data, requires_grad=needs, _parents=parents, _backward=backward, _op=op)

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape == self.data.shape:
                # First touch: copy instead of zeros + add (saves a full
                # memory pass per graph node; 0 + g == g bitwise for
                # every finite g).
                self.grad = grad.copy()
                return
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 for scalar outputs (the usual loss case).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological ordering of the subgraph reachable from self.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- elementwise arithmetic ----------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward, "neg")

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward, "pow")

    # -- comparisons (no grad; used for masking) ------------------------------

    def __gt__(self, other) -> np.ndarray:
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other) -> np.ndarray:
        return self.data < (other.data if isinstance(other, Tensor) else other)

    # -- reductions -----------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = np.prod([self.shape[a] for a in np.atleast_1d(axis)])
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                out = np.expand_dims(out, axis)
            mask = self.data == out
            # Split gradient between ties, matching subgradient convention.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / counts)

        return Tensor._make(out_data, (self,), backward, "max")

    # -- shape ops -------------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.shape))

        return Tensor._make(out_data, (self,), backward, "reshape")

    def transpose(self) -> "Tensor":
        out_data = self.data.T

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        return Tensor._make(out_data, (self,), backward, "transpose")

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, idx) -> "Tensor":
        out_data = self.data[idx]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                # Scatter straight into the grad buffer — no dense
                # temporary per gather (the GNN backward runs thousands
                # of these).
                if self.grad is None:
                    self.grad = np.zeros_like(self.data)
                np.add.at(self.grad, idx, grad)

        return Tensor._make(out_data, (self,), backward, "getitem")

    def gather(self, indices) -> "Tensor":
        """Select rows by an integer index array (differentiable gather).

        Duplicate indices are fine: their gradients accumulate into the
        shared source row (``np.add.at`` in the backward).  This is the
        gather half of the segment-op family in
        :mod:`repro.nn.functional`; it lives on the tensor because the
        GNN hot path gathers from intermediate results, not leaves.
        """
        return self[np.asarray(indices, dtype=np.int64)]

    # -- linear algebra ---------------------------------------------------------

    def matmul(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            # Four cases by operand dimensionality (1D vectors vs 2D matrices).
            if self.requires_grad:
                if a.ndim == 1 and b.ndim == 1:
                    self._accumulate(grad * b)
                elif b.ndim == 1:  # (m,n) @ (n,) -> (m,)
                    self._accumulate(np.outer(grad, b))
                else:  # (n,)|(m,n) @ (n,p): grad @ b.T works for both
                    self._accumulate(grad @ b.T)
            if other.requires_grad:
                if a.ndim == 1 and b.ndim == 1:
                    other._accumulate(grad * a)
                elif a.ndim == 1:  # (n,) @ (n,p) -> (p,)
                    other._accumulate(np.outer(a, grad))
                else:  # (m,n) @ (n,)|(n,p): a.T @ grad works for both
                    other._accumulate(a.T @ grad)

        return Tensor._make(out_data, (self, other), backward, "matmul")

    def __matmul__(self, other) -> "Tensor":
        return self.matmul(other)

    # -- nonlinearities -----------------------------------------------------------

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0))

        return Tensor._make(out_data, (self,), backward, "relu")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward, "sigmoid")

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -700.0, 700.0))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward, "log")


def as_tensor(value) -> Tensor:
    """Coerce scalars/arrays to a (non-grad) :class:`Tensor`."""
    return value if isinstance(value, Tensor) else Tensor(value)


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    ts = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in ts], axis=axis)
    sizes = [t.shape[axis] for t in ts]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, lo, hi in zip(ts, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(lo, hi)
                t._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, ts, backward, "concat")


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    ts = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in ts], axis=axis)

    def backward(grad: np.ndarray) -> None:
        for i, t in enumerate(ts):
            if t.requires_grad:
                t._accumulate(np.take(grad, i, axis=axis))

    return Tensor._make(out_data, ts, backward, "stack")
