"""Seed-deterministic parallel execution (see :mod:`repro.parallel.pool`).

The subsystem behind every ``--workers N`` flag: a fork-based
:class:`WorkerPool` whose results are bit-identical for any worker
count, plus the batched-episode machinery REINFORCE training fans out
with.  GiPH's pitch is cheap repeated re-placement as clusters change;
this package is what lets training sweeps, experiment grids, and
scenario replays use every core while staying exactly reproducible.
"""

from .episodes import BatchContext, EpisodePayload, EpisodeRollout, rollout_episode
from .pool import (
    WorkerPool,
    available_workers,
    fanout,
    get_context,
    resolve_workers,
    task_rng,
)

__all__ = [
    "WorkerPool",
    "available_workers",
    "fanout",
    "get_context",
    "resolve_workers",
    "task_rng",
    "BatchContext",
    "EpisodePayload",
    "EpisodeRollout",
    "rollout_episode",
]
