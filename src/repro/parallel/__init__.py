"""Seed-deterministic parallel execution (see :mod:`repro.parallel.pool`).

The subsystem behind every ``--workers N`` / ``--backend`` flag: a
fork-based :class:`WorkerPool` whose results are bit-identical for any
worker count, the pluggable :class:`ExecutionBackend` family built on
its contract (inline / fork / store-mediated shard + merge), and the
batched-episode machinery REINFORCE training fans out with.  GiPH's
pitch is cheap repeated re-placement as clusters change; this package
is what lets training sweeps, experiment grids, and scenario replays
use every core — or several machines — while staying exactly
reproducible.
"""

from .backends import (
    ExecutionBackend,
    ExecutionBackendError,
    ForkBackend,
    InlineBackend,
    MergeBackend,
    MissingCellError,
    ShardBackend,
    ThreadBackend,
    resolve_backend,
)
from .episodes import BatchContext, EpisodePayload, EpisodeRollout, rollout_episode
from .pool import (
    WorkerPool,
    available_workers,
    fanout,
    get_context,
    resolve_workers,
    task_rng,
)

__all__ = [
    "WorkerPool",
    "available_workers",
    "fanout",
    "get_context",
    "resolve_workers",
    "task_rng",
    "ExecutionBackend",
    "ExecutionBackendError",
    "ForkBackend",
    "InlineBackend",
    "MergeBackend",
    "MissingCellError",
    "ShardBackend",
    "ThreadBackend",
    "resolve_backend",
    "BatchContext",
    "EpisodePayload",
    "EpisodeRollout",
    "rollout_episode",
]
