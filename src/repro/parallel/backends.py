"""Pluggable execution backends over the :class:`WorkerPool` contract.

PRs 1–4 hard-wired the backend choice (inline vs. fork) into every call
site through a ``workers`` integer.  This module extracts the implicit
contract — ordered results, one broadcast context, per-task seed
streams — into an :class:`ExecutionBackend` interface so call sites say
*what* fans out and backends decide *where* it runs:

* :class:`InlineBackend` — the ``workers=1`` path: tasks run in the
  calling process against a pickled private copy of the context.
* :class:`ForkBackend` — the PR-3 fork pool, sized to the task list.
* :class:`ShardBackend` — one shard of a run split across processes or
  machines: it computes the cells a manifest assigns to it, publishes
  every result to a content-addressed :class:`~repro.store.RunStore`,
  and fills unowned cells from the store (or waits for a peer shard to
  publish them).  The store directory is the whole transport.
* :class:`MergeBackend` — the assembly pass: never computes a cell,
  only loads them back in task order, so re-running an experiment under
  it rebuilds the report from published shard results bit-identically.

Every backend preserves the determinism contract of
:mod:`repro.parallel.pool`: a task's result is a pure function of its
payload and the broadcast context, so **which** backend executed a cell
can never change its value — the property that makes a sharded run's
merged report byte-identical to the single-host run.

Backends also expose :meth:`ExecutionBackend.compute`, a memoization
hook for expensive *non-fanned* stages (e.g. an experiment's inline
training glue): with a store available the stage is computed once and
reloaded everywhere else — in particular by the merge pass, which would
otherwise recompute it.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Mapping, Sequence, TypeVar

from ..store import RunStore, active_store
from ..telemetry import log, span
from .pool import WorkerPool, fanout, resolve_workers

__all__ = [
    "ExecutionBackend",
    "ExecutionBackendError",
    "ForkBackend",
    "InlineBackend",
    "MergeBackend",
    "MissingCellError",
    "ShardBackend",
    "ThreadBackend",
    "resolve_backend",
]

_T = TypeVar("_T")


class ExecutionBackendError(RuntimeError):
    """A backend cannot satisfy the requested execution shape."""


class MissingCellError(ExecutionBackendError):
    """Merge found cells no shard published (incomplete shard set)."""


class ExecutionBackend:
    """Executor of ordered, context-broadcasting fan-outs.

    Subclasses implement :meth:`fanout`; the base class provides the
    persistent-pool handle (for callers that map repeatedly against one
    broadcast context, like batched REINFORCE) and store-aware stage
    memoization.
    """

    name: str = "abstract"

    def fanout(
        self, fn: Callable[[Any], _T], payloads: Iterable[Any], context: Any = None
    ) -> list[_T]:
        """Run ``fn`` over ``payloads``; results in payload order."""
        raise NotImplementedError

    def pool(self, context: Any = None) -> WorkerPool:
        """A persistent :class:`WorkerPool` broadcasting ``context``.

        For callers that issue many ``map`` rounds against one context
        (batched training).  Sharded backends have no such pool: rounds
        are sequential by nature, so there is nothing to distribute.
        """
        raise ExecutionBackendError(
            f"the {self.name} backend has no persistent pool; "
            "round-based training fans out via inline/fork only"
        )

    def compute(self, kind: str, key: Mapping[str, Any], producer: Callable[[], _T]) -> _T:
        """Memoize an expensive non-fanned stage under ``(kind, key)``.

        With no store configured this is just ``producer()``; with one
        (the process-wide active store, or a shard backend's own) the
        stage is computed once per store and loaded everywhere else.
        ``key`` must fully identify the computation (experiment, seed,
        full scale parameters) — the store salts it with the code
        fingerprint, never with backend identity, so all backends of one
        run share the entry.
        """
        store = self._compute_store()
        if store is None:
            return producer()
        return store.get_or_create(kind, key, producer)

    def _compute_store(self) -> RunStore | None:
        return active_store()


class _PoolBackend(ExecutionBackend):
    """Shared implementation for the direct-execution backends."""

    def __init__(self, workers: int) -> None:
        self.workers = workers

    def fanout(
        self, fn: Callable[[Any], _T], payloads: Iterable[Any], context: Any = None
    ) -> list[_T]:
        return fanout(fn, payloads, self.workers, context)

    def pool(self, context: Any = None) -> WorkerPool:
        return WorkerPool(self.workers, context=context)


class InlineBackend(_PoolBackend):
    """Single-process execution (the ``workers=1`` path, verbatim)."""

    name = "inline"

    def __init__(self) -> None:
        super().__init__(workers=1)


class ForkBackend(_PoolBackend):
    """Fork-based multiprocess execution (the PR-3 ``WorkerPool``)."""

    name = "fork"

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers=resolve_workers(workers))


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution for I/O-bound fan-outs.

    Fork workers pay a process per slot and pickle the context per
    pool — the right trade for CPU-bound cells, the wrong one for tasks
    that spend their time blocked on I/O (the shape of `repro load`'s
    tenants: socket clients waiting on the daemon).  Threads share the
    process, so concurrency is real exactly where the GIL is released
    (socket reads), and telemetry records directly into the live
    collector (thread-local span paths keep the trees nested).

    The determinism contract carries over — a task derives randomness
    from its payload identity — with one sharpening: the broadcast
    ``context`` is **shared between tasks, not copied**, so thread
    tasks must treat it as read-only.
    """

    name = "thread"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = resolve_workers(workers)

    def fanout(
        self, fn: Callable[[Any], _T], payloads: Iterable[Any], context: Any = None
    ) -> list[_T]:
        from concurrent.futures import ThreadPoolExecutor

        from . import pool as _pool

        items = list(payloads)
        if not items:
            return []
        saved = _pool._CONTEXT  # reentrant, like the inline pool path
        _pool._CONTEXT = context
        try:
            count = min(self.workers, len(items))
            if count == 1:
                return [fn(item) for item in items]
            with ThreadPoolExecutor(
                max_workers=count, thread_name_prefix="repro-thread-backend"
            ) as executor:
                return list(executor.map(fn, items))
        finally:
            _pool._CONTEXT = saved


class _StoreBackend(ExecutionBackend):
    """Common cell addressing for the store-mediated backends.

    A cell's address is ``(run fingerprint, fan-out site, visit number,
    cell index, task count)``.  The *site* is the task function's
    qualified name and the *visit* its occurrence count within the run —
    experiment code is deterministic given (scale, seed), so every
    backend of a run walks the same site/visit sequence and addresses
    agree without any coordination.
    """

    def __init__(self, store: RunStore, run_key: str) -> None:
        self.store = store
        self.run_key = run_key
        self._visits: dict[str, int] = {}

    def _visit(self, fn: Callable) -> tuple[str, int]:
        site = f"{fn.__module__}.{fn.__qualname__}"
        visit = self._visits.get(site, 0)
        self._visits[site] = visit + 1
        return site, visit

    def _cell_key(self, site: str, visit: int, index: int, count: int) -> dict:
        return {
            "run": self.run_key,
            "site": site,
            "visit": visit,
            "cell": index,
            "of": count,
        }

    def _compute_store(self) -> RunStore:
        return self.store


class ShardBackend(_StoreBackend):
    """One shard of a store-mediated run.

    Owns the cells with ``index % num_shards == shard_index`` of every
    fan-out, computes them through ``inner`` (inline or fork — so
    within-shard parallelism composes with cross-machine sharding), and
    publishes each result to the store.  Unowned cells are loaded from
    the store when a peer shard already published them; otherwise the
    ``missing`` policy decides:

    * ``"compute"`` (default) — compute them locally too.  Always makes
      progress; concurrent shards sharing a store still split the work
      in practice because owned cells are computed (and published)
      first, so by the time a shard reaches its unowned tail the peers
      have usually filled it.
    * ``"wait"`` — poll the store until a peer publishes the cell.
      Guarantees each cell is computed exactly once across shards (the
      two-terminal / many-machine mode) but requires every shard of the
      plan to actually run against a commonly visible store.
    """

    name = "shard"

    def __init__(
        self,
        store: RunStore,
        run_key: str,
        num_shards: int,
        shard_index: int,
        inner: ExecutionBackend | None = None,
        missing: str = "compute",
        wait_timeout_s: float = 3600.0,
        poll_interval_s: float = 0.2,
        progress: Callable[..., None] | None = None,
        progress_interval_s: float = 10.0,
    ) -> None:
        super().__init__(store, run_key)
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if not 0 <= shard_index < num_shards:
            raise ValueError(f"shard_index {shard_index} outside [0, {num_shards})")
        if missing not in ("compute", "wait"):
            raise ValueError(f"missing policy must be 'compute' or 'wait', not {missing!r}")
        self.num_shards = num_shards
        self.shard_index = shard_index
        self.inner = inner or InlineBackend()
        self.missing = missing
        self.wait_timeout_s = wait_timeout_s
        self.poll_interval_s = poll_interval_s
        self.progress = progress
        self.progress_interval_s = progress_interval_s

    def _owns(self, index: int) -> bool:
        return index % self.num_shards == self.shard_index

    def _progress(self, **fields) -> None:
        """Liveness record: shipped to the progress sink, never fatal."""
        if self.progress is None:
            return
        try:
            self.progress(
                shard=self.shard_index, num_shards=self.num_shards, **fields
            )
        except Exception:
            pass

    def compute(self, kind: str, key: Mapping[str, Any], producer: Callable[[], _T]) -> _T:
        """Stage memoization with the same ownership discipline as cells.

        A stage is a single unit, so shard 0 owns it.  Under the default
        ``"compute"`` policy every shard self-heals (first to arrive
        computes, the rest load — concurrent arrivals duplicate work but
        stay correct).  Under ``"wait"`` the non-owners poll for shard
        0's entry instead, keeping strict each-unit-computed-once
        partitioning for the expensive training stages too.
        """
        if self.missing == "wait" and self.shard_index != 0:
            began = time.monotonic()
            deadline = began + self.wait_timeout_s
            next_report = began + self.progress_interval_s
            address = self.store.address(kind, key)[:12]
            with span("shard.await"):
                while not self.store.has(kind, key):
                    now = time.monotonic()
                    if now >= deadline:
                        raise ExecutionBackendError(
                            f"shard {self.shard_index}/{self.num_shards} timed out after "
                            f"{self.wait_timeout_s:.0f}s waiting for shard 0 to publish "
                            f"stage {kind}/{address}; "
                            "is shard 0 running against this store?"
                        )
                    if now >= next_report:
                        next_report = now + self.progress_interval_s
                        elapsed = now - began
                        log.info(
                            f"shard {self.shard_index}/{self.num_shards}: waiting on "
                            f"stage {kind}/{address} owned by shard 0 "
                            f"({elapsed:.0f}s elapsed)"
                        )
                        self._progress(
                            phase="await-stage",
                            stage=f"{kind}/{address}",
                            owners=[0],
                            elapsed_s=elapsed,
                        )
                    time.sleep(self.poll_interval_s)
            return self.store.load(kind, key)
        return self.store.get_or_create(kind, key, producer)

    def fanout(
        self, fn: Callable[[Any], _T], payloads: Iterable[Any], context: Any = None
    ) -> list[_T]:
        items = list(payloads)
        site, visit = self._visit(fn)
        keys = [self._cell_key(site, visit, i, len(items)) for i in range(len(items))]
        results: dict[int, Any] = {}
        for i, key in enumerate(keys):
            if self.store.has("cell", key):
                results[i] = self.store.load("cell", key)
        owned = [i for i in range(len(items)) if i not in results and self._owns(i)]
        self._produce(fn, items, keys, owned, context, results)
        pending = [i for i in range(len(items)) if i not in results]
        if pending:
            if self.missing == "wait":
                with span("shard.await"):
                    self._await_cells(site, keys, pending, results)
            else:
                self._produce(fn, items, keys, pending, context, results)
        self._progress(phase="fanout-done", site=site, cells=len(items))
        return [results[i] for i in range(len(items))]

    def _produce(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        keys: Sequence[Mapping[str, Any]],
        indices: Sequence[int],
        context: Any,
        results: dict[int, Any],
    ) -> None:
        """Compute ``indices`` through the inner backend and publish them.

        Re-checks the store immediately before computing: a concurrent
        shard may have published a cell since the initial scan, and
        loading is always cheaper than recomputing.
        """
        todo = []
        for i in indices:
            if self.store.has("cell", keys[i]):
                results[i] = self.store.load("cell", keys[i])
            else:
                todo.append(i)
        if not todo:
            return
        computed = self.inner.fanout(fn, [items[i] for i in todo], context)
        for i, value in zip(todo, computed):
            self.store.save("cell", keys[i], value)
            results[i] = value

    def _await_cells(
        self,
        site: str,
        keys: Sequence[Mapping[str, Any]],
        pending: Sequence[int],
        results: dict[int, Any],
    ) -> None:
        began = time.monotonic()
        deadline = began + self.wait_timeout_s
        next_report = began + self.progress_interval_s
        remaining = list(pending)
        while remaining:
            remaining = [i for i in remaining if i not in results]
            for i in list(remaining):
                if self.store.has("cell", keys[i]):
                    results[i] = self.store.load("cell", keys[i])
                    remaining.remove(i)
            if not remaining:
                return
            now = time.monotonic()
            if now >= deadline:
                raise ExecutionBackendError(
                    f"shard {self.shard_index}/{self.num_shards} timed out after "
                    f"{self.wait_timeout_s:.0f}s waiting for {len(remaining)} "
                    f"peer cell(s) of {site} (first: index {remaining[0]}); "
                    "are all planned shards running against this store?"
                )
            if now >= next_report:
                next_report = now + self.progress_interval_s
                owners = sorted({i % self.num_shards for i in remaining})
                elapsed = now - began
                log.info(
                    f"shard {self.shard_index}/{self.num_shards}: waiting on "
                    f"{len(remaining)} peer cell(s) of {site} owned by "
                    f"shard(s) {','.join(map(str, owners))} ({elapsed:.0f}s elapsed)"
                )
                self._progress(
                    phase="await-cells",
                    site=site,
                    remaining=len(remaining),
                    owners=owners,
                    elapsed_s=elapsed,
                )
            time.sleep(self.poll_interval_s)


class MergeBackend(_StoreBackend):
    """Assembly pass over a completed shard set: loads, never computes.

    Re-running an experiment under this backend replays its fan-out
    sequence purely from published cells — the merge is bit-identical to
    the single-host run because the cells are, and any hole in the shard
    set surfaces as a :class:`MissingCellError` instead of silently
    recomputing (which would mask an incomplete or mis-planned run).
    """

    name = "merge"

    def compute(self, kind: str, key: Mapping[str, Any], producer: Callable[[], _T]) -> _T:
        """Load-only, like cells: every shard run published every stage
        it executed, so a miss means the shard set is incomplete — fail
        fast rather than silently recompute a (possibly hours-long)
        training stage during what is promised to be cheap assembly."""
        try:
            return self.store.load(kind, key)
        except KeyError:
            raise MissingCellError(
                f"merge is missing stage {kind}/{self.store.address(kind, key)[:12]} "
                f"in {self.store.root}; did every `repro shard run` of the plan "
                "complete?"
            ) from None

    def fanout(
        self, fn: Callable[[Any], _T], payloads: Iterable[Any], context: Any = None
    ) -> list[_T]:
        items = list(payloads)
        site, visit = self._visit(fn)
        keys = [self._cell_key(site, visit, i, len(items)) for i in range(len(items))]
        missing = [i for i, key in enumerate(keys) if not self.store.has("cell", key)]
        if missing:
            raise MissingCellError(
                f"merge is missing {len(missing)}/{len(items)} cell(s) of {site} "
                f"(first missing: index {missing[0]}) in {self.store.root}; "
                "did every `repro shard run` of the plan complete?"
            )
        return [self.store.load("cell", key) for key in keys]


def resolve_backend(
    backend: ExecutionBackend | None, workers: int | None = 1
) -> ExecutionBackend:
    """Backwards-compatible backend selection for ``workers=`` call sites.

    ``None`` preserves the historical behavior of the integer flag:
    inline at one worker, fork otherwise (``0``/``None`` = all CPUs).
    An explicit backend always wins, making ``workers`` advisory.
    """
    if backend is not None:
        if not isinstance(backend, ExecutionBackend):
            raise TypeError(f"backend must be an ExecutionBackend, got {type(backend)!r}")
        return backend
    count = resolve_workers(workers)
    return ForkBackend(count) if count > 1 else InlineBackend()
