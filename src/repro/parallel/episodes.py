"""Batched REINFORCE episode collection (the training-side fan-out).

One gradient update aggregates K on-policy episodes collected against a
snapshot of the agent's weights:

1. the trainer samples K (problem, seed-slot) pairs from its main rng,
2. each slot rolls out one episode with the stream
   ``task_rng(round_root, slot)`` and returns its policy gradient,
3. the trainer averages the K gradients **in slot order** and applies a
   single clipped optimizer step.

Because every slot's randomness derives only from ``(round_root, slot)``
and aggregation order is fixed, the resulting weights are bit-identical
for any worker count (see ``tests/parallel/test_determinism.py``).
Rollouts run through :func:`repro.core.reinforce.collect_episode`, the
same code the serial trainer uses, so the two modes cannot drift.

Non-deterministic objectives participate through the noise-resampling
mode: an objective exposing ``reseeded(rng)`` (e.g. a noisy
:class:`~repro.sim.objectives.MakespanObjective`) gets a per-episode
copy seeded from ``task_rng(round_root, slot, 1)``, so noisy training
keeps the same worker-count-independence guarantee instead of being
rejected.

Each worker keeps its own :class:`~repro.runtime.evaluator.EvaluatorPool`
and gpNet-builder cache on the unpickled context — caches accelerate
repeat placements but never change deterministic values, so they are
free to diverge between workers.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass

import numpy as np

from ..telemetry import metrics, span
from .pool import get_context, task_rng

__all__ = [
    "BatchContext",
    "EpisodePayload",
    "EpisodeRollout",
    "RoundSnapshot",
    "rollout_episode",
    "write_snapshot",
]

# Appended to (root, slot) for the episode's noise stream, keeping it
# independent of the rollout stream that drives action sampling and the
# initial placement.
_NOISE_SUBSTREAM = 1


@dataclass(frozen=True)
class RoundSnapshot:
    """One round's weight snapshot, broadcast by file reference.

    The trainer writes the round's weights to disk once and every slot
    payload carries only this tiny reference — previously each of the K
    payloads pickled the *full* state dict, shipping K copies of the
    weights per round through the pool (a per-task pickle of what is
    semantically per-round broadcast state).  Workers unpickle the file
    once per round (cached by ``version`` on the broadcast context), so
    per-round weight transfer is O(workers), not O(batch size).
    """

    path: str
    version: int  # round counter; invalidates the worker-side cache


def write_snapshot(
    state: dict[str, np.ndarray], directory: str, version: int
) -> RoundSnapshot:
    """Atomically persist a round snapshot; safe against readers mid-write.

    A single well-known filename is reused across rounds: all of round
    N's tasks complete before the trainer writes round N+1, so the
    replace can never race a reader of the current round.
    """
    path = os.path.join(directory, "snapshot.pkl")
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "wb") as handle:
        pickle.dump(state, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return RoundSnapshot(path=path, version=version)


@dataclass(frozen=True)
class EpisodePayload:
    """One slot of a batched update round."""

    problem_index: int
    root: int  # round-level seed drawn from the trainer's main rng
    slot: int  # position within the round; rng = task_rng(root, slot)
    snapshot: RoundSnapshot  # weight snapshot the episode runs against


@dataclass(frozen=True)
class EpisodeRollout:
    """What a slot sends back: its gradient and episode statistics."""

    slot: int
    grads: list  # per-parameter arrays (None where a parameter got no grad)
    grad_norm: float
    initial_value: float
    final_value: float
    best_value: float
    total_reward: float


class BatchContext:
    """Broadcast state for batched training workers.

    Pickled once per pool; the replica agent inside is a private copy in
    every worker (and in the inline path), so loading snapshots and
    reseeding its rng never touches the trainer's live agent.  The
    evaluator pool and builder cache are worker-local and rebuilt empty
    after unpickling.
    """

    def __init__(self, problems, objective, config, agent) -> None:
        self.problems = list(problems)
        self.objective = objective
        self.config = config
        self.agent = agent
        self._evaluators = None
        self._builders: dict[int, object] | None = None
        self._snapshot: tuple[int, dict] | None = None

    def __getstate__(self):
        return {
            "problems": self.problems,
            "objective": self.objective,
            "config": self.config,
            "agent": self.agent,
        }

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._evaluators = None
        self._builders = None
        self._snapshot = None

    def load_snapshot(self, snapshot: RoundSnapshot) -> dict:
        """The round's weights, unpickled once per (worker, round)."""
        if self._snapshot is None or self._snapshot[0] != snapshot.version:
            with open(snapshot.path, "rb") as handle:
                self._snapshot = (snapshot.version, pickle.load(handle))
        return self._snapshot[1]

    def evaluator_for(self, problem):
        from ..runtime.evaluator import EvaluatorPool

        if self._evaluators is None:
            self._builders = {}
            # Same lockstep pairing as ReinforceTrainer: when the pool's
            # LRU drops a problem, the matching builder goes with it, so
            # a long problem sweep cannot pin builders forever.
            self._evaluators = EvaluatorPool(
                self.objective,
                on_evict=lambda pid, _ev: self._builders.pop(pid, None),
            )
        return self._evaluators.get(problem)

    def builder_for(self, problem):
        from ..core.features import GpNetBuilder

        # Touch the evaluator first so the pair ages on one access pattern.
        self.evaluator_for(problem)
        builder = self._builders.get(id(problem))
        if builder is None:
            builder = GpNetBuilder(problem, self.config.feature_config)
            self._builders[id(problem)] = builder
        return builder


def rollout_episode(payload: EpisodePayload) -> EpisodeRollout:
    """Collect one episode against snapshot weights; return its gradient."""
    from ..core.env import PlacementEnv
    from ..core.reinforce import collect_episode, episode_loss
    from ..runtime.evaluator import PlacementEvaluator

    ctx: BatchContext = get_context()
    cfg = ctx.config
    agent = ctx.agent
    agent.load_state_dict(ctx.load_snapshot(payload.snapshot))
    rng = task_rng(payload.root, payload.slot)
    agent.rng = rng

    problem = ctx.problems[payload.problem_index]
    objective = ctx.objective
    if getattr(objective, "deterministic", False):
        evaluator = ctx.evaluator_for(problem)
    else:
        # Noise-resampling mode: the episode scores against an objective
        # copy whose noise stream derives from the slot's identity, so
        # realizations are independent across episodes yet bit-identical
        # for any worker count.  Sampled values must never enter a shared
        # cache, so the evaluator is private to the episode (its noise-free
        # timeline cache still serves gpNet features within the episode).
        objective = objective.reseeded(
            task_rng(payload.root, payload.slot, _NOISE_SUBSTREAM)
        )
        evaluator = PlacementEvaluator(problem, objective)
    env = PlacementEnv(
        problem,
        objective,
        episode_length=cfg.episode_length,
        feature_config=cfg.feature_config,
        evaluator=evaluator,
        builder=ctx.builder_for(problem),
    )
    with span("reinforce.episode"):
        log_probs, rewards, initial_value, final_value, best_value = collect_episode(
            agent, env, rng
        )
        loss = episode_loss(log_probs, rewards, cfg)
        agent.zero_grad()
        loss.backward()
    metrics().counter("reinforce.episodes").inc()

    grads: list = []
    sq_total = 0.0
    for param in agent.parameters():
        if param.grad is None:
            grads.append(None)
        else:
            grad = param.grad.copy()
            grads.append(grad)
            sq_total += float((grad**2).sum())
    return EpisodeRollout(
        slot=payload.slot,
        grads=grads,
        grad_norm=float(np.sqrt(sq_total)),
        initial_value=initial_value,
        final_value=final_value,
        best_value=best_value,
        total_reward=float(sum(rewards)),
    )
