"""Seed-deterministic multiprocess fan-out.

:class:`WorkerPool` executes a list of tasks — ``(module-level fn,
picklable payload)`` pairs — across N worker processes and returns the
results **in task order**, so callers see identical output regardless of
how the OS interleaves worker completion.

Determinism contract
--------------------
A task's result must be a pure function of its payload and the pool's
``context``.  In particular:

* every random draw inside a task must come from a stream derived from
  the task's own identity, e.g. ``task_rng(seed, task_index)`` — never
  from a generator shared across tasks;
* tasks must not communicate through mutable shared state (each worker
  holds its own unpickled copy of the context, and ``workers=1`` runs
  against a private copy as well);
* worker-local caches (evaluator pools, feature builders) may be kept on
  the context for speed, but must not change computed values.

Under this contract ``pool.map(fn, payloads)`` is bit-identical for any
worker count — the property the determinism suite in
``tests/parallel/`` locks in.

The context object is pickled once per pool and broadcast to every
worker through the pool initializer (cheap relative to per-task
shipping); ``workers=1`` runs tasks inline against a pickled private
copy of the context, so the serial path exercises the exact code a
worker would run.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Any, Callable, Iterable, Sequence, TypeVar

import numpy as np

from ..telemetry import spans as _telemetry

__all__ = [
    "WorkerPool",
    "get_context",
    "task_rng",
    "available_workers",
    "resolve_workers",
    "fanout",
]

_T = TypeVar("_T")

# Per-process broadcast slot: set once per worker by the pool
# initializer, or swapped around each inline map() call.
_CONTEXT: Any = None


def get_context() -> Any:
    """The current pool's broadcast context (``None`` outside a task)."""
    return _CONTEXT


def _install_context(payload: bytes) -> None:
    global _CONTEXT
    _CONTEXT = pickle.loads(payload)


def task_rng(*key: int) -> np.random.Generator:
    """Independent RNG stream for one task: ``default_rng([*key])``.

    Keys are fed to :class:`numpy.random.SeedSequence`, so distinct key
    tuples give statistically independent streams and the same tuple
    always reproduces the same stream — the backbone of worker-count
    independence.
    """
    return np.random.default_rng(list(key))


def available_workers() -> int:
    """CPUs this process may run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class _TaskShipment:
    """Worker task result + the telemetry it recorded, shipped together."""

    __slots__ = ("result", "delta")

    def __init__(self, result: Any, delta: _telemetry.TaskDelta) -> None:
        self.result = result
        self.delta = delta


def _invoke(item: tuple[Callable[[Any], Any], Any]) -> Any:
    fn, payload = item
    token = _telemetry.begin_task()
    if token is None:
        return fn(payload)
    result = fn(payload)
    return _TaskShipment(result, _telemetry.end_task(token))


class WorkerPool:
    """Ordered, context-broadcasting process pool.

    Parameters
    ----------
    workers: process count.  ``1`` (the default) runs tasks inline in
        the calling process — no subprocesses, no pickling of payloads —
        but still against a pickled private copy of ``context`` so
        inline and multiprocess execution share one code path.
    context: arbitrary picklable object broadcast to every worker once;
        tasks read it back with :func:`get_context`.

    Worker processes are forked where available (Linux), falling back to
    the spawn start method elsewhere; task functions must be module-level
    (picklable by reference) either way.
    """

    def __init__(self, workers: int = 1, context: Any = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._payload = pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL)
        self._pool = None
        self._inline_context: Any = None
        if workers > 1:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - platforms without fork
                ctx = multiprocessing.get_context("spawn")
            self._pool = ctx.Pool(
                workers, initializer=_install_context, initargs=(self._payload,)
            )
        else:
            # Unpickled once, like a worker would: worker-local caches on
            # the context survive across map() calls in inline mode too.
            self._inline_context = pickle.loads(self._payload)

    def map(self, fn: Callable[[Any], _T], payloads: Iterable[Any]) -> list[_T]:
        """Run ``fn`` over ``payloads``; results in payload order."""
        items = list(payloads)
        if self._pool is None:
            global _CONTEXT
            saved = _CONTEXT  # reentrant: a task may itself open a pool
            _CONTEXT = self._inline_context
            try:
                return [fn(p) for p in items]
            finally:
                _CONTEXT = saved
        shipped = self._pool.map(_invoke, [(fn, p) for p in items], chunksize=1)
        results = []
        for entry in shipped:
            if isinstance(entry, _TaskShipment):
                _telemetry.merge_task_delta(entry.delta)
                entry = entry.result
            results.append(entry)
        return results

    def close(self) -> None:
        """Shut down worker processes (no-op inline)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def resolve_workers(workers: int | None) -> int:
    """``None``/``0`` -> all available CPUs; otherwise the given count."""
    if workers is None or workers == 0:
        return available_workers()
    if workers < 1:
        raise ValueError("workers must be >= 1 (or 0/None for all CPUs)")
    return workers


def fanout(
    fn: Callable[[Any], _T],
    payloads: Iterable[Any],
    workers: int | None = 1,
    context: Any = None,
) -> list[_T]:
    """One-shot ordered fan-out: ``WorkerPool`` sized to the task list.

    Convenience wrapper for the common experiment-grid shape — build a
    context, map a module-level ``fn`` over payloads, tear the pool down.
    Never spawns more processes than there are tasks, and inherits the
    pool's determinism contract: results are in payload order and
    bit-identical for any worker count.
    """
    items = list(payloads)
    count = min(resolve_workers(workers), max(len(items), 1))
    with WorkerPool(count, context=context) as pool:
        return pool.map(fn, items)
