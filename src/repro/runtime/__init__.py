"""Runtime subsystem: batched + caching placement scoring.

:class:`PlacementEvaluator` is the single scoring path used by the env,
search, training, baselines and the experiment harness; it combines an
LRU placement cache, a shared noise-free timeline cache and the
vectorized :class:`FastSimulator` fast path.
"""

from .evaluator import EvaluatorPool, EvaluatorStats, PlacementEvaluator
from .fastsim import FastSimulator

__all__ = ["EvaluatorPool", "EvaluatorStats", "PlacementEvaluator", "FastSimulator"]
