"""PlacementEvaluator: the single scoring path for placements.

Owns one (graph, network, objective) triple and funnels every
ρ(M | G, N) evaluation in the codebase — env steps, search episodes,
training, baselines, experiment sweeps — through one object that can
amortize work the per-call path cannot:

* an LRU placement → value cache, bypassed when the objective declares
  itself non-deterministic (noisy objectives must re-sample per call);
* an LRU placement → timeline cache of noise-free schedules, shared
  between the makespan objective and gpNet feature construction (the
  seed code simulated the same placement twice per env step);
* a vectorized :meth:`evaluate_many` batch API riding the NumPy
  fast-path simulator of :mod:`repro.runtime.fastsim`, falling back to
  the exact per-call objective for noisy/unknown objectives.

Deterministic-path values are bit-identical to the seed scoring path
(``Objective.evaluate`` through :func:`repro.sim.executor.simulate`);
see ``tests/runtime/test_evaluator.py``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.placement import PlacementProblem
from ..sim.executor import SimResult
from ..sim.objectives import MakespanObjective, Objective
from ..telemetry import metrics, span, traced
from .fastsim import FastSimulator

__all__ = ["EvaluatorStats", "PlacementEvaluator", "EvaluatorPool", "coalesce_evaluate"]


@dataclass
class EvaluatorStats:
    """Counters describing where evaluations were served from.

    ``evaluations`` counts scored placements (a batch of B counts B);
    ``cache_hits``/``cache_misses`` partition the deterministic lookups;
    ``fast_path`` / ``exact_path`` partition the actual computations
    (fast NumPy simulator vs. the per-call objective).
    """

    evaluations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    fast_path: int = 0
    exact_path: int = 0
    batch_calls: int = 0
    timeline_hits: int = 0
    timeline_misses: int = 0

    @property
    def hit_rate(self) -> float:
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    def merge(self, other: "EvaluatorStats") -> "EvaluatorStats":
        """Accumulate ``other`` into self (for sweep-level aggregation)."""
        for name in (
            "evaluations",
            "cache_hits",
            "cache_misses",
            "fast_path",
            "exact_path",
            "batch_calls",
            "timeline_hits",
            "timeline_misses",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def as_dict(self) -> dict[str, float]:
        return {
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "fast_path": self.fast_path,
            "exact_path": self.exact_path,
            "batch_calls": self.batch_calls,
            "timeline_hits": self.timeline_hits,
            "timeline_misses": self.timeline_misses,
        }


class PlacementEvaluator:
    """Batched, caching scorer for one (problem, objective) pair.

    Parameters
    ----------
    problem: the (G, N) instance every placement is scored against.
    objective: performance criterion ρ; its ``deterministic`` flag
        (see :mod:`repro.sim.objectives`) decides cache eligibility.
    cache_size: LRU capacity of the placement → value cache.
    timeline_cache_size: LRU capacity of the timeline cache (defaults
        to min(cache_size, 512): a SimResult is orders of magnitude
        heavier than a float, and timelines are only re-read within a
        search episode's working set).
    """

    def __init__(
        self,
        problem: PlacementProblem,
        objective: Objective,
        cache_size: int = 4096,
        timeline_cache_size: int | None = None,
    ) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if timeline_cache_size is None:
            timeline_cache_size = min(cache_size, 512)
        if timeline_cache_size < 1:
            raise ValueError("timeline_cache_size must be >= 1")
        self.problem = problem
        self.objective = objective
        self.cache_size = cache_size
        self.timeline_cache_size = timeline_cache_size
        # Unknown objectives conservatively count as non-deterministic:
        # caching a sampled value would silently freeze its noise.
        self.deterministic = bool(getattr(objective, "deterministic", False))
        # Exact type check, not isinstance: a MakespanObjective subclass
        # may override evaluate() (e.g. makespan + penalty), and routing
        # it through the plain-makespan fast path would silently drop the
        # override.  Subclasses still cache via the exact-evaluate path.
        self._is_makespan = type(objective) is MakespanObjective
        self._sim = FastSimulator(problem)
        self._values: OrderedDict[tuple[int, ...], float] = OrderedDict()
        self._timelines: OrderedDict[tuple[int, ...], SimResult] = OrderedDict()
        self.stats = EvaluatorStats()

    # -- timelines --------------------------------------------------------------------

    def timeline(self, placement: Sequence[int]) -> SimResult:
        """Noise-free schedule of ``placement`` (expectation timeline).

        Always deterministic regardless of the objective's noise — this
        is the timeline gpNet features are measured against — so it is
        always cached.
        """
        key = self.problem.validate_placement(placement)
        cached = self._timelines.get(key)
        if cached is not None:
            self._timelines.move_to_end(key)
            self.stats.timeline_hits += 1
            return cached
        self.stats.timeline_misses += 1
        with span("evaluator.sim"):
            result = self._sim.run(key, validate=False)
        self._store(self._timelines, key, result)
        return result

    # -- scoring ----------------------------------------------------------------------

    def evaluate(self, placement: Sequence[int]) -> float:
        """Score one placement; cached when the objective allows it."""
        key = self.problem.validate_placement(placement)
        self.stats.evaluations += 1
        if not self.deterministic:
            self.stats.exact_path += 1
            return self.objective.evaluate(self.problem.cost_model, key)
        cached = self._values.get(key)
        if cached is not None:
            self._values.move_to_end(key)
            self.stats.cache_hits += 1
            return cached
        self.stats.cache_misses += 1
        value = self._compute(key)
        self._store(self._values, key, value)
        return value

    @traced("evaluator.batch")
    def evaluate_many(self, placements: Sequence[Sequence[int]]) -> np.ndarray:
        """Score a batch; identical to ``[evaluate(p) for p in placements]``.

        On the deterministic makespan path the uncached placements'
        compute/communication costs are realized in one vectorized NumPy
        pass before the per-placement event replay.
        """
        self.stats.batch_calls += 1
        keys = [self.problem.validate_placement(p) for p in placements]
        if not keys:
            return np.zeros(0, dtype=np.float64)
        self.stats.evaluations += len(keys)
        metrics().histogram("evaluator.batch_size").observe(len(keys))
        if not self.deterministic:
            self.stats.exact_path += len(keys)
            cm = self.problem.cost_model
            with span("evaluator.exact"):
                return np.array(
                    [self.objective.evaluate(cm, k) for k in keys], dtype=np.float64
                )

        values = np.empty(len(keys), dtype=np.float64)
        misses: dict[tuple[int, ...], list[int]] = {}
        for i, key in enumerate(keys):
            cached = self._values.get(key)
            if cached is not None:
                self._values.move_to_end(key)
                self.stats.cache_hits += 1
                values[i] = cached
            else:
                misses.setdefault(key, []).append(i)

        if misses:
            todo = list(misses)
            # Within-batch duplicates are computed once: the first
            # occurrence is a miss, every repeat a (warming-cache) hit.
            self.stats.cache_misses += len(todo)
            self.stats.cache_hits += sum(len(ix) - 1 for ix in misses.values())
            if self._is_makespan:
                with span("evaluator.sim"):
                    batch = np.array(todo, dtype=np.int64)
                    compute, comm = self._sim.batch_costs(batch)
                    self.stats.fast_path += len(todo)
                    for j, key in enumerate(todo):
                        result = self._sim.run(
                            key, compute=compute[j], comm=comm[j], validate=False
                        )
                        # Only the scalar goes in the cache: batch callers
                        # score one-shot candidates, and retaining a
                        # SimResult per batch miss would churn the (heavier)
                        # timeline LRU that timeline() consumers rely on.
                        self._store(self._values, key, result.makespan)
                        values[misses[key]] = result.makespan
            else:
                cm = self.problem.cost_model
                self.stats.exact_path += len(todo)
                with span("evaluator.exact"):
                    for key in todo:
                        value = self.objective.evaluate(cm, key)
                        self._store(self._values, key, value)
                        values[misses[key]] = value
        return values

    # -- internals --------------------------------------------------------------------

    def _compute(self, key: tuple[int, ...]) -> float:
        if self._is_makespan:
            # Shares the timeline cache with gpNet feature construction.
            self.stats.fast_path += 1
            return self.timeline(key).makespan
        self.stats.exact_path += 1
        return self.objective.evaluate(self.problem.cost_model, key)

    def _store(self, cache: OrderedDict, key: tuple[int, ...], value) -> None:
        cache[key] = value
        cache.move_to_end(key)
        cap = self.timeline_cache_size if cache is self._timelines else self.cache_size
        if len(cache) > cap:
            cache.popitem(last=False)

    def clear_cache(self) -> None:
        """Drop cached values/timelines (stats are kept)."""
        self._values.clear()
        self._timelines.clear()


def coalesce_evaluate(
    requests: Sequence[tuple[PlacementEvaluator, Sequence[int]]],
) -> list[float]:
    """Score mixed-evaluator requests through one batch per evaluator.

    The request-batching primitive of the serve runtime: concurrent
    requests against the same (problem, objective) coalesce into a
    single :meth:`PlacementEvaluator.evaluate_many` call (one fast-path
    cost realization instead of N), while requests against different
    problems stay independent.  Values come back in request order and
    are identical to calling ``evaluator.evaluate(placement)`` one by
    one — batching changes speed, never values.
    """
    groups: dict[int, tuple[PlacementEvaluator, list[int], list[Sequence[int]]]] = {}
    for i, (evaluator, placement) in enumerate(requests):
        entry = groups.get(id(evaluator))
        if entry is None:
            groups[id(evaluator)] = entry = (evaluator, [], [])
        entry[1].append(i)
        entry[2].append(placement)
    out = [0.0] * len(requests)
    for evaluator, indices, placements in groups.values():
        values = evaluator.evaluate_many(placements)
        for i, value in zip(indices, values):
            out[i] = float(value)
    return out


class EvaluatorPool:
    """Per-problem :class:`PlacementEvaluator` memo for one objective.

    Trainers sweep a problem distribution episode by episode; the pool
    hands every episode of the same problem instance the same evaluator
    so its caches keep paying off.  Keyed by object identity (the pool
    holds the problem alive, so ids cannot be recycled underneath it).

    The pool itself is LRU-bounded by ``max_problems`` so a long sweep
    over a large problem distribution cannot pin one cache-laden
    evaluator per instance forever; evicted problems simply start with
    cold caches if they come around again (their stats are folded into
    the pool's aggregate first).
    """

    def __init__(
        self,
        objective: Objective,
        cache_size: int = 4096,
        max_problems: int = 128,
        on_evict: "Callable[[int, PlacementEvaluator], None] | None" = None,
    ) -> None:
        if max_problems < 1:
            raise ValueError("max_problems must be >= 1")
        self.objective = objective
        self.cache_size = cache_size
        self.max_problems = max_problems
        # Called as on_evict(problem_id, evaluator) when the LRU drops a
        # problem — owners of sibling per-problem caches (e.g. the
        # trainer's gpNet builders) use it to evict their half in
        # lockstep instead of aging out on a different access pattern.
        self.on_evict = on_evict
        self._by_problem: OrderedDict[int, PlacementEvaluator] = OrderedDict()
        self._evicted_stats = EvaluatorStats()

    def get(self, problem: PlacementProblem) -> PlacementEvaluator:
        """The shared evaluator for ``problem`` (created on first use)."""
        evaluator = self._by_problem.get(id(problem))
        if evaluator is not None:
            self._by_problem.move_to_end(id(problem))
            return evaluator
        evaluator = PlacementEvaluator(problem, self.objective, self.cache_size)
        self._by_problem[id(problem)] = evaluator
        if len(self._by_problem) > self.max_problems:
            evicted_id, evicted = self._by_problem.popitem(last=False)
            self._evicted_stats.merge(evicted.stats)
            if self.on_evict is not None:
                self.on_evict(evicted_id, evicted)
        return evaluator

    def __contains__(self, problem: PlacementProblem) -> bool:
        return id(problem) in self._by_problem

    def stats(self) -> EvaluatorStats:
        """Counters aggregated across every evaluator the pool has seen."""
        total = EvaluatorStats()
        total.merge(self._evicted_stats)
        for evaluator in self._by_problem.values():
            total.merge(evaluator.stats)
        return total

    def __len__(self) -> int:
        return len(self._by_problem)
