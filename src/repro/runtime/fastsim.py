"""Vectorized fast path for noise-free placement simulation.

:func:`repro.sim.executor.simulate` drives a generic event loop through
per-event Python closures and per-call :class:`~repro.sim.latency.CostModel`
lookups.  On the deterministic path (noise == 0) every duration is known
up front, so this module precomputes all compute/communication times as
NumPy gathers — batched across whole placement sets — and replays the
*identical* event sequence with an inlined loop over plain tuples.

The event ordering (a priority queue keyed on (time, schedule-sequence))
is reproduced exactly, so the resulting :class:`SimResult` — and in
particular the makespan — is bit-identical to the exact executor.  This
invariant is property-tested in ``tests/runtime/test_evaluator.py``.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Sequence

import numpy as np

from ..core.placement import PlacementProblem
from ..sim.executor import SimResult

__all__ = ["FastSimulator"]

# Event kinds, mirroring the executor's callbacks.  At equal timestamps the
# heap falls back to the schedule sequence number, never the kind, exactly
# like repro.sim.engine.Simulation.
_ENQUEUE, _DONE, _ARRIVAL = 0, 1, 2


class FastSimulator:
    """Noise-free simulator for one problem instance with batched costs.

    Precomputes the static structure (edge list, parent counts, entry
    tasks) once, then serves :meth:`run` per placement and
    :meth:`batch_costs` for vectorized cost realization over many
    placements at once.
    """

    def __init__(self, problem: PlacementProblem) -> None:
        self.problem = problem
        graph = problem.graph
        cm = problem.cost_model
        n = graph.num_tasks

        self._num_tasks = n
        self._num_devices = problem.network.num_devices
        self._entries = tuple(graph.entries)
        self._num_parents = tuple(len(graph.parents[i]) for i in range(n))
        # Edge arrays in graph.edges iteration order; children as
        # (child, edge_index) pairs in graph.children order (identical —
        # both derive from the edge-dict insertion order).
        edge_index = {edge: k for k, edge in enumerate(graph.edges)}
        self._edges = tuple(graph.edges)
        self._edge_src = np.array([u for (u, _) in self._edges], dtype=np.int64)
        self._edge_dst = np.array([v for (_, v) in self._edges], dtype=np.int64)
        self._edge_data = np.array([graph.edges[e] for e in self._edges], dtype=np.float64)
        self._children = tuple(
            tuple((j, edge_index[(i, j)]) for j in graph.children[i]) for i in range(n)
        )
        self._W = cm.W
        self._delay = problem.network.delay
        # Same 1/BW form as CostModel: exact zeros on infinite-bandwidth links.
        with np.errstate(divide="ignore"):
            self._inv_bw = np.where(
                np.isinf(problem.network.bandwidth), 0.0, 1.0 / problem.network.bandwidth
            )
        self._task_range = np.arange(n)

    # -- cost realization -----------------------------------------------------------

    def batch_costs(self, placements: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Expected durations for a (B, n) batch of placements.

        Returns ``(compute, comm)`` with shapes (B, n) and (B, num_edges):
        the exact values the executor would obtain from
        ``CostModel.compute_time`` / ``comm_time`` at noise 0.
        """
        placements = np.asarray(placements, dtype=np.int64)
        if placements.ndim == 1:
            placements = placements[None, :]
        compute = self._W[self._task_range, placements]
        src_dev = placements[:, self._edge_src]
        dst_dev = placements[:, self._edge_dst]
        # delay + B/BW; both terms are exactly 0.0 for co-located pairs
        # (zero diagonal delay, zero inverse bandwidth), matching the
        # src == dst short-circuit in CostModel.comm_time.
        comm = self._delay[src_dev, dst_dev] + self._edge_data * self._inv_bw[src_dev, dst_dev]
        return compute, comm

    # -- simulation -------------------------------------------------------------------

    def run(
        self,
        placement: Sequence[int],
        compute: np.ndarray | None = None,
        comm: np.ndarray | None = None,
        validate: bool = True,
    ) -> SimResult:
        """Simulate ``placement`` exactly; returns the executor's timeline.

        ``compute`` / ``comm`` may carry one row of :meth:`batch_costs`
        to reuse a batched realization; otherwise they are computed here.
        """
        if validate:
            placement = self.problem.validate_placement(placement)
        else:
            placement = tuple(int(d) for d in placement)
        if compute is None or comm is None:
            compute_b, comm_b = self.batch_costs(np.array(placement, dtype=np.int64))
            compute, comm = compute_b[0], comm_b[0]
        durations = compute.tolist()
        delays = comm.tolist()

        n, m = self._num_tasks, self._num_devices
        start = [0.0] * n
        finish = [-1.0] * n
        started = [False] * n
        pending = list(self._num_parents)
        queues: list[deque[int]] = [deque() for _ in range(m)]
        busy = [False] * m
        device_last_finish = [0.0] * m
        arrival: dict[tuple[int, int], float] = {}
        children = self._children
        edges = self._edges

        heap: list[tuple[float, int, int, int]] = []
        seq = 0
        for entry in self._entries:
            heappush(heap, (0.0, seq, _ENQUEUE, entry))
            seq += 1

        while heap:
            now, _, kind, payload = heappop(heap)
            if kind == _DONE:
                # payload is the finished task; free its device, fan out
                # sends to children, then dispatch the next queued task.
                task = payload
                device = placement[task]
                finish[task] = now
                device_last_finish[device] = now
                busy[device] = False
                for child, edge_idx in children[task]:
                    heappush(heap, (now + delays[edge_idx], seq, _ARRIVAL, edge_idx))
                    seq += 1
                queue = queues[device]
                if queue:
                    nxt = queue.popleft()
                    busy[device] = True
                    start[nxt] = now
                    started[nxt] = True
                    heappush(heap, (now + durations[nxt], seq, _DONE, nxt))
                    seq += 1
                continue
            if kind == _ARRIVAL:
                edge = edges[payload]
                arrival[edge] = now
                task = edge[1]
                pending[task] -= 1
                if pending[task] != 0:
                    continue
                # fall through: the child becomes runnable — enqueue it.
            else:
                task = payload
            device = placement[task]
            if busy[device]:
                queues[device].append(task)
            else:
                busy[device] = True
                start[task] = now
                started[task] = True
                heappush(heap, (now + durations[task], seq, _DONE, task))
                seq += 1

        if not all(started):
            missing = [i for i in range(n) if not started[i]]
            raise RuntimeError(f"simulation deadlock: tasks {missing} never ran")

        start_arr = np.array(start)
        finish_arr = np.array(finish)
        makespan = float(finish_arr.max() - start_arr.min())
        return SimResult(
            makespan=makespan,
            start=start_arr,
            finish=finish_arr,
            arrival=arrival,
            device_last_finish=np.array(device_last_finish),
            placement=placement,
        )
