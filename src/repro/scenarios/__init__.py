"""Scenario engine: declarative dynamic-cluster scenarios + replay.

The adaptive side of GiPH as a subsystem: :class:`ScenarioSpec` declares
a workload stream, a network timeline and an objective;
:class:`ScenarioRegistry` names the built-in presets; and
:class:`ScenarioRunner` streams the materialized events through any
placement policy, emitting per-step :class:`AdaptationReport`s.

>>> from repro.scenarios import DEFAULT_REGISTRY, ScenarioRunner
>>> from repro.baselines import RandomTaskEftPolicy
>>> spec = DEFAULT_REGISTRY.get("edge-churn", seed=0)
>>> result = ScenarioRunner(spec).run({"task-eft": RandomTaskEftPolicy()})
>>> len(result.reports["task-eft"].steps) == result.materialized.num_events
True
"""

from .events import MaterializedScenario, ScenarioEvent, describe_events, materialize
from .registry import DEFAULT_REGISTRY, ScenarioRegistry, default_registry
from .report import AdaptationReport, StepRecord, format_adaptation_table
from .runner import ScenarioResult, ScenarioRunner, replay_scenarios
from .spec import ClusterSpec, RelocationSpec, ScenarioSpec, WorkloadSpec

__all__ = [
    "ScenarioSpec",
    "WorkloadSpec",
    "ClusterSpec",
    "RelocationSpec",
    "ScenarioEvent",
    "MaterializedScenario",
    "materialize",
    "describe_events",
    "ScenarioRegistry",
    "default_registry",
    "DEFAULT_REGISTRY",
    "ScenarioRunner",
    "ScenarioResult",
    "replay_scenarios",
    "AdaptationReport",
    "StepRecord",
    "format_adaptation_table",
]
