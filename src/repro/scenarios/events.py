"""Deterministic materialization of a scenario's event stream.

:func:`materialize` expands a :class:`~repro.scenarios.spec.ScenarioSpec`
into concrete objects — the initial network, the initial task graphs,
and an ordered tuple of :class:`ScenarioEvent`s — using a single rng
seeded from the spec.  The stream is fully realized up front (graphs
included), so replaying it is independent of how policies behave and two
materializations of the same spec are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..devices.dynamics import network_churn
from ..devices.generator import DeviceNetworkParams, generate_device_network
from ..devices.network import DeviceNetwork
from ..graphs.generator import TaskGraphParams, generate_task_graph
from ..graphs.task_graph import TaskGraph
from .spec import ScenarioSpec

__all__ = ["ScenarioEvent", "MaterializedScenario", "materialize"]

#: kinds that alter the device network (vs. "arrival" which adds workload)
NETWORK_KINDS = ("add", "remove", "bandwidth-drift", "compute-slowdown")


@dataclass(frozen=True)
class ScenarioEvent:
    """One change the placement policies must adapt to.

    ``network`` is the cluster state *after* the event.  ``graph`` is
    set for ``"arrival"`` events; ``uid``/``factor`` for churn kinds
    (see :class:`repro.devices.ChurnEvent`).
    """

    index: int
    step: int
    kind: str
    network: DeviceNetwork
    graph: TaskGraph | None = None
    uid: int | None = None
    factor: float | None = None

    @property
    def is_network_event(self) -> bool:
        return self.kind in NETWORK_KINDS


@dataclass(frozen=True)
class MaterializedScenario:
    """Concrete replayable form of a spec."""

    spec: ScenarioSpec
    initial_network: DeviceNetwork
    initial_graphs: tuple[TaskGraph, ...]
    events: tuple[ScenarioEvent, ...]

    @property
    def num_events(self) -> int:
        return len(self.events)


def _graph_params(spec: ScenarioSpec) -> TaskGraphParams:
    return TaskGraphParams(
        num_tasks=spec.workload.num_tasks,
        connect_prob=spec.workload.connect_prob,
        constraint_prob=spec.workload.constraint_prob,
    )


def materialize(spec: ScenarioSpec) -> MaterializedScenario:
    """Expand ``spec`` into its initial state and ordered event stream.

    Draw order (one rng, seeded by ``spec.seed``): network, initial
    graphs, arrival graphs (by arrival order), churn stream.  Arrivals
    scheduled at step *s* fire before the churn change of step *s*; a
    churn event's ``step`` is its (1-based) scenario step.
    """
    rng = np.random.default_rng(spec.seed)
    network = generate_device_network(
        DeviceNetworkParams(
            num_devices=spec.cluster.num_devices,
            support_prob=spec.cluster.support_prob,
            mean_speed=spec.cluster.mean_speed,
            mean_bandwidth=spec.cluster.mean_bandwidth,
            mean_delay=spec.cluster.mean_delay,
        ),
        rng,
        name=f"{spec.name}-net",
    )
    graph_params = _graph_params(spec)
    initial_graphs = tuple(
        generate_task_graph(graph_params, rng, name=f"{spec.name}-g{i}")
        for i in range(spec.workload.initial_graphs)
    )

    arrivals_by_step: dict[int, list[TaskGraph]] = {}
    serial = len(initial_graphs)
    for step, count in sorted(spec.workload.arrivals):
        bucket = arrivals_by_step.setdefault(step, [])
        for _ in range(count):
            bucket.append(generate_task_graph(graph_params, rng, name=f"{spec.name}-g{serial}"))
            serial += 1

    churn_by_step = {
        event.step + 1: event for event in network_churn(network, spec.churn, rng)
    }

    events: list[ScenarioEvent] = []
    current = network
    for step in range(1, spec.num_steps + 1):
        for graph in arrivals_by_step.get(step, ()):
            events.append(
                ScenarioEvent(index=len(events), step=step, kind="arrival", network=current, graph=graph)
            )
        churn = churn_by_step.get(step)
        if churn is not None:
            current = churn.network
            events.append(
                ScenarioEvent(
                    index=len(events),
                    step=step,
                    kind=churn.kind,
                    network=current,
                    uid=churn.uid,
                    factor=churn.factor,
                )
            )
    return MaterializedScenario(
        spec=spec,
        initial_network=network,
        initial_graphs=initial_graphs,
        events=tuple(events),
    )


def describe_events(events: Iterable[ScenarioEvent]) -> list[str]:
    """Human-readable one-liners for an event stream (CLI / debugging)."""
    lines = []
    for e in events:
        if e.kind == "arrival":
            detail = f"graph {e.graph.name} ({e.graph.num_tasks} tasks)"
        elif e.kind in ("bandwidth-drift", "compute-slowdown"):
            detail = f"device {e.uid} x{e.factor:.2f}"
        else:
            detail = f"device {e.uid}"
        lines.append(
            f"step {e.step:3d}  {e.kind:<17s} {detail}  "
            f"[{e.network.num_devices} devices]"
        )
    return lines
