"""Named scenario presets and the registry that serves them.

The presets cover the qualitative families the paper motivates —
stable serving, Fig. 6-style churn, soft degradation (bandwidth and
compute), bursty workload arrival, a traffic-case-study-shaped edge
cluster, an adversarial timeline that keeps knocking out the fastest
device, and an everything-at-once stress mix.  Sizes are deliberately
modest so every preset replays end-to-end in seconds; scale up by
``dataclasses.replace``-ing the spec a registry hands back.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

from ..devices.dynamics import ChurnConfig
from .spec import ClusterSpec, RelocationSpec, ScenarioSpec, WorkloadSpec

__all__ = ["ScenarioRegistry", "DEFAULT_REGISTRY", "default_registry"]


class ScenarioRegistry:
    """Name -> :class:`ScenarioSpec` lookup with list/iterate support."""

    def __init__(self) -> None:
        self._specs: dict[str, ScenarioSpec] = {}

    def register(self, spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
        """Add ``spec`` under its own name; refuses silent overwrites."""
        if not replace and spec.name in self._specs:
            raise ValueError(f"scenario {spec.name!r} already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str, seed: int | None = None) -> ScenarioSpec:
        """Fetch a preset, optionally re-seeded (specs are immutable)."""
        if name not in self._specs:
            known = ", ".join(sorted(self._specs)) or "<none>"
            raise KeyError(f"unknown scenario {name!r}; registered: {known}")
        spec = self._specs[name]
        if seed is not None:
            spec = dataclasses.replace(spec, seed=seed)
        return spec

    def names(self) -> list[str]:
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[ScenarioSpec]:
        for name in self.names():
            yield self._specs[name]


def default_registry() -> ScenarioRegistry:
    """Build the built-in preset registry (a fresh, mutable copy)."""
    registry = ScenarioRegistry()

    registry.register(
        ScenarioSpec(
            name="stable-cluster",
            description=(
                "Static 10-device cluster absorbing a steady trickle of new "
                "applications — the pure serving baseline: no network events, "
                "all adaptation is workload-driven."
            ),
            workload=WorkloadSpec(initial_graphs=3, num_tasks=10, arrivals=((2, 1), (4, 1), (6, 1), (8, 1))),
            cluster=ClusterSpec(num_devices=10, support_prob=0.7),
            churn=ChurnConfig(min_devices=10, max_devices=10, num_changes=0),
        )
    )

    registry.register(
        ScenarioSpec(
            name="edge-churn",
            description=(
                "The paper's Fig. 6 protocol: devices drop out and are replaced "
                "by lower-capacity generations, cluster size bouncing between "
                "8 and 10."
            ),
            workload=WorkloadSpec(initial_graphs=4, num_tasks=10),
            cluster=ClusterSpec(num_devices=10, support_prob=0.7),
            churn=ChurnConfig(min_devices=8, max_devices=10, capacity_decay=0.7, num_changes=10),
        )
    )

    registry.register(
        ScenarioSpec(
            name="bandwidth-degradation",
            description=(
                "Fixed membership, decaying links: every event scales the "
                "bandwidth of one device's links by 0.5-0.9 — placements must "
                "retreat toward communication locality."
            ),
            workload=WorkloadSpec(initial_graphs=4, num_tasks=10),
            cluster=ClusterSpec(num_devices=8, support_prob=0.7),
            churn=ChurnConfig(
                min_devices=8,
                max_devices=8,
                num_changes=8,
                bandwidth_drift_prob=1.0,
                drift_range=(0.5, 0.9),
            ),
        )
    )

    registry.register(
        ScenarioSpec(
            name="compute-brownout",
            description=(
                "Fixed membership, throttling devices: every event slows one "
                "device to 50-90% of its speed (thermal/battery brownouts)."
            ),
            workload=WorkloadSpec(initial_graphs=4, num_tasks=10),
            cluster=ClusterSpec(num_devices=8, support_prob=0.7),
            churn=ChurnConfig(
                min_devices=8,
                max_devices=8,
                num_changes=8,
                compute_slowdown_prob=1.0,
                slowdown_range=(0.5, 0.9),
            ),
        )
    )

    registry.register(
        ScenarioSpec(
            name="flash-crowd",
            description=(
                "A burst of application arrivals (3 then 4 graphs within two "
                "steps) hits a mildly churning cluster — placement throughput "
                "and evaluator reuse dominate."
            ),
            workload=WorkloadSpec(
                initial_graphs=2, num_tasks=8, arrivals=((2, 3), (3, 4), (6, 1))
            ),
            cluster=ClusterSpec(num_devices=10, support_prob=0.7),
            churn=ChurnConfig(min_devices=9, max_devices=10, num_changes=6, capacity_decay=0.9),
        )
    )

    registry.register(
        ScenarioSpec(
            name="traffic-casestudy",
            description=(
                "Shaped after the §5.3 CAV pipeline: a roadside cluster where "
                "vehicle devices stream past — rapid join/leave at near-full "
                "capacity, modest decay, pipelines amortizing relocations at "
                "10 Hz."
            ),
            workload=WorkloadSpec(initial_graphs=3, num_tasks=12, constraint_prob=0.4),
            cluster=ClusterSpec(num_devices=12, support_prob=0.8, mean_delay=2.0),
            churn=ChurnConfig(min_devices=9, max_devices=12, capacity_decay=0.9, num_changes=12),
            relocation=RelocationSpec(
                migration_bytes=16384.0,
                static_init_kbytes=128.0,
                startup_ms=20.0,
                pipeline_frequency_hz=10.0,
            ),
        )
    )

    registry.register(
        ScenarioSpec(
            name="adversarial-hot-device",
            description=(
                "Worst-case soft degradation: every event throttles or "
                "congests the *fastest* remaining device — exactly the one "
                "greedy placements pile onto."
            ),
            workload=WorkloadSpec(initial_graphs=4, num_tasks=10),
            cluster=ClusterSpec(num_devices=8, support_prob=0.7),
            churn=ChurnConfig(
                min_devices=8,
                max_devices=8,
                num_changes=8,
                bandwidth_drift_prob=0.4,
                compute_slowdown_prob=0.6,
                drift_range=(0.3, 0.6),
                slowdown_range=(0.2, 0.5),
                target="fastest",
            ),
        )
    )

    registry.register(
        ScenarioSpec(
            name="mixed-dynamics",
            description=(
                "Everything at once: churn down to half capacity with steep "
                "generation decay, soft degradations, and mid-stream arrivals."
            ),
            workload=WorkloadSpec(initial_graphs=3, num_tasks=10, arrivals=((3, 1), (7, 2))),
            cluster=ClusterSpec(num_devices=10, support_prob=0.7),
            churn=ChurnConfig(
                min_devices=6,
                max_devices=10,
                capacity_decay=0.6,
                num_changes=12,
                bandwidth_drift_prob=0.2,
                compute_slowdown_prob=0.2,
            ),
        )
    )

    return registry


#: The shared read-mostly default registry (CLI, experiments, tests).
DEFAULT_REGISTRY = default_registry()
