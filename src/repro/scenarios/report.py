"""Per-step adaptation accounting emitted by the scenario runner.

An :class:`AdaptationReport` is the scenario-engine analogue of an
experiment report: for one policy replaying one scenario it records, per
event, the achieved objective (and SLR), the regret against a
fresh-search oracle, the migration bill charged by the relocation cost
model, the re-placement latency, and the evaluator cache economics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["StepRecord", "AdaptationReport", "format_adaptation_table"]

#: StepRecord fields that are wall-clock measurements: excluded from the
#: determinism-checked serialization (bit-identical replays still differ
#: in how long they took).
TIMING_FIELDS = ("replace_seconds",)


@dataclass(frozen=True)
class StepRecord:
    """Outcome of re-placing every active graph after one event.

    ``mean_value`` is the raw objective averaged over active graphs;
    ``mean_slr`` normalizes by the CP_MIN lower bound for makespan
    scenarios (and equals ``mean_value`` otherwise).  ``regret`` is
    ``mean_slr - oracle_slr``: how far the adapted placement lags a
    fresh search (HEFT ∧ random-task-EFT) given the same budget.
    """

    index: int
    step: int
    kind: str
    num_graphs: int
    num_devices: int
    mean_value: float
    mean_slr: float
    oracle_slr: float
    regret: float
    migrated_tasks: int
    migration_cost_ms: float
    amortized_migration_ms: float
    replace_seconds: float
    evaluations: int
    cache_hit_rate: float


@dataclass(frozen=True)
class AdaptationReport:
    """One policy's trajectory through one scenario."""

    scenario: str
    policy: str
    seed: int
    objective: str
    steps: tuple[StepRecord, ...]
    evaluator_stats: dict[str, float] = field(default_factory=dict)

    @property
    def mean_slr(self) -> float:
        return float(np.mean([s.mean_slr for s in self.steps])) if self.steps else 0.0

    @property
    def mean_regret(self) -> float:
        return float(np.mean([s.regret for s in self.steps])) if self.steps else 0.0

    @property
    def total_migrated_tasks(self) -> int:
        return int(sum(s.migrated_tasks for s in self.steps))

    @property
    def total_migration_cost_ms(self) -> float:
        return float(sum(s.migration_cost_ms for s in self.steps))

    @property
    def total_replace_seconds(self) -> float:
        return float(sum(s.replace_seconds for s in self.steps))

    def series(self, field_name: str) -> list[float]:
        """One StepRecord field as a time series (e.g. ``"mean_slr"``)."""
        return [getattr(s, field_name) for s in self.steps]

    def as_dict(self, include_timing: bool = False) -> dict[str, Any]:
        """JSON-safe dict; deterministic across replays by default.

        Wall-clock fields (and the stats derived from them) are omitted
        unless ``include_timing`` — they are the only report content two
        bit-identical replays can disagree on.
        """
        steps = []
        for record in self.steps:
            row = {
                name: getattr(record, name)
                for name in record.__dataclass_fields__
                if include_timing or name not in TIMING_FIELDS
            }
            steps.append(row)
        return {
            "scenario": self.scenario,
            "policy": self.policy,
            "seed": self.seed,
            "objective": self.objective,
            "steps": steps,
            "summary": {
                "mean_slr": self.mean_slr,
                "mean_regret": self.mean_regret,
                "total_migrated_tasks": self.total_migrated_tasks,
                # Simulated milliseconds from RelocationCostModel, not wall
                # clock: deterministic per (scenario, policy, seed).
                "total_migration_cost_ms": self.total_migration_cost_ms,  # repro: lint-ok[volatile-key-drift]
                "evaluator_stats": dict(self.evaluator_stats),
            },
        }


def format_adaptation_table(report: AdaptationReport) -> str:
    """Printable per-step trajectory for the CLI."""
    header = (
        f"{'ev':>3s} {'step':>4s} {'kind':<17s} {'dev':>3s} {'G':>2s} "
        f"{'slr':>7s} {'oracle':>7s} {'regret':>7s} {'moved':>5s} "
        f"{'mig(ms)':>8s} {'hit%':>5s}"
    )
    lines = [header, "-" * len(header)]
    for s in report.steps:
        lines.append(
            f"{s.index:>3d} {s.step:>4d} {s.kind:<17s} {s.num_devices:>3d} {s.num_graphs:>2d} "
            f"{s.mean_slr:>7.3f} {s.oracle_slr:>7.3f} {s.regret:>+7.3f} {s.migrated_tasks:>5d} "
            f"{s.migration_cost_ms:>8.2f} {100 * s.cache_hit_rate:>4.0f}%"
        )
    lines.append(
        f"summary[{report.policy}]: mean SLR {report.mean_slr:.3f}, "
        f"mean regret {report.mean_regret:+.3f}, "
        f"{report.total_migrated_tasks} migrations costing "
        f"{report.total_migration_cost_ms:.1f} ms, "
        f"re-placement {report.total_replace_seconds:.2f} s"
    )
    return "\n".join(lines)
