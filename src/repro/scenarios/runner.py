"""Streaming replay engine: policies adapting to a scenario's events.

:class:`ScenarioRunner` materializes a spec once, then replays its event
stream against any number of :class:`~repro.baselines.base.SearchPolicy`
implementations.  Per event it

1. notifies the policy through its ``adapt(event)`` hook,
2. carries each graph's previous placement onto the changed network
   (repairing tasks stranded on removed devices),
3. re-runs the policy's search from that carried placement, reusing the
   per-problem :class:`~repro.runtime.evaluator.PlacementEvaluator`
   through an :class:`~repro.runtime.evaluator.EvaluatorPool` so caches
   survive events that leave the network untouched,
4. charges every task move through the scenario's
   :class:`~repro.sim.relocation.RelocationCostModel`, and
5. records a :class:`~repro.scenarios.report.StepRecord` with the SLR,
   the regret against a fresh-search oracle, and cache statistics.

All replay randomness derives from ``(spec.seed, policy name, event
index)`` and all oracle randomness from ``(spec.seed, oracle key, event
index, graph index)``, so a report is bit-identical across replays,
independent of which other policies run alongside, and independent of
how many workers the oracle's events fan out over.

The per-event state machine itself lives in
:mod:`repro.serve.session` (:class:`~repro.serve.session.PlacementSession`)
so the ``repro serve`` daemon drives the same code; this module keeps
the batch orchestration — oracle series, policy fan-out, grids.  The
session import is deferred to call time because the serve package
imports scenario submodules (deferral breaks the package cycle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..baselines.base import SearchPolicy
from ..core.placement import PlacementProblem
from ..parallel.backends import (
    ExecutionBackend,
    ForkBackend,
    InlineBackend,
    resolve_backend,
)
from ..parallel.pool import get_context as pool_context
from ..runtime.evaluator import EvaluatorPool, PlacementEvaluator
from ..sim.objectives import Objective
from ..sim.relocation import RelocationCostModel
from .events import MaterializedScenario, ScenarioEvent, materialize
from .report import AdaptationReport
from .spec import ScenarioSpec

__all__ = ["ScenarioRunner", "ScenarioResult", "replay_scenarios"]


def _session_mod():
    from ..serve import session

    return session


@dataclass(frozen=True)
class ScenarioResult:
    """Replay output: one :class:`AdaptationReport` per policy."""

    materialized: MaterializedScenario
    reports: dict[str, AdaptationReport]
    oracle_slr: tuple[float, ...]

    @property
    def spec(self) -> ScenarioSpec:
        return self.materialized.spec

    def slr_series(self, policy: str) -> list[float]:
        return self.reports[policy].series("mean_slr")


class ScenarioRunner:
    """Replay one scenario against placement policies.

    Parameters
    ----------
    spec: the declarative scenario (or pass a pre-materialized one).
    episode_multiplier: search budget per re-placement, in units of the
        graph's task count (the paper's 2·|V| protocol).
    reuse_evaluators: share one :class:`EvaluatorPool` per policy across
        the whole replay (the production path).  ``False`` builds a cold
        evaluator per (event, graph) — the configuration the replay
        benchmark compares against.
    oracle: compute the fresh-search oracle (HEFT ∧ random-task-EFT from
        a fresh random start) per event; disable for pure throughput
        runs, where regret is reported as 0.
    """

    def __init__(
        self,
        spec: ScenarioSpec | MaterializedScenario,
        episode_multiplier: int = 2,
        reuse_evaluators: bool = True,
        oracle: bool = True,
    ) -> None:
        if episode_multiplier < 1:
            raise ValueError("episode_multiplier must be >= 1")
        self.materialized = spec if isinstance(spec, MaterializedScenario) else materialize(spec)
        self.spec = self.materialized.spec
        self.episode_multiplier = episode_multiplier
        self.reuse_evaluators = reuse_evaluators
        self.oracle = oracle
        self._oracle_cache: list[float] | None = None

    # -- building blocks (delegating to repro.serve.session) ---------------------

    def _relocation_model(self, network: DeviceNetwork) -> RelocationCostModel:
        return _session_mod().relocation_model(self.spec, network)

    def _denominator(self, problem: PlacementProblem, objective: Objective) -> float:
        return _session_mod().slr_denominator(problem, objective)

    def _repair(
        self, prev_uids: Sequence[int] | None, problem: PlacementProblem
    ) -> tuple[int, ...]:
        return _session_mod().repair_placement(prev_uids, problem)

    def _migration(
        self,
        prev_uids: Sequence[int] | None,
        new_uids: Sequence[int],
        network: DeviceNetwork,
        model: RelocationCostModel,
    ) -> tuple[int, float]:
        return _session_mod().migration_cost(
            prev_uids, new_uids, network, model, self.spec.relocation.startup_ms
        )

    def _evaluator(
        self, pool: EvaluatorPool | None, problem: PlacementProblem, objective: Objective
    ) -> PlacementEvaluator:
        if pool is not None:
            return pool.get(problem)
        return PlacementEvaluator(problem, objective)

    def _replay_state(self):
        """Advance cluster/workload state event by event.

        See :func:`repro.serve.session.scenario_states` — the single
        source of truth shared by the oracle, the policy replay, and
        the serving sessions.
        """
        return _session_mod().scenario_states(self.materialized)

    # -- oracle ------------------------------------------------------------------

    def _oracle_event_slr(
        self,
        event: ScenarioEvent,
        problems: Sequence[PlacementProblem],
        objective: Objective,
        pool: EvaluatorPool | None,
    ) -> float:
        """Oracle SLR of one event (see :func:`repro.serve.session.oracle_event_slr`)."""
        return _session_mod().oracle_event_slr(
            event, problems, objective, pool, self.spec.seed, self.episode_multiplier
        )

    def _oracle_slr(
        self, workers: int = 1, backend: ExecutionBackend | None = None
    ) -> list[float]:
        """Per-event fresh-search oracle SLR series.

        The oracle ignores placement carry-over: per (event, graph) it
        takes the better of HEFT and a random-task-EFT search started
        from a fresh random placement with the same step budget.  The
        events fan out through ``backend`` (default: inline/fork sized
        by ``workers``); per-(event, graph) streams make the series
        bit-identical at any worker count and under any backend.  The
        inline path runs the events directly (no context pickling), one
        evaluator pool shared across events — caches never change
        values, so both paths agree bit-for-bit.
        """
        # Snapshot each yield: _replay_state mutates and re-yields the
        # same problems list across consecutive arrivals, so collecting
        # bare references would hand every arrival the final grown list
        # (an earlier event's oracle would average over graphs that have
        # not arrived yet).
        states = [
            (event, list(problems))
            for event, problems, _ in self._replay_state()
            if event is not None
        ]
        backend = resolve_backend(backend, workers)
        if not isinstance(backend, InlineBackend):
            context = _OracleContext(self, states)
            return backend.fanout(_oracle_event, range(len(states)), context)
        objective = self.spec.make_objective()
        pool = EvaluatorPool(objective) if self.reuse_evaluators else None
        return [
            self._oracle_event_slr(event, problems, objective, pool)
            for event, problems in states
        ]

    # -- replay ------------------------------------------------------------------

    def run(
        self,
        policies: Mapping[str, SearchPolicy],
        workers: int = 1,
        backend: ExecutionBackend | None = None,
    ) -> ScenarioResult:
        """Replay the scenario for every policy; see the class docstring.

        The fresh-search oracle's events fan out through ``backend``
        (default: inline/fork sized by ``workers``; each (event, graph)
        pair owns a derived stream), then the policies fan out the same
        way.  Each policy's replay already derives all randomness from
        ``(spec.seed, policy name, event index)`` and keeps a private
        :class:`EvaluatorPool`, so per-policy reports are bit-identical
        to a serial run for any worker count and any backend (only the
        wall-clock ``replace_seconds`` fields vary).  Non-inline
        backends replay pickled policy copies: stateful policies (e.g. a
        retrained RNN placer) keep their mutations worker-side, as if
        each had its own replica.  The inline path replays the caller's
        policy objects directly — ``adapt(event)`` side effects stay
        visible, and non-picklable ad-hoc policies are accepted.
        """
        if not policies:
            raise ValueError("need at least one policy")
        backend = resolve_backend(backend, workers)
        if self.oracle:
            if self._oracle_cache is None:
                # Deterministic in the runner's configuration, so repeated
                # run() calls (policy sweeps, benchmarks) pay for it once.
                self._oracle_cache = self._oracle_slr(backend=backend)
            oracle_slr = self._oracle_cache
        else:
            oracle_slr = [0.0] * self.materialized.num_events
        # Direct (no-pickling) replay when fanning out cannot help:
        # inline always, and a fork pool with a single policy (the
        # historical `workers > 1 and len(policies) > 1` gate) — ad-hoc
        # non-picklable policies keep working there.  Store-mediated
        # backends always fan out: the merge pass needs the cell.
        direct = isinstance(backend, InlineBackend) or (
            isinstance(backend, ForkBackend) and len(policies) == 1
        )
        if not direct:
            names = list(policies)
            context = _ReplayContext(self, dict(policies), list(oracle_slr))
            reports = dict(zip(names, backend.fanout(_replay_policy, names, context)))
        else:
            reports = {
                name: self._run_policy(name, policy, oracle_slr)
                for name, policy in policies.items()
            }
        return ScenarioResult(
            materialized=self.materialized,
            reports=reports,
            oracle_slr=tuple(oracle_slr),
        )

    def _run_policy(
        self, name: str, policy: SearchPolicy, oracle_slr: Sequence[float]
    ) -> AdaptationReport:
        session = _session_mod().PlacementSession(
            self.materialized,
            name,
            policy,
            episode_multiplier=self.episode_multiplier,
            reuse_evaluators=self.reuse_evaluators,
            oracle=self.oracle,
            oracle_slr=oracle_slr,
        )
        return session.run()


# -- parallel fan-out ---------------------------------------------------------------


class _OracleContext:
    """Broadcast payload for the per-event oracle workers.

    ``states`` is pickled as one object graph, so problem identity is
    preserved within each worker's copy and the worker-local
    :class:`EvaluatorPool` keeps paying off across the events that land
    on that worker (caches change speed, never values).
    """

    def __init__(
        self,
        runner: ScenarioRunner,
        states: Sequence[tuple[ScenarioEvent, list[PlacementProblem]]],
    ) -> None:
        self.runner = runner
        self.states = list(states)
        self._objective: Objective | None = None
        self._pool: EvaluatorPool | None = None

    def __getstate__(self):
        return {"runner": self.runner, "states": self.states}

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._objective = None
        self._pool = None

    def scoring(self) -> tuple[Objective, EvaluatorPool | None]:
        if self._objective is None:
            self._objective = self.runner.spec.make_objective()
            if self.runner.reuse_evaluators:
                self._pool = EvaluatorPool(self._objective)
        return self._objective, self._pool


def _oracle_event(index: int) -> float:
    ctx: _OracleContext = pool_context()
    event, problems = ctx.states[index]
    objective, pool = ctx.scoring()
    return ctx.runner._oracle_event_slr(event, problems, objective, pool)


@dataclass(frozen=True)
class _ReplayContext:
    """Broadcast payload for per-policy replay workers."""

    runner: ScenarioRunner
    policies: dict[str, SearchPolicy]
    oracle_slr: list[float]


def _replay_policy(name: str) -> AdaptationReport:
    ctx: _ReplayContext = pool_context()
    return ctx.runner._run_policy(name, ctx.policies[name], ctx.oracle_slr)


@dataclass(frozen=True)
class _GridContext:
    """Broadcast payload for the scenarios x policies grid."""

    runners: list[ScenarioRunner]
    policies: dict[str, SearchPolicy]


def _grid_oracle(runner_index: int) -> list[float]:
    ctx: _GridContext = pool_context()
    return ctx.runners[runner_index]._oracle_slr()


def _grid_replay(payload: tuple[int, str, list[float]]) -> AdaptationReport:
    runner_index, name, oracle_slr = payload
    ctx: _GridContext = pool_context()
    return ctx.runners[runner_index]._run_policy(name, ctx.policies[name], oracle_slr)


def replay_scenarios(
    specs: Sequence[ScenarioSpec | MaterializedScenario],
    policies: Mapping[str, SearchPolicy],
    workers: int = 1,
    episode_multiplier: int = 2,
    reuse_evaluators: bool = True,
    oracle: bool = True,
    backend: ExecutionBackend | None = None,
) -> dict[str, ScenarioResult]:
    """Replay several scenarios against several policies, in parallel.

    The (scenario x policy) grid is embarrassingly parallel: every cell
    derives all randomness from ``(spec.seed, policy name, event index)``
    and owns a private :class:`EvaluatorPool` per worker.  Oracles are
    computed first (one task per scenario), then every grid cell fans
    out through ``backend`` (default: inline/fork sized by ``workers``).
    Results are keyed by scenario name and bit-identical to running each
    scenario's :meth:`ScenarioRunner.run` serially (modulo wall-clock
    fields).
    """
    if not policies:
        raise ValueError("need at least one policy")
    backend = resolve_backend(backend, workers)
    runners = [
        ScenarioRunner(
            spec,
            episode_multiplier=episode_multiplier,
            reuse_evaluators=reuse_evaluators,
            oracle=oracle,
        )
        for spec in specs
    ]
    names = {runner.spec.name for runner in runners}
    if len(names) != len(runners):
        raise ValueError("scenario names must be unique in a grid replay")
    if isinstance(backend, InlineBackend) or len(runners) * len(policies) <= 1:
        # The backend still travels: a store-mediated backend must
        # publish/load its cells even when the grid is too small to fan.
        return {runner.spec.name: runner.run(policies, backend=backend) for runner in runners}

    context = _GridContext(runners=runners, policies=dict(policies))
    if oracle:
        oracles = backend.fanout(_grid_oracle, range(len(runners)), context)
    else:
        oracles = [[0.0] * r.materialized.num_events for r in runners]
    cells = [
        (i, name, oracles[i]) for i in range(len(runners)) for name in policies
    ]
    reports = backend.fanout(_grid_replay, cells, context)

    results: dict[str, ScenarioResult] = {}
    for (i, name, _), report in zip(cells, reports):
        runner = runners[i]
        if runner.spec.name not in results:
            results[runner.spec.name] = ScenarioResult(
                materialized=runner.materialized,
                reports={},
                oracle_slr=tuple(oracles[i]),
            )
        results[runner.spec.name].reports[name] = report
    return results
