"""Declarative dynamic-cluster scenarios.

A :class:`ScenarioSpec` composes everything the replay engine needs to
reproduce one adaptive-computing situation from a single integer seed:

* a **workload stream** — how many task graphs exist up front and when
  new ones arrive (:class:`WorkloadSpec`);
* a **cluster** — the initial device network family (:class:`ClusterSpec`);
* a **network timeline** — the churn process over the cluster, including
  the soft bandwidth-drift / compute-slowdown event kinds
  (:class:`repro.devices.ChurnConfig`);
* an **objective** and a **relocation cost model**
  (:class:`RelocationSpec`) charging placement migrations.

Specs are plain frozen dataclasses, serializable to/from JSON-safe
dicts, so scenarios can be stored, diffed, and replayed bit-identically
(see ``tests/scenarios/``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..devices.dynamics import ChurnConfig
from ..sim.objectives import EnergyObjective, MakespanObjective, Objective, TotalCostObjective

__all__ = ["WorkloadSpec", "ClusterSpec", "RelocationSpec", "ScenarioSpec", "OBJECTIVES"]

OBJECTIVES = ("makespan", "total-cost", "energy")


@dataclass(frozen=True)
class WorkloadSpec:
    """Task-graph stream: the applications the cluster must host.

    ``arrivals`` is a tuple of ``(step, count)`` pairs: ``count`` fresh
    graphs arrive at scenario step ``step`` (steps are 1-based; step 0
    is the initial state).  Arriving graphs are placed from scratch;
    existing graphs are re-placed on every event.
    """

    initial_graphs: int = 4
    num_tasks: int = 10
    connect_prob: float = 0.3
    constraint_prob: float = 0.25
    arrivals: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.initial_graphs < 1:
            raise ValueError("need at least one initial graph")
        if self.num_tasks < 1:
            raise ValueError("num_tasks must be >= 1")
        if not 0.0 <= self.connect_prob <= 1.0 or not 0.0 <= self.constraint_prob <= 1.0:
            raise ValueError("probabilities must be in [0, 1]")
        arrivals = tuple((int(s), int(c)) for s, c in self.arrivals)
        object.__setattr__(self, "arrivals", arrivals)
        for step, count in arrivals:
            if step < 1:
                raise ValueError("arrival steps are 1-based (step 0 is the initial state)")
            if count < 1:
                raise ValueError("arrival counts must be >= 1")

    @property
    def total_arrivals(self) -> int:
        return sum(count for _, count in self.arrivals)

    @property
    def last_arrival_step(self) -> int:
        return max((step for step, _ in self.arrivals), default=0)


@dataclass(frozen=True)
class ClusterSpec:
    """Initial device-network family (Appendix B.2 generator knobs)."""

    num_devices: int = 10
    support_prob: float = 0.6
    mean_speed: float = 10.0
    mean_bandwidth: float = 100.0
    mean_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if not 0.0 <= self.support_prob <= 1.0:
            raise ValueError("support_prob must be in [0, 1]")
        if self.mean_speed <= 0 or self.mean_bandwidth <= 0 or self.mean_delay < 0:
            raise ValueError("cluster means must be positive (delay non-negative)")


@dataclass(frozen=True)
class RelocationSpec:
    """Migration-cost accounting (paper §5.3 / Table 2, synthesized).

    Every task shares one relocation profile; devices share one startup
    class.  ``pipeline_frequency_hz`` additionally reports the amortized
    per-run cost when set (recurrent pipelines, Fig. 11 left).
    """

    migration_bytes: float = 4096.0
    static_init_kbytes: float = 0.0
    startup_ms: float = 5.0
    include_static_init: bool = False
    pipeline_frequency_hz: float | None = None

    def __post_init__(self) -> None:
        if self.migration_bytes < 0 or self.static_init_kbytes < 0 or self.startup_ms < 0:
            raise ValueError("relocation costs must be non-negative")
        if self.pipeline_frequency_hz is not None and self.pipeline_frequency_hz <= 0:
            raise ValueError("pipeline_frequency_hz must be positive when set")


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-specified dynamic-cluster scenario.

    Everything downstream — the device network, the task graphs, the
    event stream, and every policy/oracle rng — derives deterministically
    from ``seed``, so two runs of the same spec produce bit-identical
    event streams and :class:`repro.scenarios.report.AdaptationReport`s.
    """

    name: str
    seed: int = 0
    objective: str = "makespan"
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    churn: ChurnConfig = field(default_factory=lambda: ChurnConfig(min_devices=8, max_devices=10))
    relocation: RelocationSpec = field(default_factory=RelocationSpec)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.objective not in OBJECTIVES:
            raise ValueError(f"objective must be one of {OBJECTIVES}, got {self.objective!r}")
        if self.churn.max_devices > self.cluster.num_devices:
            raise ValueError("churn.max_devices cannot exceed the initial cluster size")

    @property
    def num_steps(self) -> int:
        """Scenario steps: churn changes interleaved with late arrivals."""
        return max(self.churn.num_changes, self.workload.last_arrival_step)

    def make_objective(self) -> Objective:
        return {
            "makespan": MakespanObjective,
            "total-cost": TotalCostObjective,
            "energy": EnergyObjective,
        }[self.objective]()

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe nested dict (tuples become lists)."""
        out = dataclasses.asdict(self)
        out["workload"]["arrivals"] = [list(pair) for pair in self.workload.arrivals]
        out["churn"]["drift_range"] = list(self.churn.drift_range)
        out["churn"]["slowdown_range"] = list(self.churn.slowdown_range)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`; validates every component."""
        data = dict(data)
        workload = dict(data.pop("workload", {}))
        workload["arrivals"] = tuple(tuple(pair) for pair in workload.get("arrivals", ()))
        churn = dict(data.pop("churn", {}))
        for key in ("drift_range", "slowdown_range"):
            if key in churn:
                churn[key] = tuple(churn[key])
        return cls(
            workload=WorkloadSpec(**workload),
            cluster=ClusterSpec(**dict(data.pop("cluster", {}))),
            churn=ChurnConfig(**churn),
            relocation=RelocationSpec(**dict(data.pop("relocation", {}))),
            **data,
        )
