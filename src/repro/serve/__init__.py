"""Placement-as-a-service: the request-serving runtime.

The batch stack (:mod:`repro.scenarios`) replays whole scenarios in one
process; this package carves that per-event logic into a long-lived
serving runtime:

* :mod:`repro.serve.session` — :class:`PlacementSession`, the per-event
  adapt → repair → search → migrate state machine extracted from
  :class:`~repro.scenarios.runner.ScenarioRunner`.  Both the batch
  runner and the daemon drive it, so a scenario replayed through the
  server yields bit-identical :class:`AdaptationReport`s.
* :mod:`repro.serve.protocol` — the JSON-lines request protocol.
* :mod:`repro.serve.batcher` — coalesces concurrent evaluate requests
  into one ``evaluate_many`` call.
* :mod:`repro.serve.server` — the ``repro serve`` daemon (AF_UNIX
  socket, one thread per connection, graceful drain on SIGTERM).
* :mod:`repro.serve.client` — a blocking JSON-lines client.
* :mod:`repro.serve.load` — ``repro load``, the seeded many-tenant
  load generator reporting p50/p99 latency and requests/sec.

Submodules are imported lazily (the session is imported by the scenario
runner; pulling the whole daemon stack in with it would be wasteful and
circular).
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "PlacementSession",
    "PlacementServer",
    "ServeClient",
    "ServeConfig",
    "LoadConfig",
    "run_load",
]

_EXPORTS = {
    "PlacementSession": ("session", "PlacementSession"),
    "PlacementServer": ("server", "PlacementServer"),
    "ServeConfig": ("server", "ServeConfig"),
    "ServeClient": ("client", "ServeClient"),
    "LoadConfig": ("load", "LoadConfig"),
    "run_load": ("load", "run_load"),
}


def __getattr__(name: str) -> Any:  # PEP 562 lazy exports
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, attr)


def __dir__() -> list[str]:
    return sorted(__all__)
