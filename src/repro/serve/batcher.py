"""Request batcher: concurrent evaluate requests -> one ``evaluate_many``.

Connection threads :meth:`RequestBatcher.submit` individual
``(evaluator, placement)`` requests and block; a single drain thread
collects whatever accumulated within a short coalescing window and
scores it through :func:`repro.runtime.evaluator.coalesce_evaluate` —
same-evaluator requests become one :meth:`evaluate_many` batch (one
vectorized fast-path cost realization instead of N scalar calls).

Routing every evaluation through one drain thread is also what makes
the server's shared :class:`EvaluatorPool` safe without per-evaluator
locks: connection threads never touch evaluator caches, they only wait
on their request's event.  Batching changes speed, never values — the
batcher equivalence test pins ``submit`` results against direct
``evaluate`` calls.
"""

from __future__ import annotations

import threading
from typing import Sequence

from ..runtime.evaluator import PlacementEvaluator, coalesce_evaluate
from ..telemetry import metrics, span

__all__ = ["RequestBatcher"]


class _Pending:
    __slots__ = ("evaluator", "placement", "value", "error", "done")

    def __init__(self, evaluator: PlacementEvaluator, placement: Sequence[int]) -> None:
        self.evaluator = evaluator
        self.placement = placement
        self.value: float | None = None
        self.error: BaseException | None = None
        self.done = threading.Event()


class RequestBatcher:
    """Coalesce concurrent scoring requests through ``evaluate_many``.

    Parameters
    ----------
    max_wait_ms: how long the drain thread lingers after the first
        request of a batch to let concurrent requests pile in.  ``0``
        drains immediately (whatever is queued still coalesces).
    max_batch: upper bound on requests drained per batch.
    """

    def __init__(self, max_wait_ms: float = 2.0, max_batch: int = 256) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_wait_ms = max(0.0, float(max_wait_ms))
        self.max_batch = max_batch
        self._cond = threading.Condition()
        self._queue: list[_Pending] = []
        self._stopping = False
        self._thread: threading.Thread | None = None
        self.requests = 0
        self.batches = 0

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "RequestBatcher":
        if self._thread is None:
            self._stopping = False
            self._thread = threading.Thread(
                target=self._drain_loop, name="repro-serve-batcher", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Drain everything queued, then stop the drain thread."""
        thread = self._thread
        if thread is None:
            return
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        thread.join(timeout=30.0)
        self._thread = None

    def __enter__(self) -> "RequestBatcher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request side ------------------------------------------------------------

    def submit(self, evaluator: PlacementEvaluator, placement: Sequence[int]) -> float:
        """Score one placement; blocks until its batch completes."""
        return self.submit_many(evaluator, [placement])[0]

    def submit_many(
        self, evaluator: PlacementEvaluator, placements: Sequence[Sequence[int]]
    ) -> list[float]:
        """Score several placements, enqueued together (one wait, not N)."""
        if self._thread is None:
            raise RuntimeError("RequestBatcher is not started")
        pendings = [_Pending(evaluator, p) for p in placements]
        with self._cond:
            if self._stopping:
                raise RuntimeError("RequestBatcher is stopping")
            self._queue.extend(pendings)
            self.requests += len(pendings)
            self._cond.notify_all()
        out = []
        for pending in pendings:
            pending.done.wait()
            if pending.error is not None:
                raise pending.error
            assert pending.value is not None
            out.append(pending.value)
        return out

    # -- drain side --------------------------------------------------------------

    def _take_batch(self) -> list[_Pending] | None:
        """Next batch (ordered by arrival), or ``None`` to shut down."""
        with self._cond:
            while not self._queue and not self._stopping:
                self._cond.wait()
            if not self._queue:
                return None  # stopping with an empty queue
            if self.max_wait_ms and not self._stopping:
                # Linger once: let concurrent requests coalesce into
                # this batch.  A second wait would trade latency for
                # marginal batching, so the window is a single interval.
                if len(self._queue) < self.max_batch:
                    self._cond.wait(timeout=self.max_wait_ms / 1000.0)
            batch = self._queue[: self.max_batch]
            del self._queue[: len(batch)]
            return batch

    def _drain_loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            self.batches += 1
            metrics().histogram("serve.batch_size").observe(len(batch))
            try:
                with span("serve.batch"):
                    values = coalesce_evaluate(
                        [(p.evaluator, p.placement) for p in batch]
                    )
            except BaseException as error:  # noqa: BLE001 - shipped to waiters
                for pending in batch:
                    pending.error = error
                    pending.done.set()
                continue
            for pending, value in zip(batch, values):
                pending.value = value
                pending.done.set()
