"""Blocking JSON-lines client for the placement daemon.

:class:`ServeClient` wraps one ``AF_UNIX`` connection: each
:meth:`request` writes one protocol line and blocks for the matching
response line (the daemon answers a connection's requests in order).
``connect`` retries briefly by default so tests and the load generator
can race the daemon's startup.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Sequence

from .protocol import decode_message, encode_message

__all__ = ["ServeClient", "ServeRequestError"]


class ServeRequestError(RuntimeError):
    """The daemon answered ``ok: false``; carries the full response."""

    def __init__(self, response: dict[str, Any]) -> None:
        super().__init__(response.get("error", "request failed"))
        self.response = response


class ServeClient:
    """One connection to a :class:`~repro.serve.server.PlacementServer`."""

    def __init__(
        self,
        socket_path: str,
        timeout_s: float = 120.0,
        connect_retry_s: float = 5.0,
    ) -> None:
        self.socket_path = str(socket_path)
        self.timeout_s = timeout_s
        deadline = time.monotonic() + max(0.0, connect_retry_s)
        while True:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.connect(self.socket_path)
                break
            except OSError:
                sock.close()
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
        sock.settimeout(timeout_s)
        self._sock = sock
        self._buffer = bytearray()

    # -- transport ---------------------------------------------------------------

    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one request; return the (``ok: true``) response fields."""
        self._sock.sendall(encode_message({"op": op, **fields}))
        line = self._readline()
        if not line:
            raise ConnectionError(
                f"daemon at {self.socket_path} closed the connection mid-request"
            )
        response = decode_message(line)
        if not response.get("ok"):
            raise ServeRequestError(response)
        return response

    def _readline(self) -> bytes:
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[: newline + 1])
                del self._buffer[: newline + 1]
                return line
            chunk = self._sock.recv(65536)
            if not chunk:
                return b""
            self._buffer.extend(chunk)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- convenience wrappers ----------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def open_session(
        self,
        scenario: str,
        policy: str = "task-eft",
        seed: int | None = None,
        oracle: bool | None = None,
        max_events: int | None = None,
    ) -> dict[str, Any]:
        fields: dict[str, Any] = {"scenario": scenario, "policy": policy}
        if seed is not None:
            fields["seed"] = seed
        if oracle is not None:
            fields["oracle"] = oracle
        if max_events is not None:
            fields["max_events"] = max_events
        return self.request("open", **fields)

    def event(self, session: str) -> dict[str, Any]:
        return self.request("event", session=session)

    def report(self, session: str, include_timing: bool = False) -> dict[str, Any]:
        return self.request("report", session=session, include_timing=include_timing)

    def close_session(self, session: str) -> dict[str, Any]:
        return self.request("close", session=session)

    def evaluate(
        self,
        scenario: str,
        placements: Sequence[Sequence[int]],
        seed: int | None = None,
        graph: int = 0,
    ) -> list[float]:
        fields: dict[str, Any] = {
            "scenario": scenario,
            "placements": [list(map(int, p)) for p in placements],
            "graph": graph,
        }
        if seed is not None:
            fields["seed"] = seed
        return list(self.request("evaluate", **fields)["values"])

    def stats(self) -> dict[str, Any]:
        return self.request("stats")

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")
