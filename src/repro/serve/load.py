"""``repro load``: seeded many-tenant load generation against the daemon.

Each tenant is one client connection replaying one scenario preset's
event stream as a sequence of ``event`` requests against its own
:class:`PlacementSession` — the serving analogue of a batch scenario
replay, with per-request wall-clock measured client-side.  Tenants fan
out over the :class:`~repro.parallel.backends.ExecutionBackend` seam:
the default ``thread`` backend gives real concurrency for this
I/O-bound shape, ``fork`` runs tenants as separate client processes,
``inline`` serializes them (a closed-loop baseline).

Everything is seeded: tenant *i* replays
``scenarios[i % len(scenarios)]`` at seed ``seed + i``, so a load run
is reproducible and every tenant's placements are bit-identical to the
corresponding batch replay.

The summary reports p50/p99/mean request latency and sustained
requests/sec, and (with ``bench_path``) merges a record into
``results/BENCH_pr9.json`` in the same shape as the pytest benchmark
harness, so ``repro bench report`` tracks serving latency across PRs.
With ``compare_cold`` the same single-event placement is also run as a
cold ``repro scenario run`` subprocess — the batch-stack cost a warm
request avoids — and the p50 speedup against it is recorded.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..parallel.backends import (
    ExecutionBackend,
    ForkBackend,
    InlineBackend,
    ThreadBackend,
)
from ..parallel.pool import get_context as pool_context
from ..telemetry import log
from .client import ServeClient

__all__ = ["LoadConfig", "LoadContext", "run_load", "format_load_summary"]


@dataclass(frozen=True)
class LoadConfig:
    """One load run (the ``repro load`` flags)."""

    socket_path: str
    scenarios: tuple[str, ...] = ("stable-cluster",)
    policy: str = "task-eft"
    clients: int = 4
    events_per_client: int | None = None  # None = each tenant's full stream
    seed: int = 0
    backend: str = "thread"  # thread | fork | inline
    oracle: bool = False
    compare_cold: bool = False
    bench_path: str | None = None
    bench_name: str = "serve_request_latency"


@dataclass(frozen=True)
class LoadContext:
    """Broadcast payload for tenant tasks (read-only under threads)."""

    socket_path: str
    policy: str
    scenarios: tuple[str, ...]
    seed: int
    events_per_client: int | None
    oracle: bool


def _run_tenant(index: int) -> dict[str, Any]:
    """One tenant: open a session, request every event, measure each."""
    ctx: LoadContext = pool_context()
    scenario = ctx.scenarios[index % len(ctx.scenarios)]
    seed = ctx.seed + index
    latencies_ms: list[float] = []
    with ServeClient(ctx.socket_path) as client:
        opened = client.open_session(
            scenario,
            policy=ctx.policy,
            seed=seed,
            oracle=ctx.oracle,
            max_events=ctx.events_per_client,
        )
        session = opened["session"]
        remaining = int(opened["events"])
        while remaining:
            began = time.perf_counter()
            response = client.event(session)
            latencies_ms.append((time.perf_counter() - began) * 1000.0)
            remaining = int(response["remaining"])
        client.close_session(session)
    return {
        "tenant": index,
        "scenario": scenario,
        "seed": seed,
        "latencies_ms": latencies_ms,
    }


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (no interpolation; stable for small N)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, int(round(q * (len(sorted_values) - 1)))))
    return float(sorted_values[rank])


def _resolve_backend(name: str, clients: int) -> ExecutionBackend:
    if name == "thread":
        return ThreadBackend(clients)
    if name == "fork":
        return ForkBackend(clients)
    if name == "inline":
        return InlineBackend()
    raise ValueError(f"unknown load backend {name!r} (thread | fork | inline)")


def _cold_single_event_seconds(config: LoadConfig) -> float:
    """Wall-clock of a cold one-event ``repro scenario run`` subprocess.

    This is the startup bill every placement paid before the daemon
    existed: fresh interpreter, imports, materialization, cold caches —
    for the same single event a warm request serves in milliseconds.
    """
    command = [
        sys.executable,
        "-m",
        "repro",
        "scenario",
        "run",
        config.scenarios[0],
        "--policy",
        config.policy,
        "--seed",
        str(config.seed),
        "--max-events",
        "1",
        "--no-oracle",
    ]
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    began = time.perf_counter()
    result = subprocess.run(command, env=env, capture_output=True, text=True)
    elapsed = time.perf_counter() - began
    if result.returncode != 0:
        raise RuntimeError(
            f"cold comparison run failed ({result.returncode}): {result.stderr[-500:]}"
        )
    return elapsed


def run_load(config: LoadConfig) -> dict[str, Any]:
    """Drive the daemon with ``config.clients`` tenants; return the summary."""
    if config.clients < 1:
        raise ValueError("clients must be >= 1")
    if not config.scenarios:
        raise ValueError("need at least one scenario preset")
    backend = _resolve_backend(config.backend, config.clients)
    context = LoadContext(
        socket_path=config.socket_path,
        policy=config.policy,
        scenarios=tuple(config.scenarios),
        seed=config.seed,
        events_per_client=config.events_per_client,
        oracle=config.oracle,
    )
    log.info(
        f"repro load: {config.clients} client(s) x "
        f"{config.events_per_client if config.events_per_client is not None else 'all'}"
        f" event(s) over {', '.join(config.scenarios)} "
        f"[policy {config.policy}, backend {config.backend}]"
    )
    began = time.perf_counter()
    tenants = backend.fanout(_run_tenant, range(config.clients), context)
    wall_s = time.perf_counter() - began

    latencies = sorted(ms for t in tenants for ms in t["latencies_ms"])
    requests = len(latencies)
    summary: dict[str, Any] = {
        "clients": config.clients,
        "scenarios": list(config.scenarios),
        "policy": config.policy,
        "backend": config.backend,
        "seed": config.seed,
        "requests": requests,
        "wall_seconds": round(wall_s, 4),
        "requests_per_second": round(requests / wall_s, 2) if wall_s > 0 else 0.0,
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50), 3),
            "p99": round(_percentile(latencies, 0.99), 3),
            "mean": round(sum(latencies) / requests, 3) if requests else 0.0,
            "max": round(latencies[-1], 3) if requests else 0.0,
        },
    }
    if config.compare_cold:
        cold_s = _cold_single_event_seconds(config)
        summary["cold_single_event_seconds"] = round(cold_s, 4)
        p50_s = summary["latency_ms"]["p50"] / 1000.0
        summary["warm_speedup_vs_cold"] = round(cold_s / p50_s, 1) if p50_s > 0 else 0.0
    if config.bench_path:
        _record_bench(pathlib.Path(config.bench_path), config.bench_name, summary)
    return summary


def _record_bench(path: pathlib.Path, name: str, summary: dict[str, Any]) -> None:
    """Merge the load summary into a BENCH json (conftest-compatible)."""
    benchmarks: dict[str, Any] = {}
    if path.exists():
        try:
            benchmarks = json.loads(path.read_text()).get("benchmarks", {})
        except (json.JSONDecodeError, AttributeError):
            benchmarks = {}
    record = {
        # The headline seconds is the p50 request latency: the user-facing
        # number every later serving PR should move.
        "seconds": round(summary["latency_ms"]["p50"] / 1000.0, 6),
        "scale": os.environ.get("REPRO_SCALE", "quick"),
        "p50_ms": summary["latency_ms"]["p50"],
        "p99_ms": summary["latency_ms"]["p99"],
        "requests_per_second": summary["requests_per_second"],
        "requests": summary["requests"],
        "clients": summary["clients"],
    }
    if "cold_single_event_seconds" in summary:
        record["cold_single_event_seconds"] = summary["cold_single_event_seconds"]
        record["warm_speedup_vs_cold"] = summary["warm_speedup_vs_cold"]
    benchmarks[name] = record
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"schema": 1, "benchmarks": dict(sorted(benchmarks.items()))}
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    log.info(f"repro load: recorded {name!r} into {path}")


def format_load_summary(summary: dict[str, Any]) -> str:
    lat = summary["latency_ms"]
    lines = [
        f"load: {summary['requests']} requests from {summary['clients']} client(s) "
        f"in {summary['wall_seconds']:.2f}s "
        f"({summary['requests_per_second']:.1f} req/s)",
        f"  latency: p50 {lat['p50']:.2f} ms, p99 {lat['p99']:.2f} ms, "
        f"mean {lat['mean']:.2f} ms, max {lat['max']:.2f} ms",
    ]
    if "cold_single_event_seconds" in summary:
        lines.append(
            f"  cold single-event scenario run: "
            f"{summary['cold_single_event_seconds']:.2f} s "
            f"-> warm p50 is {summary['warm_speedup_vs_cold']:.0f}x faster"
        )
    return "\n".join(lines)
