"""JSON-lines protocol spoken between the daemon and its clients.

One request per line, one response line per request, over a local
``AF_UNIX`` stream socket.  Requests are JSON objects with an ``op``
field and op-specific arguments; responses echo the request's optional
``id`` tag and always carry ``ok`` (with ``error`` describing the
failure when false).  Encoding is canonical (sorted keys, compact
separators) so protocol-level payloads are byte-stable — the property
the serve equivalence suite compares reports with.

Ops
---
``ping``      liveness + daemon identity (pid, uptime).
``open``      start a :class:`~repro.serve.session.PlacementSession`
              for ``(scenario, seed, policy)``; returns a session id.
``event``     advance an open session by one scenario event; returns
              the resulting step record and the remaining event count.
``report``    the session's canonical ``AdaptationReport`` dict
              (timing fields excluded — the byte-comparable form).
``close``     drop a session.
``evaluate``  score placements against a scenario's initial problems
              through the server's warm evaluator pool; concurrent
              calls coalesce into one ``evaluate_many`` batch.
``stats``     server counters (requests, batches, open sessions).
``shutdown``  ask the daemon to drain and exit (same path as SIGTERM).
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_message",
    "encode_message",
    "error_response",
    "ok_response",
]

PROTOCOL_VERSION = 1

OPS = ("ping", "open", "event", "report", "close", "evaluate", "stats", "shutdown")


class ProtocolError(ValueError):
    """A line that is not a valid protocol message."""


def encode_message(message: dict[str, Any]) -> bytes:
    """Canonical one-line encoding (sorted keys, compact, ``\\n``-terminated)."""
    return (json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def decode_message(line: bytes | str) -> dict[str, Any]:
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty message line")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"message must be a JSON object, got {type(message).__name__}")
    return message


def ok_response(op: str, request: dict[str, Any] | None = None, **fields: Any) -> dict:
    response = {"ok": True, "op": op, **fields}
    if request is not None and "id" in request:
        response["id"] = request["id"]
    return response


def error_response(
    op: str, error: str, request: dict[str, Any] | None = None, **fields: Any
) -> dict:
    response = {"ok": False, "op": op, "error": error, **fields}
    if request is not None and "id" in request:
        response["id"] = request["id"]
    return response
