"""The ``repro serve`` daemon: warm placement sessions over a local socket.

:class:`PlacementServer` listens on an ``AF_UNIX`` stream socket and
speaks the JSON-lines protocol of :mod:`repro.serve.protocol`.  It pays
the batch stack's startup cost once — policies are constructed (and a
trained agent loaded) at boot, scenario materializations are cached
across tenants, and every open :class:`PlacementSession` keeps its warm
:class:`EvaluatorPool` between requests — so a placement request costs
one event's work, not one process launch.

Concurrency model: one accept thread plus one thread per connection.
Requests against the same session serialize on a per-session lock
(a session is a stateful event stream); requests against different
sessions run concurrently.  ``evaluate`` requests from any connection
funnel through one :class:`RequestBatcher` drain thread, which both
coalesces them into ``evaluate_many`` batches and keeps the shared
evaluator caches single-threaded.

Telemetry: every request runs under a ``serve.request`` span with the
op nested beneath it (``serve.event``, ``serve.search`` around policy
search, ``serve.batch`` in the batcher) — with the thread-local span
paths of :mod:`repro.telemetry.spans`, ``repro trace`` on a serve run
log groups each request's work under its own ``serve.request`` node.
Request latency lands in the ``serve.latency_ms`` registry histograms
(overall and per-op).

Shutdown: ``request_stop()`` (SIGTERM/SIGINT via
:func:`install_signal_handlers`, or the ``shutdown`` op) stops the
accept loop, lets every connection finish the request it is processing,
drains the batcher, and returns from :meth:`serve_forever` — the CLI
then flushes the telemetry run log and exits 0.
"""

from __future__ import annotations

import os
import pathlib
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..baselines.base import SearchPolicy
from ..core.placement import PlacementProblem
from ..runtime.evaluator import EvaluatorPool
from ..scenarios.events import MaterializedScenario, materialize
from ..scenarios.registry import DEFAULT_REGISTRY, ScenarioRegistry
from ..telemetry import log, metrics, span
from .batcher import RequestBatcher
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
)
from .session import PlacementSession

__all__ = [
    "PlacementServer",
    "ServeConfig",
    "ServeError",
    "default_policy_factories",
    "install_signal_handlers",
]


class ServeError(RuntimeError):
    """A request the server cannot satisfy (shipped as an error response)."""


def default_policy_factories(
    agent_path: str | os.PathLike | None = None,
    seed: int = 0,
) -> dict[str, Callable[[], SearchPolicy]]:
    """Policy constructors the daemon serves, keyed by request name.

    Mirrors the ``repro scenario run`` policy set.  With ``agent_path``
    a trained GiPH agent is loaded **once** at boot and shared read-only
    by every ``giph`` session (sessions get fresh search wrappers around
    the warm weights).  ``seed`` is the daemon's root seed (the
    ``repro serve --seed`` flag); the load-time stream derives from it
    as a seed-list key so two daemons with the same seed serve
    bit-identical policies.
    """
    import numpy as np

    from ..baselines import RandomPlacementPolicy, RandomTaskEftPolicy, RnnPlacerPolicy
    from ..experiments.runner import HeftPolicy

    factories: dict[str, Callable[[], SearchPolicy]] = {
        "random": RandomPlacementPolicy,
        "task-eft": RandomTaskEftPolicy,
        "heft": HeftPolicy,
        "rnn-placer": RnnPlacerPolicy,
    }
    if agent_path is not None:
        from ..baselines.giph_policy import GiPHSearchPolicy
        from ..core.serialization import load_agent

        agent = load_agent(pathlib.Path(agent_path), np.random.default_rng([seed]))
        factories["giph"] = lambda: GiPHSearchPolicy(agent)
    return factories


@dataclass
class ServeConfig:
    """Daemon configuration (the ``repro serve`` flags)."""

    socket_path: str
    episode_multiplier: int = 2
    batch_wait_ms: float = 2.0
    max_batch: int = 256
    oracle: bool = False  # default for opened sessions (requests may override)
    agent_path: str | None = None
    seed: int = 0  # root seed for the daemon's derived policy streams
    accept_timeout_s: float = 0.2
    drain_timeout_s: float = 30.0


class _Session:
    """One tenant's open session plus its serialization lock."""

    __slots__ = ("session", "lock")

    def __init__(self, session: PlacementSession) -> None:
        self.session = session
        self.lock = threading.Lock()


class _LineReader:
    """Timeout-tolerant line framing over a stream socket.

    ``makefile().readline()`` can drop buffered bytes on a timeout, so
    the reader keeps its own buffer: a timeout leaves partial lines
    intact and simply returns control to the caller (which re-checks the
    server's stop flag).
    """

    __slots__ = ("_sock", "_buffer")

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = bytearray()

    def readline(self) -> bytes | None:
        """One complete line, ``b""`` on EOF, ``None`` on timeout."""
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[: newline + 1])
                del self._buffer[: newline + 1]
                return line
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                return None
            except OSError:
                return b""
            if not chunk:
                return b""  # EOF (any trailing partial line is not a message)
            self._buffer.extend(chunk)


class PlacementServer:
    """Long-lived placement daemon (see the module docstring)."""

    def __init__(
        self,
        config: ServeConfig,
        registry: ScenarioRegistry | None = None,
        policy_factories: Mapping[str, Callable[[], SearchPolicy]] | None = None,
    ) -> None:
        self.config = config
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self.policy_factories = dict(
            policy_factories
            if policy_factories is not None
            else default_policy_factories(config.agent_path, seed=config.seed)
        )
        self.batcher = RequestBatcher(
            max_wait_ms=config.batch_wait_ms, max_batch=config.max_batch
        )
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: set[threading.Thread] = set()
        self._conn_lock = threading.Lock()
        self._stop = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._began = time.monotonic()

        self._sessions: dict[str, _Session] = {}
        self._session_counter = 0
        self._state_lock = threading.Lock()
        # (scenario, seed, max_events) -> materialization, shared across
        # tenants so N sessions over one preset materialize it once.
        self._materialized: dict[tuple[str, int, int | None], MaterializedScenario] = {}
        # Warm scoring state for the `evaluate` op: per (scenario, seed)
        # initial problems + one evaluator pool per objective, touched
        # only by the batcher's drain thread (see _handle_evaluate).
        self._eval_problems: dict[tuple[str, int], list[PlacementProblem]] = {}
        self._eval_pools: dict[tuple[str, int], EvaluatorPool] = {}

        self.requests_served = 0

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "PlacementServer":
        """Bind the socket and start accepting connections."""
        if self._listener is not None:
            return self
        path = pathlib.Path(self.config.socket_path)
        if len(str(path)) > 100:
            raise ServeError(
                f"socket path too long for AF_UNIX ({len(str(path))} chars): {path}"
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists():
            path.unlink()
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(path))
        listener.listen(64)
        listener.settimeout(self.config.accept_timeout_s)
        self._listener = listener
        self._stop.clear()
        self._stopped.clear()
        self.batcher.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        log.info(
            f"repro serve: listening on {path} "
            f"(pid {os.getpid()}, policies: {', '.join(sorted(self.policy_factories))})"
        )
        return self

    def request_stop(self) -> None:
        """Ask the daemon to drain and stop (signal-handler safe)."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the daemon has fully stopped."""
        return self._stopped.wait(timeout)

    def serve_forever(self) -> None:
        """Run until :meth:`request_stop` (or a handled signal); drains first."""
        self.start()
        try:
            while not self._stop.is_set():
                # Signal handlers run between bytecodes of this loop; a
                # plain wait keeps the main thread interruptible.
                self._stop.wait(0.2)
        finally:
            self._shutdown()

    def stop(self) -> None:
        """Programmatic stop: request, drain, and wait for full shutdown."""
        self.request_stop()
        if self._listener is None and self._accept_thread is None:
            return
        self._shutdown()

    def _shutdown(self) -> None:
        """Drain in-flight requests, close everything, flush the batcher.

        Idempotent and safe to race: both ``serve_forever``'s unwind and
        a programmatic ``stop`` may call it; the second caller waits for
        the first to finish and returns.
        """
        self._stop.set()
        with self._shutdown_lock:
            if self._stopped.is_set():
                return
            self._drain_and_close()

    def _drain_and_close(self) -> None:
        deadline = time.monotonic() + self.config.drain_timeout_s
        accept = self._accept_thread
        if accept is not None:
            accept.join(timeout=max(0.0, deadline - time.monotonic()))
        with self._conn_lock:
            conns = list(self._conn_threads)
        for thread in conns:
            thread.join(timeout=max(0.05, deadline - time.monotonic()))
        self.batcher.stop()
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        try:
            pathlib.Path(self.config.socket_path).unlink(missing_ok=True)
        except OSError:
            pass
        self._accept_thread = None
        log.info(
            f"repro serve: drained and stopped after {self.requests_served} request(s)"
        )
        self._stopped.set()

    # -- accept / connection loops -----------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stop.is_set() and listener is not None:
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.settimeout(self.config.accept_timeout_s)
            thread = threading.Thread(
                target=self._connection_loop,
                args=(conn,),
                name="repro-serve-conn",
                daemon=True,
            )
            with self._conn_lock:
                self._conn_threads.add(thread)
            thread.start()

    def _connection_loop(self, conn: socket.socket) -> None:
        reader = _LineReader(conn)
        draining = False
        try:
            while True:
                line = reader.readline()
                if line is None:  # timeout
                    if not self._stop.is_set():
                        continue
                    if draining:
                        return  # quiesced: drained every in-flight request
                    # Stop raced the reader: a request written before the
                    # signal may still be in the socket buffer (or stuck
                    # behind a missed wakeup).  Shrink the timeout and
                    # serve until a full window passes with no data.
                    draining = True
                    try:
                        conn.settimeout(0.05)
                    except OSError:
                        return
                    continue
                if not line:  # EOF
                    return
                if not line.strip():
                    continue
                response = self._serve_request(line)
                try:
                    conn.sendall(encode_message(response))
                except OSError:
                    return
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._conn_lock:
                self._conn_threads.discard(threading.current_thread())

    # -- dispatch ----------------------------------------------------------------

    def _serve_request(self, line: bytes) -> dict[str, Any]:
        began = time.perf_counter()
        op = "?"
        try:
            request = decode_message(line)
            op = str(request.get("op", ""))
            with span("serve.request"):
                with span(f"serve.{op}"):
                    response = self._dispatch(op, request)
        except (ProtocolError, ServeError, KeyError, TypeError, ValueError) as error:
            detail = error.args[0] if error.args else str(error)
            response = error_response(op, str(detail))
        except Exception as error:  # noqa: BLE001 - daemon must not die on a request
            log.info(f"repro serve: internal error on {op!r}: {error!r}")
            response = error_response(op, f"internal error: {error!r}")
        elapsed_ms = (time.perf_counter() - began) * 1000.0
        metrics().histogram("serve.latency_ms").observe(elapsed_ms)
        if op in ("open", "event", "report", "evaluate"):
            metrics().histogram(f"serve.latency_ms.{op}").observe(elapsed_ms)
        self.requests_served += 1
        return response

    def _dispatch(self, op: str, request: dict[str, Any]) -> dict[str, Any]:
        if op == "ping":
            return ok_response(
                "ping",
                request,
                pid=os.getpid(),
                uptime_s=time.monotonic() - self._began,
                protocol=PROTOCOL_VERSION,
            )
        if op == "open":
            return self._handle_open(request)
        if op == "event":
            return self._handle_event(request)
        if op == "report":
            return self._handle_report(request)
        if op == "close":
            return self._handle_close(request)
        if op == "evaluate":
            return self._handle_evaluate(request)
        if op == "stats":
            return self._handle_stats(request)
        if op == "shutdown":
            self.request_stop()
            return ok_response("shutdown", request, stopping=True)
        raise ServeError(f"unknown op {op!r}")

    # -- op handlers -------------------------------------------------------------

    def _materialize(self, scenario: str, seed: int | None, max_events: int | None):
        spec = self.registry.get(scenario, seed=seed)
        key = (spec.name, spec.seed, max_events)
        with self._state_lock:
            cached = self._materialized.get(key)
        if cached is not None:
            return cached
        mat = materialize(spec)
        if max_events is not None:
            import dataclasses

            if not 0 <= max_events <= len(mat.events):
                raise ServeError(
                    f"max_events {max_events} outside [0, {len(mat.events)}]"
                )
            mat = dataclasses.replace(mat, events=mat.events[:max_events])
        with self._state_lock:
            # Keep the first materialization if a concurrent open won the
            # race: sessions sharing one object share problem identity.
            cached = self._materialized.setdefault(key, mat)
        return cached

    def _handle_open(self, request: dict[str, Any]) -> dict[str, Any]:
        scenario = request.get("scenario")
        if not scenario:
            raise ServeError("open needs a 'scenario' preset name")
        policy_name = str(request.get("policy", "task-eft"))
        factory = self.policy_factories.get(policy_name)
        if factory is None:
            raise ServeError(
                f"unknown policy {policy_name!r} "
                f"(serving: {', '.join(sorted(self.policy_factories))})"
            )
        seed = request.get("seed")
        max_events = request.get("max_events")
        oracle = bool(request.get("oracle", self.config.oracle))
        materialized = self._materialize(
            str(scenario), None if seed is None else int(seed), max_events
        )
        session = PlacementSession(
            materialized,
            policy_name,
            factory(),
            episode_multiplier=int(
                request.get("episode_multiplier", self.config.episode_multiplier)
            ),
            oracle=oracle,
        )
        with self._state_lock:
            self._session_counter += 1
            session_id = f"s{self._session_counter}"
            self._sessions[session_id] = _Session(session)
        return ok_response(
            "open",
            request,
            session=session_id,
            scenario=materialized.spec.name,
            seed=materialized.spec.seed,
            policy=policy_name,
            events=session.num_events,
            oracle=oracle,
        )

    def _session(self, request: dict[str, Any]) -> tuple[str, _Session]:
        session_id = request.get("session")
        if not session_id:
            raise ServeError("request needs a 'session' id from a prior open")
        with self._state_lock:
            entry = self._sessions.get(str(session_id))
        if entry is None:
            raise ServeError(f"no open session {session_id!r}")
        return str(session_id), entry

    def _handle_event(self, request: dict[str, Any]) -> dict[str, Any]:
        session_id, entry = self._session(request)
        with entry.lock:
            session = entry.session
            if not session.remaining:
                raise ServeError(
                    f"session {session_id!r} has no events left "
                    f"({session.num_events} consumed)"
                )
            with span("serve.search"):
                record = session.step()
            remaining = session.remaining
        row = {
            name: getattr(record, name) for name in record.__dataclass_fields__
        }
        return ok_response(
            "event", request, session=session_id, record=row, remaining=remaining
        )

    def _handle_report(self, request: dict[str, Any]) -> dict[str, Any]:
        session_id, entry = self._session(request)
        include_timing = bool(request.get("include_timing", False))
        with entry.lock:
            report = entry.session.report().as_dict(include_timing=include_timing)
            remaining = entry.session.remaining
        return ok_response(
            "report", request, session=session_id, report=report, remaining=remaining
        )

    def _handle_close(self, request: dict[str, Any]) -> dict[str, Any]:
        session_id, entry = self._session(request)
        with self._state_lock:
            self._sessions.pop(session_id, None)
        with entry.lock:  # let an in-flight step on this session finish
            pass
        return ok_response("close", request, session=session_id, closed=True)

    def _handle_evaluate(self, request: dict[str, Any]) -> dict[str, Any]:
        scenario = request.get("scenario")
        if not scenario:
            raise ServeError("evaluate needs a 'scenario' preset name")
        placements = request.get("placements")
        if not isinstance(placements, list) or not placements:
            raise ServeError("evaluate needs a non-empty 'placements' list")
        seed = request.get("seed")
        graph_index = int(request.get("graph", 0))
        materialized = self._materialize(
            str(scenario), None if seed is None else int(seed), None
        )
        key = (materialized.spec.name, materialized.spec.seed)
        with self._state_lock:
            problems = self._eval_problems.get(key)
            if problems is None:
                problems = [
                    PlacementProblem(g, materialized.initial_network)
                    for g in materialized.initial_graphs
                ]
                self._eval_problems[key] = problems
            pool = self._eval_pools.get(key)
            if pool is None:
                pool = EvaluatorPool(materialized.spec.make_objective())
                self._eval_pools[key] = pool
            if not 0 <= graph_index < len(problems):
                raise ServeError(
                    f"graph index {graph_index} outside [0, {len(problems)})"
                )
            problem = problems[graph_index]
            # pool.get mutates the pool's LRU order: resolve the evaluator
            # under the state lock, then let the batcher's single drain
            # thread do all cache-mutating evaluation work.
            evaluator = pool.get(problem)
        values = self.batcher.submit_many(evaluator, placements)
        return ok_response(
            "evaluate",
            request,
            scenario=materialized.spec.name,
            seed=materialized.spec.seed,
            graph=graph_index,
            values=values,
        )

    def _handle_stats(self, request: dict[str, Any]) -> dict[str, Any]:
        latency = metrics().histogram("serve.latency_ms")
        with self._state_lock:
            open_sessions = len(self._sessions)
        return ok_response(
            "stats",
            request,
            requests=self.requests_served,
            open_sessions=open_sessions,
            batches=self.batcher.batches,
            batched_requests=self.batcher.requests,
            latency_ms={
                "count": latency.count,
                "mean": latency.mean,
                "min": latency.min if latency.count else 0.0,
                "max": latency.max if latency.count else 0.0,
            },
        )


def install_signal_handlers(server: PlacementServer) -> None:
    """Route SIGTERM/SIGINT to a graceful drain (main thread only)."""

    def _handle(signum, frame):  # noqa: ARG001
        log.info(f"repro serve: received signal {signum}, draining")
        server.request_stop()

    signal.signal(signal.SIGTERM, _handle)
    signal.signal(signal.SIGINT, _handle)
