"""Session-oriented placement runtime shared by the batch runner and the daemon.

:class:`PlacementSession` is the per-event adapt → repair → search →
migrate state machine that used to live inline in
``ScenarioRunner._run_policy``.  A session owns everything one policy
needs to track a changing cluster: the materialized event stream, the
current uid placements, a private :class:`EvaluatorPool`, the
relocation-cost model, and the per-step evaluator-stats tracker.  Each
:meth:`PlacementSession.step` consumes exactly one scenario event and
returns the resulting :class:`StepRecord`; :meth:`PlacementSession.report`
assembles the :class:`AdaptationReport` accumulated so far.

Determinism contract (inherited from the runner and pinned by the
serve equivalence suite): all replay randomness derives from
``(spec.seed, policy name, event index)`` and all oracle randomness
from ``(spec.seed, ORACLE_KEY, event index, graph index)``, so driving
a session one event at a time over a socket produces byte-identical
reports to the in-process batch replay — caches and batching change
speed, never values.

The module-level helpers (:func:`scenario_states`,
:func:`repair_placement`, :func:`migration_cost`,
:func:`oracle_event_slr`, …) are the single source of truth for how
events transform state; the runner's methods delegate here.
"""

from __future__ import annotations

import time
import zlib
from typing import Sequence

import numpy as np

from ..baselines.base import SearchPolicy
from ..baselines.heft import heft_placement
from ..baselines.random_policies import RandomTaskEftPolicy
from ..core.placement import PlacementProblem, random_placement
from ..devices.network import DeviceNetwork
from ..runtime.evaluator import EvaluatorPool, EvaluatorStats, PlacementEvaluator
from ..scenarios.events import MaterializedScenario, ScenarioEvent, materialize
from ..scenarios.report import AdaptationReport, StepRecord
from ..scenarios.spec import ScenarioSpec
from ..sim.metrics import cp_min_lower_bound
from ..sim.objectives import MakespanObjective, Objective
from ..sim.relocation import RelocationCostModel, TaskRelocationProfile
from ..telemetry import DeltaTracker, metrics, span

__all__ = [
    "ORACLE_KEY",
    "PlacementSession",
    "migration_cost",
    "oracle_event_slr",
    "policy_key",
    "relocation_model",
    "repair_placement",
    "scenario_states",
    "slr_denominator",
    "uid_placement",
]

ORACLE_KEY = zlib.crc32(b"__fresh-search-oracle__")


def policy_key(name: str) -> int:
    """Stable (non-salted) integer key for a policy name."""
    return zlib.crc32(name.encode("utf-8"))


def uid_placement(placement: Sequence[int], network: DeviceNetwork) -> tuple[int, ...]:
    """Dense device indices -> stable device uids."""
    return tuple(network.devices[d].uid for d in placement)


def relocation_profile(spec: ScenarioSpec) -> TaskRelocationProfile:
    return TaskRelocationProfile(
        migration_bytes=spec.relocation.migration_bytes,
        static_init_kbytes=spec.relocation.static_init_kbytes,
        startup_ms_by_type={"generic": spec.relocation.startup_ms},
    )


def relocation_model(
    spec: ScenarioSpec, network: DeviceNetwork, profile: TaskRelocationProfile | None = None
) -> RelocationCostModel:
    return RelocationCostModel(
        {"task": profile if profile is not None else relocation_profile(spec)},
        {d.uid: "generic" for d in network.devices},
        include_static_init=spec.relocation.include_static_init,
    )


def slr_denominator(problem: PlacementProblem, objective: Objective) -> float:
    if isinstance(objective, MakespanObjective):
        return cp_min_lower_bound(problem.cost_model)
    return 1.0


def repair_placement(
    prev_uids: Sequence[int] | None, problem: PlacementProblem
) -> tuple[int, ...]:
    """Carry a uid placement onto ``problem``'s (possibly new) network.

    Tasks whose device survived keep it; stranded tasks fall back to
    their fastest feasible device (deterministic, so replays agree).
    """
    network, w = problem.network, problem.cost_model.W
    out = []
    for task, feasible in enumerate(problem.feasible_sets):
        dense: int | None = None
        if prev_uids is not None and prev_uids[task] in network:
            candidate = network.index_of(prev_uids[task])
            if candidate in feasible:
                dense = candidate
        if dense is None:
            dense = int(min(feasible, key=lambda d: w[task, d]))
        out.append(dense)
    return tuple(out)


def migration_cost(
    prev_uids: Sequence[int] | None,
    new_uids: Sequence[int],
    network: DeviceNetwork,
    model: RelocationCostModel,
    lost_source_startup_ms: float,
) -> tuple[int, float]:
    """(moved task count, total migration ms) between two placements."""
    if prev_uids is None:
        return 0, 0.0  # initial placement: deployment, not migration
    moved, cost = 0, 0.0
    for old, new in zip(prev_uids, new_uids):
        if old == new:
            continue
        moved += 1
        if old in network:
            cost += model.cost_ms("task", network, old, new)
        else:
            # Source device left the cluster: state is lost, only the
            # target startup is payable.
            cost += lost_source_startup_ms
    return moved, cost


def scenario_states(materialized: MaterializedScenario):
    """Advance cluster/workload state event by event.

    Yields ``(None, problems, network)`` for the initial state, then
    ``(event, problems, network)`` per event — the single source of
    truth for how events transform state, shared by the oracle, the
    policy replay, and the serving sessions so none can disagree on
    it.  Problem objects keep their identity across events that leave
    the network untouched (what makes :class:`EvaluatorPool` reuse pay
    off).
    """
    graphs = list(materialized.initial_graphs)
    network = materialized.initial_network
    problems = [PlacementProblem(g, network) for g in graphs]
    yield None, problems, network
    for event in materialized.events:
        if event.kind == "arrival":
            graphs.append(event.graph)
            problems.append(PlacementProblem(event.graph, network))
        else:
            network = event.network
            problems = [PlacementProblem(g, network) for g in graphs]
        yield event, problems, network


def _pool_evaluator(
    pool: EvaluatorPool | None, problem: PlacementProblem, objective: Objective
) -> PlacementEvaluator:
    if pool is not None:
        return pool.get(problem)
    return PlacementEvaluator(problem, objective)


def oracle_event_slr(
    event: ScenarioEvent,
    problems: Sequence[PlacementProblem],
    objective: Objective,
    pool: EvaluatorPool | None,
    seed: int,
    episode_multiplier: int,
) -> float:
    """Oracle SLR of one event: mean over its active graphs.

    Each (event, graph) pair draws from its own stream
    ``default_rng([seed, ORACLE_KEY, event.index, graph_index])``, so
    the oracle value of an event is a pure function of that event's
    identity — the property that lets events fan out over workers, and
    that lets a serving session compute it lazily per request while
    agreeing bit-for-bit with the batch runner's upfront series.
    """
    searcher = RandomTaskEftPolicy()
    slrs = []
    with span("scenario.oracle"):
        for graph_index, problem in enumerate(problems):
            rng = np.random.default_rng([seed, ORACLE_KEY, event.index, graph_index])
            evaluator = _pool_evaluator(pool, problem, objective)
            heft_value = evaluator.evaluate(heft_placement(problem).placement)
            trace = searcher.search(
                problem,
                objective,
                random_placement(problem, rng),
                episode_multiplier * problem.graph.num_tasks,
                rng,
                evaluator=evaluator,
            )
            denom = slr_denominator(problem, objective)
            slrs.append(min(heft_value, trace.best_value) / denom)
    return float(np.mean(slrs))


class PlacementSession:
    """One policy tracking one scenario's cluster, event by event.

    Parameters
    ----------
    spec: the scenario (or a pre-materialized one — the daemon
        materializes once and shares it across tenant sessions).
    name: the policy name; seeds the session's rng streams, so the
        same (scenario, seed, name) always replays identically.
    policy: the :class:`SearchPolicy` driven on every event.
    episode_multiplier: search budget per re-placement, in units of the
        graph's task count (the paper's 2·|V| protocol).
    reuse_evaluators: share one private :class:`EvaluatorPool` across
        the session (the production path); ``False`` builds a cold
        evaluator per (event, graph).
    oracle: whether oracle/regret fields are meaningful.  ``False``
        reports both as 0 (pure-throughput serving).
    oracle_slr: optional precomputed per-event oracle series (the batch
        runner's path).  When ``None`` and ``oracle`` is set, each
        event's oracle is computed lazily on demand from its own rng
        stream — bit-identical to the upfront series.
    """

    def __init__(
        self,
        spec: ScenarioSpec | MaterializedScenario,
        name: str,
        policy: SearchPolicy,
        *,
        episode_multiplier: int = 2,
        reuse_evaluators: bool = True,
        oracle: bool = True,
        oracle_slr: Sequence[float] | None = None,
    ) -> None:
        if episode_multiplier < 1:
            raise ValueError("episode_multiplier must be >= 1")
        self.materialized = spec if isinstance(spec, MaterializedScenario) else materialize(spec)
        self.spec = self.materialized.spec
        self.name = name
        self.policy = policy
        self.episode_multiplier = episode_multiplier
        self.reuse_evaluators = reuse_evaluators
        self.oracle = oracle
        self._oracle_series = None if oracle_slr is None else [float(v) for v in oracle_slr]

        self._objective = self.spec.make_objective()
        self._key = policy_key(name)
        self._profile = relocation_profile(self.spec)
        self._pool = EvaluatorPool(self._objective) if reuse_evaluators else None
        self._cold_stats = EvaluatorStats()  # aggregate when evaluators are per-event
        self._tracker = DeltaTracker(EvaluatorStats().as_dict())
        # The lazy oracle owns a separate pool: oracle evaluations must
        # not leak into the policy's per-step cache statistics.
        self._oracle_pool = (
            EvaluatorPool(self._objective)
            if (oracle and oracle_slr is None and reuse_evaluators)
            else None
        )

        self._states = scenario_states(self.materialized)
        _, problems, network = next(self._states)
        self._network = network
        self._model = relocation_model(self.spec, network, self._profile)

        # Initial deployment: a shared random placement per graph, the
        # state every event adapts from.
        init_rng = np.random.default_rng([self.spec.seed, self._key, 0])
        self.placements: list[tuple[int, ...] | None] = [
            uid_placement(random_placement(p, init_rng), network) for p in problems
        ]

        self.steps: list[StepRecord] = []
        self._absorbed = False

    # -- introspection -----------------------------------------------------------

    @property
    def num_events(self) -> int:
        return self.materialized.num_events

    @property
    def events_consumed(self) -> int:
        return len(self.steps)

    @property
    def remaining(self) -> int:
        return self.num_events - len(self.steps)

    # -- oracle ------------------------------------------------------------------

    def _oracle_value(self, event: ScenarioEvent, problems: Sequence[PlacementProblem]) -> float:
        if self._oracle_series is not None:
            return float(self._oracle_series[event.index])
        if not self.oracle:
            return 0.0
        return oracle_event_slr(
            event,
            problems,
            self._objective,
            self._oracle_pool,
            self.spec.seed,
            self.episode_multiplier,
        )

    # -- the per-event state machine ---------------------------------------------

    def step(self) -> StepRecord:
        """Consume the next scenario event; adapt, search, migrate, record.

        Raises :class:`StopIteration` when the event stream is drained.
        """
        event, problems, network = next(self._states)
        began = time.perf_counter()
        spec, policy = self.spec, self.policy
        adapt = getattr(policy, "adapt", None)
        if callable(adapt):
            with span("scenario.adapt"):
                adapt(event)
        if event.kind == "arrival":
            self.placements.append(None)
        else:
            self._model = relocation_model(spec, network, self._profile)
        self._network = network

        rng = np.random.default_rng([spec.seed, self._key, 1 + event.index])
        values, slrs = [], []
        moved_total, cost_total = 0, 0.0
        for i, problem in enumerate(problems):
            evaluator = _pool_evaluator(self._pool, problem, self._objective)
            initial = repair_placement(self.placements[i], problem)
            with span("scenario.search"):
                trace = policy.search(
                    problem,
                    self._objective,
                    initial,
                    self.episode_multiplier * problem.graph.num_tasks,
                    rng,
                    evaluator=evaluator,
                )
            new_uids = uid_placement(trace.best_placement, network)
            with span("scenario.migrate"):
                moved, cost = migration_cost(
                    self.placements[i],
                    new_uids,
                    network,
                    self._model,
                    spec.relocation.startup_ms,
                )
            self.placements[i] = new_uids
            moved_total += moved
            cost_total += cost
            values.append(trace.best_value)
            slrs.append(trace.best_value / slr_denominator(problem, self._objective))
            if self._pool is None:
                self._cold_stats.merge(evaluator.stats)

        elapsed = time.perf_counter() - began
        total = self._pool.stats() if self._pool is not None else self._cold_stats
        step_delta = self._tracker.delta(total.as_dict())
        evaluations = int(step_delta.get("evaluations", 0))
        looked_up = step_delta.get("cache_hits", 0) + step_delta.get("cache_misses", 0)
        hit_rate = step_delta.get("cache_hits", 0) / looked_up if looked_up else 0.0
        frequency = spec.relocation.pipeline_frequency_hz
        oracle_value = self._oracle_value(event, problems)
        record = StepRecord(
            index=event.index,
            step=event.step,
            kind=event.kind,
            num_graphs=len(problems),
            num_devices=network.num_devices,
            mean_value=float(np.mean(values)),
            mean_slr=float(np.mean(slrs)),
            oracle_slr=oracle_value,
            # Without an oracle there is nothing to regret against.
            regret=float(np.mean(slrs) - oracle_value) if self.oracle else 0.0,
            migrated_tasks=moved_total,
            migration_cost_ms=cost_total,
            amortized_migration_ms=cost_total / frequency if frequency else cost_total,
            replace_seconds=elapsed,
            evaluations=evaluations,
            cache_hit_rate=hit_rate,
        )
        self.steps.append(record)
        return record

    def run(self) -> AdaptationReport:
        """Drain every remaining event, then return the report."""
        while self.remaining:
            self.step()
        return self.report()

    def evaluator_stats(self) -> EvaluatorStats:
        return self._pool.stats() if self._pool is not None else self._cold_stats

    def report(self) -> AdaptationReport:
        """The :class:`AdaptationReport` of the steps consumed so far."""
        final_stats = self.evaluator_stats()
        if not self._absorbed:
            # Once per session, mirroring the batch runner's end-of-replay
            # absorb (metrics are observational; reports don't carry them).
            metrics().absorb("scenario.evaluator", final_stats.as_dict(), skip=("hit_rate",))
            self._absorbed = True
        return AdaptationReport(
            scenario=self.spec.name,
            policy=self.name,
            seed=self.spec.seed,
            objective=self.spec.objective,
            steps=tuple(self.steps),
            evaluator_stats=final_stats.as_dict(),
        )
