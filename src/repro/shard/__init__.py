"""Sharded run orchestration (``repro shard plan|run|merge``).

Splits any backend-capable experiment into N deterministic shard
manifests, executes each as an independent process (locally or on
another machine — the transport is the content-addressed run store, i.e.
plain files), and merges the published results into a report
byte-identical to the single-host run at any shard count.
"""

from .manifest import (
    ShardManifest,
    StaleManifestError,
    load_manifest,
    run_fingerprint,
    scale_from_dict,
    validate_manifest,
)
from .orchestrator import collect_manifests, merge_shards, plan, run_shard

__all__ = [
    "ShardManifest",
    "StaleManifestError",
    "collect_manifests",
    "load_manifest",
    "merge_shards",
    "plan",
    "run_fingerprint",
    "run_shard",
    "scale_from_dict",
    "validate_manifest",
]
