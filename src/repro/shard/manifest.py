"""Shard manifests: the declarative unit of cross-machine distribution.

A manifest is a small JSON file that fully determines one shard of an
experiment run: experiment id, seed, the *complete* scale parameters,
the shard's cell assignment (``index % num_shards == shard_index`` over
every fan-out of the run), the store directory shards exchange results
through, and the code/config fingerprints the plan was made under.

Fingerprints make staleness loud: ``repro shard run`` and ``repro shard
merge`` recompute them and refuse a manifest whose code or config no
longer matches — the store is additionally code-salted (see
:mod:`repro.store`), so even a bypassed check could only miss, never
serve stale bytes.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass

from ..experiments.config import Scale
from ..store import code_fingerprint, fingerprint

__all__ = [
    "ShardManifest",
    "StaleManifestError",
    "config_key",
    "load_manifest",
    "run_fingerprint",
    "scale_from_dict",
    "validate_manifest",
]

SCHEMA = 1
KIND = "repro-shard-manifest"


class StaleManifestError(RuntimeError):
    """A manifest's fingerprints no longer match the current code/config."""


def scale_from_dict(payload: dict) -> Scale:
    """Rebuild a :class:`Scale` from its JSON dict (tuples restored)."""
    fields = dict(payload)
    fields["timing_graph_sizes"] = tuple(fields["timing_graph_sizes"])
    return Scale(**fields)


def config_key(experiment: str, seed: int, scale: Scale) -> dict:
    """The run's configuration identity (everything but the code)."""
    return {
        "experiment": experiment,
        "seed": seed,
        "scale": dataclasses.asdict(scale),
    }


def run_fingerprint(experiment: str, seed: int, scale: Scale) -> str:
    """Identity of one run: configuration + installed code version."""
    return fingerprint({**config_key(experiment, seed, scale), "code": code_fingerprint()})


@dataclass(frozen=True)
class ShardManifest:
    """One shard's slice of a planned run (see the module docstring)."""

    experiment: str
    seed: int
    scale: Scale
    num_shards: int
    shard_index: int
    store: str  # store directory; relative paths resolve against the manifest
    run: str  # run fingerprint (config + code)
    code: str  # code fingerprint alone, for precise staleness messages
    config: str  # config fingerprint alone

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "kind": KIND,
            "experiment": self.experiment,
            "seed": self.seed,
            "scale": dataclasses.asdict(self.scale),
            "num_shards": self.num_shards,
            "shard_index": self.shard_index,
            "cells": {
                "strategy": "modulo",
                "modulus": self.num_shards,
                "residue": self.shard_index,
            },
            "store": self.store,
            "fingerprint": {"run": self.run, "code": self.code, "config": self.config},
        }

    def store_path(self, manifest_path: pathlib.Path) -> pathlib.Path:
        """The store directory, resolving relative paths portably.

        Relative store paths anchor on the manifest's own directory, so
        copying a plan directory (manifests + store) to another machine
        needs no path surgery.
        """
        store = pathlib.Path(self.store)
        return store if store.is_absolute() else manifest_path.parent / store


def load_manifest(path: str | pathlib.Path) -> ShardManifest:
    """Parse and structurally validate a manifest file."""
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise StaleManifestError(f"cannot read shard manifest {path}: {error}") from None
    if not isinstance(payload, dict) or payload.get("kind") != KIND:
        raise StaleManifestError(f"{path} is not a shard manifest (kind != {KIND!r})")
    if payload.get("schema") != SCHEMA:
        raise StaleManifestError(
            f"{path} has manifest schema {payload.get('schema')!r}; "
            f"this code reads schema {SCHEMA}"
        )
    try:
        prints = payload["fingerprint"]
        return ShardManifest(
            experiment=payload["experiment"],
            seed=int(payload["seed"]),
            scale=scale_from_dict(payload["scale"]),
            num_shards=int(payload["num_shards"]),
            shard_index=int(payload["shard_index"]),
            store=payload["store"],
            run=prints["run"],
            code=prints["code"],
            config=prints["config"],
        )
    except (KeyError, TypeError, ValueError) as error:
        raise StaleManifestError(f"{path} is malformed: {error!r}") from None


def validate_manifest(manifest: ShardManifest, path: pathlib.Path) -> None:
    """Refuse manifests planned under different code or configuration.

    Raised *before* any store access, so a stale plan fails with one
    clear sentence instead of a confusing cascade of cell misses.
    """
    current_code = code_fingerprint()
    current_config = fingerprint(
        config_key(manifest.experiment, manifest.seed, manifest.scale)
    )
    if manifest.code != current_code:
        raise StaleManifestError(
            f"{path} was planned under code fingerprint {manifest.code[:12]} but the "
            f"installed repro sources fingerprint to {current_code[:12]}; results "
            "across code versions are not comparable — re-run `repro shard plan`"
        )
    if manifest.config != current_config:
        raise StaleManifestError(
            f"{path} carries config fingerprint {manifest.config[:12]} but its own "
            f"contents fingerprint to {current_config[:12]}; the manifest was edited "
            "inconsistently — re-run `repro shard plan`"
        )
    expected_run = run_fingerprint(manifest.experiment, manifest.seed, manifest.scale)
    if manifest.run != expected_run:
        raise StaleManifestError(
            f"{path} names run {manifest.run[:12]} but the current code/config "
            f"fingerprints to {expected_run[:12]}; re-run `repro shard plan`"
        )
