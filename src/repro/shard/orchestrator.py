"""Plan / run / merge orchestration for sharded experiment runs.

The lifecycle behind ``repro shard``:

1. :func:`plan` splits an experiment into N manifests — pure JSON, no
   computation.  Each names the same run fingerprint and store.
2. :func:`run_shard` executes one manifest: the experiment runs under a
   :class:`~repro.parallel.ShardBackend` that computes the shard's
   assigned cells (through an inline or fork inner backend) and
   publishes every result to the run store.  Shards may run in any
   order, concurrently, or on different machines — the store directory
   is the only coupling.
3. :func:`merge_shards` replays the experiment under a
   :class:`~repro.parallel.MergeBackend` that only loads published
   cells, producing a report byte-identical (canonical JSON) to the
   single-host run at any shard count.

The trace memo and stage memoization also write through the run store
(it is installed as the process-wide active store for the duration), so
a merge never re-simulates the case-study traffic or retrains inline
glue the shards already paid for.
"""

from __future__ import annotations

import json
import pathlib
from typing import Sequence

from ..experiments.base import ExperimentReport
from ..experiments.config import Scale
from ..experiments.registry import get_module, supports_backend
from ..parallel.backends import (
    ExecutionBackend,
    ForkBackend,
    InlineBackend,
    MergeBackend,
    ShardBackend,
)
from ..parallel.pool import resolve_workers
from ..store import RunStore, code_fingerprint, fingerprint, set_active_store
from ..telemetry import ProgressWriter, capture_run, span, write_run_log
from .manifest import (
    ShardManifest,
    StaleManifestError,
    config_key,
    load_manifest,
    run_fingerprint,
    validate_manifest,
)

__all__ = ["collect_manifests", "merge_shards", "plan", "run_shard"]


def plan(
    experiment: str,
    num_shards: int,
    seed: int,
    scale: Scale,
    out_dir: str | pathlib.Path,
    store: str | None = None,
) -> list[pathlib.Path]:
    """Write ``num_shards`` manifests for one experiment run.

    ``store`` defaults to a ``store/`` directory next to the manifests,
    recorded relatively so the whole plan directory stays portable.
    Serial-by-design experiments (table1/table7) are rejected here, at
    plan time, with the registry's explanation.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if not supports_backend(experiment):
        raise ValueError(
            f"experiment {experiment!r} runs serially by design "
            "(constants / wall-clock timing); there is no grid to shard"
        )
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    manifest_store = store if store is not None else "store"
    run = run_fingerprint(experiment, seed, scale)
    code = code_fingerprint()
    config = fingerprint(config_key(experiment, seed, scale))
    paths = []
    for index in range(num_shards):
        manifest = ShardManifest(
            experiment=experiment,
            seed=seed,
            scale=scale,
            num_shards=num_shards,
            shard_index=index,
            store=manifest_store,
            run=run,
            code=code,
            config=config,
        )
        path = out / f"shard-{index}of{num_shards}.json"
        path.write_text(json.dumps(manifest.to_dict(), indent=1, sort_keys=True) + "\n")
        paths.append(path)
    return paths


def _open(path: str | pathlib.Path) -> tuple[ShardManifest, pathlib.Path, RunStore]:
    path = pathlib.Path(path)
    manifest = load_manifest(path)
    validate_manifest(manifest, path)
    return manifest, path, RunStore(manifest.store_path(path))


def _execute(
    manifest: ShardManifest, store: RunStore, backend: ExecutionBackend
) -> ExperimentReport:
    """Run the manifest's experiment under ``backend`` with the run
    store installed process-wide (trace/stage memoization)."""
    module = get_module(manifest.experiment)
    previous = set_active_store(store)
    try:
        return module.run(manifest.scale, seed=manifest.seed, backend=backend)
    finally:
        set_active_store(previous)


def run_shard(
    manifest_path: str | pathlib.Path,
    workers: int = 1,
    missing: str = "compute",
    wait_timeout_s: float = 3600.0,
) -> ExperimentReport:
    """Execute one shard manifest; returns the shard's local report.

    ``workers`` sizes the inner backend: the shard's cells fan out over
    processes *within* the shard, composing with the cross-shard split.
    ``missing`` is the unowned-cell policy (see
    :class:`~repro.parallel.ShardBackend`): ``"compute"`` self-heals,
    ``"wait"`` polls the store for peer shards running concurrently.
    """
    manifest, path, store = _open(manifest_path)
    count = resolve_workers(workers)
    inner = ForkBackend(count) if count > 1 else InlineBackend()
    tag = f"shard{manifest.shard_index}of{manifest.num_shards}"
    telemetry_dir = store.root / "telemetry"
    heartbeat = ProgressWriter(telemetry_dir / f"progress-{tag}.jsonl")
    backend = ShardBackend(
        store,
        manifest.run,
        manifest.num_shards,
        manifest.shard_index,
        inner=inner,
        missing=missing,
        wait_timeout_s=wait_timeout_s,
        progress=heartbeat.write,
    )
    meta = {
        "experiment": manifest.experiment,
        "seed": manifest.seed,
        "scale": manifest.scale.name,
        "shard": manifest.shard_index,
        "num_shards": manifest.num_shards,
    }
    heartbeat.write(phase="start", experiment=manifest.experiment)
    with capture_run(meta) as capture:
        with span(f"experiment.{manifest.experiment}"):
            report = _execute(manifest, store, backend)
    heartbeat.write(phase="done", experiment=manifest.experiment)
    if capture.delta is not None:
        write_run_log(telemetry_dir / f"{tag}.jsonl", capture)
    return report


def collect_manifests(paths: Sequence[str | pathlib.Path]) -> list[pathlib.Path]:
    """Expand directories to the manifest files inside them."""
    out: list[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            found = sorted(path.glob("shard-*.json"))
            if not found:
                raise StaleManifestError(f"no shard-*.json manifests under {path}")
            out.extend(found)
        else:
            out.append(path)
    return out


def merge_shards(paths: Sequence[str | pathlib.Path]) -> ExperimentReport:
    """Merge a completed shard set into the final report.

    Accepts any one manifest of the plan (they all name the same run and
    store) or several / a plan directory; manifests from different plans
    are rejected.  Missing cells surface as
    :class:`~repro.parallel.MissingCellError` — merge never computes.
    """
    manifest_paths = collect_manifests(paths)
    if not manifest_paths:
        raise ValueError("merge needs at least one manifest (or a plan directory)")
    opened = [_open(p) for p in manifest_paths]
    first, first_path, store = opened[0]
    for other, other_path, _ in opened[1:]:
        if other.run != first.run:
            raise StaleManifestError(
                f"{other_path} belongs to run {other.run[:12]} but {first_path} to "
                f"{first.run[:12]}; merge one plan at a time"
            )
    backend = MergeBackend(store, first.run)
    return _execute(first, store, backend)
