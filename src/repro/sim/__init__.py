"""Runtime-simulator substrate (Appendix B.5) plus metrics and objectives."""

from .engine import Simulation
from .executor import SimResult, simulate
from .gantt import render_gantt, schedule_summary
from .latency import CostModel, make_affine_compute_matrix
from .metrics import cp_min_lower_bound, energy_cost, slr, total_cost
from .objectives import EnergyObjective, MakespanObjective, Objective, TotalCostObjective
from .relocation import RelocationCostModel, TaskRelocationProfile

__all__ = [
    "Simulation",
    "SimResult",
    "simulate",
    "render_gantt",
    "schedule_summary",
    "CostModel",
    "make_affine_compute_matrix",
    "cp_min_lower_bound",
    "slr",
    "total_cost",
    "energy_cost",
    "Objective",
    "MakespanObjective",
    "TotalCostObjective",
    "EnergyObjective",
    "RelocationCostModel",
    "TaskRelocationProfile",
]
