"""Minimal discrete-event simulation engine (SimPy substitute).

The paper's artifact uses SimPy to coordinate task-execution and
data-transmission events (Appendix B.5).  SimPy is unavailable offline,
so this module provides the same capability: a priority-queue event loop
with deterministic tie-breaking (events scheduled earlier run first at
equal timestamps).
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["Simulation"]


class Simulation:
    """A time-ordered event loop.

    Callbacks may schedule further events; :meth:`run` drains the queue
    and returns the timestamp of the last executed event.
    """

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time (valid inside callbacks)."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, self._seq, callback))
        self._seq += 1

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        heapq.heappush(self._queue, (time, self._seq, callback))
        self._seq += 1

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Run until the queue is empty (or ``until``); return final time.

        ``max_events`` guards against runaway feedback loops in user
        callbacks (a bug, not a load signal — hence an exception).
        """
        if self._running:
            raise RuntimeError("Simulation.run is not reentrant")
        self._running = True
        try:
            events = 0
            while self._queue:
                time, _, callback = self._queue[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._queue)
                self._now = time
                callback()
                events += 1
                if events > max_events:
                    raise RuntimeError(f"exceeded {max_events} events; callback loop?")
            return self._now
        finally:
            self._running = False
