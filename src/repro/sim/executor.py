"""Runtime simulator implementing the paper's execution model (App. B.5).

Model characteristics, verbatim from the paper:

1. each device executes runnable tasks first-in-first-out;
2. task execution is non-preemptive;
3. at most one task runs on a device at a time;
4. computation overlaps with communication (sends are concurrent and
   contention-free).

A non-entry task becomes runnable on its placed device once all parent
outputs have arrived there; entry tasks are runnable at time 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..devices.network import DeviceNetwork
from ..graphs.task_graph import TaskGraph
from .engine import Simulation
from .latency import CostModel

__all__ = ["SimResult", "simulate"]


@dataclass(frozen=True)
class SimResult:
    """Timeline produced by one simulated execution.

    Attributes
    ----------
    makespan: completion time  (max task finish − min task start).
    start / finish: per-task execution window (the ts_i / td_i events).
    arrival: ``arrival[(u, v)]`` is the transmission-done time td_uv.
    device_last_finish: per-device time its queue drained.
    placement: the placement that was simulated (dense device indices).
    """

    makespan: float
    start: np.ndarray
    finish: np.ndarray
    arrival: dict[tuple[int, int], float]
    device_last_finish: np.ndarray
    placement: tuple[int, ...]

    def execution_order(self, device: int) -> list[int]:
        """Tasks run on ``device``, in start-time order."""
        tasks = [i for i, d in enumerate(self.placement) if d == device]
        return sorted(tasks, key=lambda i: self.start[i])


def simulate(
    graph: TaskGraph,
    network: DeviceNetwork,
    placement: Sequence[int],
    cost_model: CostModel | None = None,
    noise: float = 0.0,
    rng: np.random.Generator | None = None,
) -> SimResult:
    """Execute ``graph`` on ``network`` under ``placement``; return the timeline.

    ``placement[i]`` is the dense device index of task ``i``.  Placement
    feasibility (hardware constraints) is validated up front.  With
    ``noise`` > 0, computation/communication realizations are drawn
    uniformly on ±noise around their expectations using ``rng``.
    """
    n, m = graph.num_tasks, network.num_devices
    placement = tuple(int(d) for d in placement)
    if len(placement) != n:
        raise ValueError(f"placement has {len(placement)} entries for {n} tasks")
    if cost_model is None:
        cost_model = CostModel(graph, network)
    for i, d in enumerate(placement):
        if not 0 <= d < m:
            raise ValueError(f"task {i} placed on unknown device {d}")
        if not network.devices[d].supports_requirement(graph.requirements[i]):
            raise ValueError(
                f"infeasible placement: task {i} (hardware type "
                f"{graph.requirements[i]}) on device index {d}"
            )
    if noise > 0.0 and rng is None:
        raise ValueError("noise > 0 requires an rng")

    sim = Simulation()
    start = np.full(n, np.nan)
    finish = np.full(n, np.nan)
    arrival: dict[tuple[int, int], float] = {}
    pending_inputs = [len(graph.parents[i]) for i in range(n)]
    queues: list[list[int]] = [[] for _ in range(m)]
    busy = [False] * m
    device_last_finish = np.zeros(m)

    def try_dispatch(device: int) -> None:
        if busy[device] or not queues[device]:
            return
        task = queues[device].pop(0)
        busy[device] = True
        start[task] = sim.now
        duration = CostModel.realize(cost_model.compute_time(task, device), noise, rng)
        sim.schedule(duration, lambda: on_task_done(task, device))

    def on_task_done(task: int, device: int) -> None:
        finish[task] = sim.now
        device_last_finish[device] = sim.now
        busy[device] = False
        # Concurrent, contention-free sends to every child (overlap rule 4).
        for child in graph.children[task]:
            edge = (task, child)
            delay = CostModel.realize(
                cost_model.comm_time(edge, device, placement[child]), noise, rng
            )
            sim.schedule(delay, lambda e=edge: on_arrival(e))
        try_dispatch(device)

    def on_arrival(edge: tuple[int, int]) -> None:
        arrival[edge] = sim.now
        child = edge[1]
        pending_inputs[child] -= 1
        if pending_inputs[child] == 0:
            enqueue(child)

    def enqueue(task: int) -> None:
        device = placement[task]
        queues[device].append(task)
        try_dispatch(device)

    for entry in graph.entries:
        sim.schedule_at(0.0, lambda t=entry: enqueue(t))
    sim.run()

    if np.isnan(finish).any():
        missing = [i for i in range(n) if np.isnan(finish[i])]
        raise RuntimeError(f"simulation deadlock: tasks {missing} never ran")

    makespan = float(finish.max() - start.min())
    return SimResult(makespan, start, finish, arrival, device_last_finish, placement)
