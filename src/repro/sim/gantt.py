"""Text rendering of simulated schedules (Gantt charts).

Turns a :class:`~repro.sim.executor.SimResult` into a per-device ASCII
timeline — the debugging view for "why is this placement slow": device
idle gaps, serialization on hot devices, and communication stalls become
visible at a glance.
"""

from __future__ import annotations

from ..graphs.task_graph import TaskGraph
from .executor import SimResult

__all__ = ["render_gantt", "schedule_summary"]


def render_gantt(result: SimResult, graph: TaskGraph, width: int = 72) -> str:
    """ASCII Gantt chart: one row per device, task ids in their slots.

    Each column represents ``makespan / width`` time units; a task's slot
    is filled with its id (mod 10) and idle time with ``.``.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    makespan = max(result.makespan, 1e-12)
    num_devices = len(result.device_last_finish)
    scale = width / makespan
    t0 = float(result.start.min())

    lines = [f"time 0 {'-' * (width - 12)} {makespan:.2f}"]
    for d in range(num_devices):
        row = ["."] * width
        for task in result.execution_order(d):
            lo = int((result.start[task] - t0) * scale)
            hi = max(int((result.finish[task] - t0) * scale), lo + 1)
            mark = str(task % 10)
            for c in range(lo, min(hi, width)):
                row[c] = mark
        lines.append(f"dev {d:>2d} |{''.join(row)}|")
    return "\n".join(lines)


def schedule_summary(result: SimResult, graph: TaskGraph) -> str:
    """Tabular schedule: start/finish/device per task plus utilization."""
    lines = ["task  device   start    finish  duration"]
    for i in range(graph.num_tasks):
        lines.append(
            f"{i:>4d}  {result.placement[i]:>6d}  {result.start[i]:>7.2f}  "
            f"{result.finish[i]:>7.2f}  {result.finish[i] - result.start[i]:>8.2f}"
        )
    makespan = max(result.makespan, 1e-12)
    num_devices = len(result.device_last_finish)
    busy = [0.0] * num_devices
    for i in range(graph.num_tasks):
        busy[result.placement[i]] += float(result.finish[i] - result.start[i])
    util = ", ".join(f"dev{d}: {100 * busy[d] / makespan:.0f}%" for d in range(num_devices))
    lines.append(f"makespan {result.makespan:.2f}; utilization {util}")
    return "\n".join(lines)
