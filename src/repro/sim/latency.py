"""Latency models: expected computation and communication times.

Synthetic model (Appendix B.5, Eqs. 2-3):

    w_{i,k}    = C_i / SP_k
    c_{ij,kl}  = DL_kl + B_ij / BW_kl

With noise σ the realizations are uniform on ±σ around the expectation.
The case study swaps in a measured affine model ``w = C_i·T_j + S_j``
by supplying ``compute_matrix`` directly.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..devices.network import DeviceNetwork
from ..graphs.task_graph import TaskGraph

__all__ = ["CostModel"]


class CostModel:
    """Expected compute/communication times for one (graph, network) pair.

    Parameters
    ----------
    graph, network:
        The placement problem instance.
    compute_matrix:
        Optional (num_tasks, num_devices) matrix of expected compute
        times ``w_{i,k}``, overriding the default ``C_i / SP_k`` — used
        by the case study's measured latency model.  Entries for
        infeasible (task, device) pairs are ignored by callers.
    """

    def __init__(
        self,
        graph: TaskGraph,
        network: DeviceNetwork,
        compute_matrix: np.ndarray | None = None,
    ) -> None:
        self.graph = graph
        self.network = network
        if compute_matrix is None:
            compute_matrix = np.outer(graph.compute, 1.0 / network.speeds)
        else:
            compute_matrix = np.asarray(compute_matrix, dtype=np.float64)
            expected = (graph.num_tasks, network.num_devices)
            if compute_matrix.shape != expected:
                raise ValueError(f"compute_matrix must be {expected}, got {compute_matrix.shape}")
            if (compute_matrix < 0).any():
                raise ValueError("compute times must be non-negative")
        self.W = compute_matrix
        # 1/BW with exact zeros on the (infinite-bandwidth) diagonal.
        with np.errstate(divide="ignore"):
            self._inv_bw = np.where(np.isinf(network.bandwidth), 0.0, 1.0 / network.bandwidth)
        self.feasible_sets = network.feasible_sets(graph.requirements)

    # -- expectations -----------------------------------------------------------

    def compute_time(self, task: int, device: int) -> float:
        """Expected execution time w_{i,k} (Eq. 2)."""
        return float(self.W[task, device])

    def comm_time(self, edge: tuple[int, int], src_dev: int, dst_dev: int) -> float:
        """Expected transmission time c_{ij,kl} (Eq. 3); 0 if co-located."""
        if src_dev == dst_dev:
            return 0.0
        data = self.graph.edges[edge]
        return float(self.network.delay[src_dev, dst_dev] + data * self._inv_bw[src_dev, dst_dev])

    def comm_time_matrix(self, edge: tuple[int, int]) -> np.ndarray:
        """(m, m) matrix of c_{ij,kl} over all device pairs for one edge."""
        return self.network.delay + self.graph.edges[edge] * self._inv_bw

    def mean_compute_time(self, task: int) -> float:
        """Average w_{i,k} over the task's feasible devices (HEFT-style)."""
        return float(self.W[task, list(self.feasible_sets[task])].mean())

    def min_compute_time(self, task: int) -> float:
        """min_{d_j in D_i} w_{i,j} — the CP_MIN node weight (§5 metrics)."""
        return float(self.W[task, list(self.feasible_sets[task])].min())

    def mean_comm_time(self, edge: tuple[int, int]) -> float:
        """Average c_{ij,kl} over distinct device pairs (HEFT rank costs)."""
        m = self.network.num_devices
        if m == 1:
            return 0.0
        mat = self.comm_time_matrix(edge)
        off_diag = ~np.eye(m, dtype=bool)
        return float(mat[off_diag].mean())

    # -- noisy realizations --------------------------------------------------------

    @staticmethod
    def realize(expected: float, noise: float, rng: np.random.Generator | None) -> float:
        """Sample a realization uniform on [x(1-σ), x(1+σ)] (Appendix B.5)."""
        if noise == 0.0 or rng is None or expected == 0.0:
            return expected
        if not 0.0 <= noise < 1.0:
            raise ValueError("noise must be in [0, 1)")
        return float(expected * rng.uniform(1.0 - noise, 1.0 + noise))


def make_affine_compute_matrix(
    graph: TaskGraph,
    unit_times: np.ndarray,
    startup_times: np.ndarray,
) -> np.ndarray:
    """Case-study latency model: w_{i,j} = C_i · T_j + S_j (paper §B.4).

    ``unit_times[j]`` is T_j (ms per unit of compute on device j) and
    ``startup_times[j]`` is S_j.
    """
    unit_times = np.asarray(unit_times, dtype=np.float64)
    startup_times = np.asarray(startup_times, dtype=np.float64)
    return np.outer(graph.compute, unit_times) + startup_times[None, :]
