"""Placement quality metrics: SLR, total cost, energy (paper §5, §B.8).

The Schedule Length Ratio normalizes makespan by an instance-dependent
lower bound:

    SLR = makespan / Σ_{v_i ∈ CP_MIN} min_{d_j ∈ D_i} w_{i,j}

where CP_MIN is the critical path computed with each task's minimum
feasible compute cost (communication excluded, as in Topcuoglu et al.).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .latency import CostModel

__all__ = ["cp_min_lower_bound", "slr", "total_cost", "energy_cost"]


def cp_min_lower_bound(cost_model: CostModel) -> float:
    """Sum of minimum compute costs along the min-cost critical path."""
    graph = cost_model.graph
    best = [cost_model.min_compute_time(i) for i in range(graph.num_tasks)]
    # Longest path (node-weighted) via topological dynamic programming.
    path_cost = [0.0] * graph.num_tasks
    for v in graph.topo_order:
        incoming = max((path_cost[u] for u in graph.parents[v]), default=0.0)
        path_cost[v] = incoming + best[v]
    bound = max(path_cost)
    if bound <= 0.0:
        # All-zero-compute graphs (possible after grouping edge cases):
        # fall back to 1 so SLR stays finite and comparable.
        return 1.0
    return float(bound)


def slr(makespan: float, lower_bound: float) -> float:
    """Schedule Length Ratio; the best placement minimizes this."""
    if lower_bound <= 0:
        raise ValueError("lower bound must be positive")
    if makespan < 0:
        raise ValueError("makespan must be non-negative")
    return makespan / lower_bound


def total_cost(cost_model: CostModel, placement: Sequence[int]) -> float:
    """Σ_i w_{i,M(i)} + Σ_{ij} c_{ij,M(i)M(j)} — the §B.8 cost objective."""
    graph = cost_model.graph
    placement = list(placement)
    cost = sum(cost_model.compute_time(i, placement[i]) for i in range(graph.num_tasks))
    cost += sum(
        cost_model.comm_time((u, v), placement[u], placement[v]) for (u, v) in graph.edges
    )
    return float(cost)


def energy_cost(
    cost_model: CostModel,
    placement: Sequence[int],
    comm_power: float = 0.5,
) -> float:
    """Energy model: compute time × device power + comm time × link power.

    The paper demonstrates objective generality by "simply switching to a
    different reward function" (Fig. 11 right); this weighted-cost model
    is that alternative objective.  Devices carry ``compute_power``
    (replacement devices in the churn process get higher power, i.e.
    higher cost, per §5).
    """
    graph, network = cost_model.graph, cost_model.network
    placement = list(placement)
    energy = sum(
        cost_model.compute_time(i, placement[i]) * network.devices[placement[i]].compute_power
        for i in range(graph.num_tasks)
    )
    energy += comm_power * sum(
        cost_model.comm_time((u, v), placement[u], placement[v]) for (u, v) in graph.edges
    )
    return float(energy)
