"""Objective functions ρ(M | G, N) for the placement search (paper §3, §6).

GiPH's reward is objective-agnostic: any callable mapping a placement to
a scalar where *lower is better* plugs into the MDP.  Three objectives
from the paper are provided: makespan (the main experiments), total
computation+communication cost (§B.8), and energy (Fig. 11 right).
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from .executor import simulate
from .latency import CostModel
from .metrics import energy_cost, total_cost

__all__ = ["Objective", "MakespanObjective", "TotalCostObjective", "EnergyObjective"]


class Objective(Protocol):
    """A performance criterion; smaller values are better placements.

    ``deterministic`` declares whether repeated evaluations of the same
    placement return the same value — the contract that lets
    :class:`repro.runtime.PlacementEvaluator` cache results.  Noisy
    objectives (which re-sample realizations per call) must report
    ``False``; objectives lacking the attribute are treated as
    non-deterministic.
    """

    deterministic: bool

    def evaluate(self, cost_model: CostModel, placement: Sequence[int]) -> float:
        """Score ``placement`` for the instance bound to ``cost_model``."""
        ...


class MakespanObjective:
    """Application completion time via the runtime simulator.

    With ``noise`` > 0 each evaluation samples computation/communication
    realizations (±noise uniform), modeling real-system variability; the
    rng advances across calls, so repeated evaluations differ, exactly as
    the paper's noisy experiments do.
    """

    def __init__(self, noise: float = 0.0, rng: np.random.Generator | None = None) -> None:
        if noise < 0 or noise >= 1:
            raise ValueError("noise must be in [0, 1)")
        if noise > 0 and rng is None:
            raise ValueError("noisy makespan needs an rng")
        self.noise = noise
        self.rng = rng

    @property
    def deterministic(self) -> bool:
        """Noise-free evaluations are repeatable (hence cacheable)."""
        return self.noise == 0.0

    def reseeded(self, rng: np.random.Generator) -> "MakespanObjective":
        """Copy of this objective drawing noise from ``rng`` instead.

        The hook behind noise-resampling parallel modes: rather than
        sharing one mutable noise stream across episodes/processes (which
        would make results depend on execution order), each unit of work
        derives its own stream and asks for a reseeded objective copy.
        Noise-free objectives return an equivalent noise-free copy.
        """
        return MakespanObjective(
            noise=self.noise, rng=rng if self.noise > 0 else None
        )

    def evaluate(self, cost_model: CostModel, placement: Sequence[int]) -> float:
        result = simulate(
            cost_model.graph,
            cost_model.network,
            placement,
            cost_model,
            noise=self.noise,
            rng=self.rng,
        )
        return result.makespan


class TotalCostObjective:
    """Σ compute + Σ communication cost (paper §B.8)."""

    deterministic = True

    def evaluate(self, cost_model: CostModel, placement: Sequence[int]) -> float:
        return total_cost(cost_model, placement)


class EnergyObjective:
    """Energy-weighted cost (paper Fig. 11 right)."""

    deterministic = True

    def __init__(self, comm_power: float = 0.5) -> None:
        self.comm_power = comm_power

    def evaluate(self, cost_model: CostModel, placement: Sequence[int]) -> float:
        return energy_cost(cost_model, placement, self.comm_power)
