"""Task relocation cost model (paper §5.3, Table 2).

Relocating a task from one device to another incurs (a) migrating its
dynamic state over the network and (b) a startup delay on the target.
Because recurrent pipelines amortize a single relocation over many future
runs, the effective cost scales inversely with the pipeline frequency:
higher-frequency pipelines justify more expensive relocations (Fig. 11
left).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..devices.network import DeviceNetwork

__all__ = ["TaskRelocationProfile", "RelocationCostModel"]


@dataclass(frozen=True)
class TaskRelocationProfile:
    """Per-task relocation measurements (the columns of Table 2).

    Attributes
    ----------
    migration_bytes: dynamic state shipped between devices.
    static_init_kbytes: static initialization data fetched on the target
        (models, calibration) — shipped once, included in migration.
    startup_ms_by_type: startup time per device *type* key.
    """

    migration_bytes: float
    static_init_kbytes: float
    startup_ms_by_type: Mapping[str, float]

    def __post_init__(self) -> None:
        if self.migration_bytes < 0 or self.static_init_kbytes < 0:
            raise ValueError("relocation data sizes must be non-negative")
        if any(v < 0 for v in self.startup_ms_by_type.values()):
            raise ValueError("startup times must be non-negative")

    def startup_ms(self, device_type: str) -> float:
        if device_type not in self.startup_ms_by_type:
            raise KeyError(f"no startup measurement for device type {device_type!r}")
        return float(self.startup_ms_by_type[device_type])


class RelocationCostModel:
    """Relocation cost = data migration time + target startup time.

    Parameters
    ----------
    profiles: task name -> :class:`TaskRelocationProfile`.
    device_types: device uid -> type key (e.g. "A"/"B"/"C").
    include_static_init: whether the static initialization data must also
        travel (cold target); the paper's Table 2 separates it, so both
        accountings are supported.
    """

    def __init__(
        self,
        profiles: Mapping[str, TaskRelocationProfile],
        device_types: Mapping[int, str],
        include_static_init: bool = False,
    ) -> None:
        self.profiles = dict(profiles)
        self.device_types = dict(device_types)
        self.include_static_init = include_static_init

    def cost_ms(
        self,
        task_kind: str,
        network: DeviceNetwork,
        src_uid: int,
        dst_uid: int,
    ) -> float:
        """Milliseconds to move ``task_kind`` from ``src`` to ``dst``."""
        if task_kind not in self.profiles:
            raise KeyError(f"no relocation profile for task kind {task_kind!r}")
        if src_uid == dst_uid:
            return 0.0
        profile = self.profiles[task_kind]
        src, dst = network.index_of(src_uid), network.index_of(dst_uid)
        payload = profile.migration_bytes
        if self.include_static_init:
            payload += profile.static_init_kbytes * 1024.0
        bw = network.bandwidth[src, dst]  # bytes/ms in case-study units
        migration_ms = 0.0 if bw == float("inf") else payload / bw
        migration_ms += network.delay[src, dst]
        return migration_ms + profile.startup_ms(self.device_types[dst_uid])

    def amortized_cost_ms(
        self,
        task_kind: str,
        network: DeviceNetwork,
        src_uid: int,
        dst_uid: int,
        pipeline_frequency_hz: float,
    ) -> float:
        """Effective per-run cost: relocation cost ÷ pipeline frequency.

        Matches §5.3: "we divide the relocation cost by the frequency of
        pipeline runs", so fast pipelines tolerate costlier relocations.
        """
        if pipeline_frequency_hz <= 0:
            raise ValueError("pipeline frequency must be positive")
        return self.cost_ms(task_kind, network, src_uid, dst_uid) / pipeline_frequency_hz
