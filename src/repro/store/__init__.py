"""Content-addressed run/artifact store (see :mod:`repro.store.runstore`).

Besides the :class:`RunStore` class itself, this package owns the
*process-wide active store*: the slot the shard orchestrator (and the
``REPRO_STORE`` environment variable) configure so that store-aware
memoization — the case-study trace cache, ``ExecutionBackend.compute``
stage memoization — transparently persists across processes.  When no
store is active those layers fall back to in-process caching only, so
plain runs and the test suite never touch the filesystem implicitly.
"""

from __future__ import annotations

import os
from typing import Optional

from .runstore import RunStore, StoreStats, canonical_key, code_fingerprint, fingerprint

__all__ = [
    "RunStore",
    "StoreStats",
    "active_store",
    "canonical_key",
    "code_fingerprint",
    "fingerprint",
    "set_active_store",
]

# The process-wide store slot, tri-state: a RunStore, None (explicitly
# disabled, even if $REPRO_STORE is set), or _UNRESOLVED (lazily resolve
# from $REPRO_STORE on first use).
_UNRESOLVED = object()
_ACTIVE: object = _UNRESOLVED


def set_active_store(store) -> object:
    """Install the process-wide store; returns the *previous slot state*.

    Pass the return value back to a later ``set_active_store`` to
    restore exactly the state that was saved — including the
    "unresolved, fall back to ``REPRO_STORE``" state, which must survive
    a temporary installation (e.g. for the duration of a shard run).
    Passing ``None`` explicitly disables store-backed memoization even
    when ``REPRO_STORE`` is set.
    """
    global _ACTIVE
    if store is not None and store is not _UNRESOLVED and not isinstance(store, RunStore):
        raise TypeError(f"active store must be a RunStore or None, got {type(store)!r}")
    previous = _ACTIVE
    _ACTIVE = store
    return previous


def active_store() -> Optional[RunStore]:
    """The process-wide store, if any (env ``REPRO_STORE`` as fallback)."""
    global _ACTIVE
    if _ACTIVE is _UNRESOLVED:
        path = os.environ.get("REPRO_STORE")
        _ACTIVE = RunStore(path) if path else None
    return _ACTIVE if isinstance(_ACTIVE, RunStore) else None
