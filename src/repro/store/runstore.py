"""Content-addressed artifact store for runs and derived artifacts.

A :class:`RunStore` maps ``(kind, key)`` to a pickled value on disk,
where ``kind`` is a short namespace string ("cell", "trace", "stage")
and ``key`` is any JSON-serializable mapping.  The address of an entry
is the SHA-256 fingerprint of the canonical JSON encoding of the key,
salted with the :func:`code_fingerprint` of the installed ``repro``
sources — so a value produced by one code version can never be silently
served to another (it simply misses; the shard layer adds an explicit
stale-manifest error on top for a clean message).

Two store instances pointed at the same directory — in two processes,
two terminals, or two machines sharing a filesystem — see each other's
entries: writes are atomic (``os.replace`` of a same-directory temp
file), entries are immutable once written, and a key's value is a pure
function of the key under the repo's determinism contract, so
double-writes by racing producers are byte-equivalent and harmless.
This file-level visibility is the entire shard transport: ``repro shard
run`` publishes results by writing cells, ``repro shard merge`` reads
them back, and moving a shard to another machine is just copying the
store directory.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pathlib
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..telemetry import metrics

__all__ = [
    "RunStore",
    "StoreStats",
    "canonical_key",
    "code_fingerprint",
    "fingerprint",
]


def canonical_key(key: Mapping[str, Any]) -> str:
    """Canonical JSON encoding of a key mapping (sorted, compact).

    Tuples encode as JSON arrays, so ``(0, 1)`` and ``[0, 1]`` address
    the same entry — convenient for seed-stream keys, which circulate as
    tuples in code and as lists in manifests.
    """
    return json.dumps(key, sort_keys=True, separators=(",", ":"), default=_encode)


def _encode(value: Any):
    if isinstance(value, tuple):
        return list(value)
    raise TypeError(f"store keys must be JSON-serializable, got {type(value).__name__}")


def fingerprint(key: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of the canonical encoding of ``key``."""
    return hashlib.sha256(canonical_key(key).encode("utf-8")).hexdigest()


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Fingerprint of the installed ``repro`` package sources.

    Hashes every ``*.py`` file under the package directory (relative
    path + contents, in sorted order).  Baked into every store address
    and every shard manifest: results computed by one version of the
    code are invisible to any other version.
    """
    import repro

    package_dir = pathlib.Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_dir.rglob("*.py")):
        digest.update(str(path.relative_to(package_dir)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


@dataclass
class StoreStats:
    """Hit/miss/write counters for one :class:`RunStore` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}


class RunStore:
    """Content-addressed ``(kind, key) -> pickled value`` directory store."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = pathlib.Path(root)
        self.stats = StoreStats()
        self._salt = code_fingerprint()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunStore({str(self.root)!r})"

    def address(self, kind: str, key: Mapping[str, Any]) -> str:
        """The entry's content address (code-salted key fingerprint)."""
        return fingerprint({"__code__": self._salt, "__kind__": kind, **key})

    def path(self, kind: str, key: Mapping[str, Any]) -> pathlib.Path:
        address = self.address(kind, key)
        return self.root / kind / address[:2] / f"{address}.pkl"

    def has(self, kind: str, key: Mapping[str, Any]) -> bool:
        return self.path(kind, key).exists()

    def load(self, kind: str, key: Mapping[str, Any]) -> Any:
        """Unpickle the stored value (KeyError, with the address, if absent)."""
        path = self.path(kind, key)
        try:
            payload = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            metrics().counter("store.misses").inc()
            raise KeyError(
                f"store entry {kind}/{self.address(kind, key)[:12]} not found "
                f"under {self.root}"
            ) from None
        self.stats.hits += 1
        metrics().counter("store.hits").inc()
        return pickle.loads(payload)

    def save(self, kind: str, key: Mapping[str, Any], value: Any) -> pathlib.Path:
        """Atomically persist ``value``; concurrent same-key writers are safe.

        Entries are immutable: if the key is already present the existing
        bytes win (a racing producer computed the same value under the
        determinism contract, so there is nothing to reconcile).
        """
        path = self.path(kind, key)
        if path.exists():
            return path
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        tmp.write_bytes(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
        os.replace(tmp, path)
        self.stats.writes += 1
        metrics().counter("store.writes").inc()
        return path

    def get_or_create(
        self, kind: str, key: Mapping[str, Any], producer: Callable[[], Any]
    ) -> Any:
        """Memoize ``producer()`` under ``(kind, key)``."""
        try:
            return self.load(kind, key)
        except KeyError:
            value = producer()
            self.save(kind, key, value)
            return value
