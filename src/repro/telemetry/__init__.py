"""Unified telemetry fabric: trace spans, metrics registry, run logs.

Four small modules, one import surface:

- :mod:`.spans` — hierarchical `span()` timings over a process-wide
  collector, with `begin_task`/`end_task`/`merge_task_delta` for
  shipping worker activity across fork/shard boundaries;
- :mod:`.metrics` — the process-wide `Metrics` registry
  (counters/gauges/histograms) with mergeable snapshots;
- :mod:`.log` — the leveled stderr logger behind ``REPRO_LOG``;
- :mod:`.events` — `capture_run` + JSONL run logs + the renderers
  behind ``repro trace``.

Telemetry is observational only: it never touches an rng, never feeds a
value back into computation, and all its output stays out of
``stable_data()`` — the determinism suites run bit-identical with it on
(``REPRO_TELEMETRY=on``, the default) and off.
"""

from . import log
from .events import (
    ProgressWriter,
    RunCapture,
    capture_run,
    collect_run_files,
    export_chrome,
    read_records,
    render_top,
    render_tree,
    write_run_log,
)
from .metrics import DeltaTracker, Metrics, MetricsSnapshot, metrics
from .spans import (
    SpanStat,
    TaskDelta,
    begin_task,
    collector,
    enabled,
    end_task,
    merge_task_delta,
    reset,
    set_enabled,
    span,
    traced,
)

__all__ = [
    "DeltaTracker",
    "Metrics",
    "MetricsSnapshot",
    "ProgressWriter",
    "RunCapture",
    "SpanStat",
    "TaskDelta",
    "begin_task",
    "capture_run",
    "collect_run_files",
    "collector",
    "enabled",
    "end_task",
    "export_chrome",
    "log",
    "merge_task_delta",
    "metrics",
    "read_records",
    "render_top",
    "render_tree",
    "reset",
    "set_enabled",
    "span",
    "traced",
    "write_run_log",
]
