"""Run logs: capture a run's telemetry and write/read structured JSONL.

Every telemetry-enabled run (CLI experiment, shard run) ends by writing
one JSONL event log: a ``run`` header record, one ``span`` record per
aggregated span path, ``event`` records for the retained raw spans
(run-relative start times, for the Chrome export), ``metric`` records
from the registry, and an ``events_dropped`` marker when the raw-event
cap was hit.  Shard runs write one log per shard into the store's
``telemetry/`` directory; ``repro trace`` merges whatever logs a target
holds into a single span tree.

``ProgressWriter`` appends standalone ``progress`` records
(open-append-close per line, so records survive crashes and interleave
safely across processes) — the seed of heartbeat-based shard liveness.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from . import spans as _spans
from .metrics import metrics
from .spans import SpanStat, TaskDelta

__all__ = [
    "ProgressWriter",
    "RunCapture",
    "capture_run",
    "collect_run_files",
    "export_chrome",
    "read_records",
    "render_top",
    "render_tree",
    "write_run_log",
]


@dataclass
class RunCapture:
    """What one bracketed run recorded (``delta`` is None when disabled)."""

    meta: dict = field(default_factory=dict)
    wall_time: float = 0.0
    anchor: float = 0.0
    duration_s: float = 0.0
    delta: TaskDelta | None = None


@contextlib.contextmanager
def capture_run(meta: dict | None = None) -> Iterator[RunCapture]:
    """Bracket a whole run: spans/metrics recorded inside land in
    ``capture.delta`` (task-relative paths — the run root is path ``""``).

    The bracket reuses the worker-task capture machinery, so a captured
    run composes with fan-outs happening inside it.  ``capture.anchor``
    is the monotonic clock at entry; event start times in the written
    log are relative to it.
    """
    capture = RunCapture(meta=dict(meta or {}))
    capture.wall_time = time.time()
    capture.anchor = time.perf_counter()
    token = _spans.begin_task()
    try:
        yield capture
    finally:
        capture.duration_s = time.perf_counter() - capture.anchor
        if token is not None:
            capture.delta = _spans.end_task(token)


def write_run_log(path: Path, capture: RunCapture) -> Path:
    """Write one run's capture as a JSONL event log (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    records: list[dict] = [
        {
            "kind": "run",
            "wall_time": capture.wall_time,
            "duration_s": capture.duration_s,
            "pid": os.getpid(),
            **{f"meta.{k}": v for k, v in sorted(capture.meta.items())},
        }
    ]
    delta = capture.delta
    if delta is not None:
        for span_path in sorted(delta.spans):
            calls, seconds = delta.spans[span_path]
            records.append(
                {"kind": "span", "path": span_path, "calls": calls, "seconds": seconds}
            )
        for span_path, began, duration, pid in delta.events:
            records.append(
                {
                    "kind": "event",
                    "path": span_path,
                    "start_s": began - capture.anchor,
                    "duration_s": duration,
                    "pid": pid,
                }
            )
        if delta.events_dropped:
            records.append({"kind": "events_dropped", "count": delta.events_dropped})
        snap = delta.metrics
        for name in sorted(snap.counters):
            records.append(
                {"kind": "metric", "type": "counter", "name": name, "value": snap.counters[name]}
            )
        for name in sorted(snap.gauges):
            records.append(
                {"kind": "metric", "type": "gauge", "name": name, "value": snap.gauges[name]}
            )
        for name in sorted(snap.histograms):
            count, total, lo, hi = snap.histograms[name]
            records.append(
                {
                    "kind": "metric",
                    "type": "histogram",
                    "name": name,
                    "count": count,
                    "total": total,
                    "min": lo,
                    "max": hi,
                }
            )
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


class ProgressWriter:
    """Append ``progress`` records to a JSONL file, one open/close per
    record so partial runs and concurrent writers stay readable."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)

    def write(self, **fields: Any) -> None:
        record = {"kind": "progress", "wall_time": time.time(), **fields}
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        except OSError:
            pass  # liveness reporting must never kill the run


# -- reading + rendering --------------------------------------------------------------


def read_records(paths: list[Path]) -> list[dict]:
    """All JSONL records across files (malformed lines skipped)."""
    records: list[dict] = []
    for path in paths:
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


def collect_run_files(target: Path) -> list[Path]:
    """Resolve a trace target to the JSONL files it holds.

    A file is itself; a directory prefers its ``telemetry/`` (or
    ``store/telemetry/``) subdirectory with every log merged; otherwise
    shard/progress logs merge and a plain log directory yields the
    newest log (the usual "trace my last run" case).
    """
    target = Path(target)
    if target.is_file():
        return [target]
    if not target.is_dir():
        raise FileNotFoundError(f"no trace log at {target}")
    for sub in (target / "telemetry", target / "store" / "telemetry"):
        if sub.is_dir():
            found = sorted(sub.glob("*.jsonl"))
            if found:
                return found
    found = sorted(target.glob("*.jsonl"))
    if not found:
        raise FileNotFoundError(f"no *.jsonl trace logs under {target}")
    merged = [p for p in found if p.name.startswith(("shard-", "progress-"))]
    if merged:
        return found
    return [max(found, key=lambda p: (p.stat().st_mtime, p.name))]


def _merge_spans(records: list[dict]) -> dict[str, SpanStat]:
    stats: dict[str, SpanStat] = {}
    for record in records:
        if record.get("kind") != "span":
            continue
        stat = stats.get(record["path"])
        if stat is None:
            stats[record["path"]] = stat = SpanStat()
        stat.calls += int(record["calls"])
        stat.seconds += float(record["seconds"])
    return stats


def _run_seconds(records: list[dict]) -> float:
    return sum(
        float(r.get("duration_s", 0.0)) for r in records if r.get("kind") == "run"
    )


def _children(stats: dict[str, SpanStat]) -> dict[str, list[str]]:
    tree: dict[str, list[str]] = {}
    for path in stats:
        parent = path.rsplit("/", 1)[0] if "/" in path else ""
        tree.setdefault(parent, []).append(path)
    for paths in tree.values():
        paths.sort(key=lambda p: -stats[p].seconds)
    return tree


def _self_seconds(
    path: str, stats: dict[str, SpanStat], tree: dict[str, list[str]]
) -> float:
    child_total = sum(stats[c].seconds for c in tree.get(path, ()))
    return max(0.0, stats[path].seconds - child_total)


def render_tree(records: list[dict]) -> str:
    """Span-tree summary: calls, cumulative/self seconds, % of run."""
    stats = _merge_spans(records)
    total = _run_seconds(records)
    tree = _children(stats)
    roots = tree.get("", [])
    covered = sum(stats[p].seconds for p in roots)
    lines = []
    runs = [r for r in records if r.get("kind") == "run"]
    for run in runs:
        meta = {k[5:]: v for k, v in run.items() if k.startswith("meta.")}
        tag = " ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        lines.append(f"run: {tag or '(no meta)'}  duration {run.get('duration_s', 0.0):.2f}s")
    if total > 0:
        lines.append(f"coverage: {100.0 * covered / total:.1f}% of {total:.2f}s wall-clock in spans")
        lines.append("(cum/self sum CPU seconds across workers/shards; "
                     "parallel sections can exceed 100% of wall-clock)")
    if not stats:
        lines.append("no spans recorded (telemetry disabled?)")
        return "\n".join(lines)
    lines.append("")
    width = max(
        (2 * path.count("/") + len(path.rsplit("/", 1)[-1]) for path in stats),
        default=20,
    )
    width = max(width, len("span")) + 2
    header = f"{'span':<{width}} {'calls':>8} {'cum s':>10} {'self s':>10} {'% run':>7}"
    lines.append(header)
    lines.append("-" * len(header))

    def walk(path: str, depth: int) -> None:
        stat = stats[path]
        name = path.rsplit("/", 1)[-1]
        pct = 100.0 * stat.seconds / total if total > 0 else 0.0
        self_s = _self_seconds(path, stats, tree)
        lines.append(
            f"{'  ' * depth + name:<{width}} {stat.calls:>8} "
            f"{stat.seconds:>10.3f} {self_s:>10.3f} {pct:>6.1f}%"
        )
        for child in tree.get(path, ()):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    dropped = sum(
        int(r.get("count", 0)) for r in records if r.get("kind") == "events_dropped"
    )
    if dropped:
        lines.append(f"(raw events dropped past cap: {dropped})")
    return "\n".join(lines)


def render_top(records: list[dict], top: int) -> str:
    """Flat hotspot list ordered by self time."""
    stats = _merge_spans(records)
    if not stats:
        return "no spans recorded (telemetry disabled?)"
    tree = _children(stats)
    total = _run_seconds(records)
    rows = sorted(
        ((_self_seconds(p, stats, tree), p) for p in stats), reverse=True
    )[:top]
    width = max((len(p) for _, p in rows), default=20) + 2
    lines = [f"{'span':<{width}} {'calls':>8} {'self s':>10} {'% run':>7}"]
    lines.append("-" * len(lines[0]))
    for self_s, path in rows:
        pct = 100.0 * self_s / total if total > 0 else 0.0
        lines.append(f"{path:<{width}} {stats[path].calls:>8} {self_s:>10.3f} {pct:>6.1f}%")
    return "\n".join(lines)


def export_chrome(records: list[dict]) -> dict:
    """Chrome trace-event JSON (load in chrome://tracing or Perfetto)."""
    events: list[dict[str, Any]] = []
    for record in records:
        if record.get("kind") != "event":
            continue
        path = record["path"]
        name = path.rsplit("/", 1)[-1]
        parent = path.rsplit("/", 1)[0] if "/" in path else ""
        events.append(
            {
                "name": name,
                "cat": parent or "run",
                "ph": "X",
                "ts": float(record["start_s"]) * 1e6,
                "dur": float(record["duration_s"]) * 1e6,
                "pid": int(record.get("pid", 0)),
                "tid": 0,
                "args": {"path": path},
            }
        )
    events.sort(key=lambda e: e["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}
