"""Tiny leveled logger for CLI/runner status output.

Status and progress lines go through here — to **stderr**, prefixed
``[repro]`` — so stdout stays reserved for primary results and
machine-readable output (``--json`` payloads, report tables).  Level
comes from ``REPRO_LOG`` (``debug`` | ``info`` | ``quiet``; default
``info``) or a process-local :func:`set_level` override, re-read on
every call so tests can monkeypatch the environment freely.
"""

from __future__ import annotations

import os
import sys

__all__ = ["debug", "info", "set_level", "warn"]

_LEVELS = {"debug": 10, "info": 20, "warn": 30, "quiet": 100}

_OVERRIDE: str | None = None


def _threshold() -> int:
    name = _OVERRIDE or os.environ.get("REPRO_LOG", "info").strip().lower()
    return _LEVELS.get(name, 20)


def set_level(name: str | None) -> str | None:
    """Override ``REPRO_LOG`` in-process; returns the previous override."""
    global _OVERRIDE
    previous = _OVERRIDE
    _OVERRIDE = name
    return previous


def _emit(level: int, msg: str) -> None:
    if level >= _threshold():
        print(f"[repro] {msg}", file=sys.stderr, flush=True)


def debug(msg: str) -> None:
    _emit(10, msg)


def info(msg: str) -> None:
    _emit(20, msg)


def warn(msg: str) -> None:
    _emit(30, msg)
