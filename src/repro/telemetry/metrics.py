"""Process-wide metrics registry: counters, gauges, histograms.

One `Metrics` instance per process collects every numeric signal the
repo previously scattered over ad-hoc Stats classes (`EvaluatorStats`,
`GnnStats`, `StoreStats`, `EpisodeStats`, the scenario tracker).  The
legacy dataclasses keep their public shape where reports depend on it,
but their storage either *is* a registry counter (gnn, store) or is
absorbed into the registry at merge points (evaluator instances), so
`metrics().snapshot()` is the one place to read a run's counters.

Snapshots are plain dataclasses of dicts: picklable, diffable
(`snapshot.delta(since)`) and mergeable (`registry.merge_snapshot`), so
fork workers and shard processes ship their activity home exactly like
span deltas (see :mod:`repro.telemetry.spans`).

Instruments are deliberately minimal — no labels, no time windows; a
name is a dotted string like ``"store.hits"``.  Values never feed back
into computation: the registry is observational only (the determinism
suites run with it on and off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "DeltaTracker",
    "Gauge",
    "Histogram",
    "Metrics",
    "MetricsSnapshot",
    "metrics",
]


class Counter:
    """Monotonic accumulator (floats allowed: seconds are counters too)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary: count / total / min / max (no buckets)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class MetricsSnapshot:
    """Frozen copy of a registry, picklable and diffable.

    ``histograms`` maps name -> ``(count, total, min, max)``.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, tuple[int, float, float, float]] = field(default_factory=dict)

    def delta(self, since: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened after ``since`` was taken (drops unchanged entries).

        Counter/histogram values subtract; gauges are last-write-wins so
        a changed gauge carries its current value.  Histogram min/max
        can't be subtracted — the delta keeps the current extremes,
        which stay correct under :meth:`Metrics.merge_snapshot`'s
        min/min, max/max combination.
        """
        counters = {}
        for name, value in self.counters.items():
            diff = value - since.counters.get(name, 0.0)
            if diff:
                counters[name] = diff
        gauges = {
            name: value
            for name, value in self.gauges.items()
            if since.gauges.get(name) != value
        }
        histograms = {}
        for name, (count, total, lo, hi) in self.histograms.items():
            count0, total0, _, _ = since.histograms.get(name, (0, 0.0, 0.0, 0.0))
            if count > count0:
                histograms[name] = (count - count0, total - total0, lo, hi)
        return MetricsSnapshot(counters=counters, gauges=gauges, histograms=histograms)

    def as_dict(self) -> dict:
        """JSON-ready rendering (histograms expanded to labeled fields)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: {
                    "count": count,
                    "total": total,
                    "min": lo,
                    "max": hi,
                    "mean": total / count if count else 0.0,
                }
                for name, (count, total, lo, hi) in sorted(self.histograms.items())
            },
        }


class Metrics:
    """Get-or-create registry of named instruments."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            self._counters[name] = inst = Counter()
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            self._gauges[name] = inst = Gauge()
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            self._histograms[name] = inst = Histogram()
        return inst

    def absorb(
        self, prefix: str, mapping: Mapping[str, float], skip: Iterable[str] = ()
    ) -> None:
        """Add a legacy stats ``as_dict()`` into prefixed counters.

        Derived/non-additive fields (rates, averages) go in ``skip``.
        Used at merge points for *instance-scoped* stats (e.g. a run's
        merged `EvaluatorStats`); process-global stats that are already
        registry-backed must NOT also be absorbed or they double-count.
        """
        skipped = frozenset(skip)
        for key, value in mapping.items():
            if key in skipped or not isinstance(value, (int, float)):
                continue
            self.counter(f"{prefix}.{key}").inc(value)

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters={name: c.value for name, c in self._counters.items()},
            gauges={name: g.value for name, g in self._gauges.items()},
            histograms={
                name: (h.count, h.total, h.min, h.max)
                for name, h in self._histograms.items()
                if h.count
            },
        )

    def merge_snapshot(self, snap: MetricsSnapshot) -> None:
        """Fold a shipped snapshot (usually a delta) into this registry."""
        for name, value in snap.counters.items():
            self.counter(name).inc(value)
        for name, value in snap.gauges.items():
            self.gauge(name).set(value)
        for name, (count, total, lo, hi) in snap.histograms.items():
            hist = self.histogram(name)
            hist.count += count
            hist.total += total
            if lo < hist.min:
                hist.min = lo
            if hi > hist.max:
                hist.max = hi

    def reset(self) -> None:
        """Drop every instrument (tests only)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


_METRICS = Metrics()


def metrics() -> Metrics:
    """The process-wide registry."""
    return _METRICS


class DeltaTracker:
    """Per-window diffs over a numeric mapping (e.g. a stats ``as_dict()``).

    Replaces the scenario runner's ad-hoc ``_StatsTracker``: snapshot a
    mapping once, then ``delta(current)`` returns per-key increments
    since the previous call and advances the window.
    """

    def __init__(self, mapping: Mapping[str, float]) -> None:
        self._last = {k: v for k, v in mapping.items() if isinstance(v, (int, float))}

    def delta(self, mapping: Mapping[str, float]) -> dict[str, float]:
        current = {
            k: v for k, v in mapping.items() if isinstance(v, (int, float))
        }
        diff = {k: v - self._last.get(k, 0) for k, v in current.items()}
        self._last = current
        return diff
