"""Hierarchical trace spans over one process-wide collector.

A span measures one timed region on the monotonic clock
(``time.perf_counter``) and files it under a ``/``-joined hierarchical
path maintained by a simple enter/exit stack::

    with span("gnn.forward"):
        ...                       # recorded as <enclosing path>/gnn.forward

The collector keeps two views of the same activity:

* **aggregates** — ``path -> SpanStat(calls, seconds)``, always
  complete, tiny, and mergeable (this is what ``repro trace`` renders);
* **raw events** — ``(path, start, duration, pid)`` tuples for the
  Chrome trace-event export, best-effort: spans shorter than
  ``event_min_s`` are aggregated but not retained individually, and the
  list is capped (``events_dropped`` counts the overflow) so a long run
  cannot grow memory without bound.

Telemetry must never change computed results: spans touch no rng, no
report data, and no control flow.  When disabled (``REPRO_TELEMETRY=off``
or :func:`set_enabled`), :func:`span` returns a shared no-op context
manager — one attribute check and no allocation — so hot paths can stay
instrumented unconditionally.

Cross-process capture
---------------------
Fork workers record spans against *their own* collector copy.  The pool
layer (:mod:`repro.parallel.pool`) brackets every worker task with
:func:`begin_task` / :func:`end_task` — which zero the current path so
task spans are recorded relative to the task root — and ships the
resulting :class:`TaskDelta` home in the task result, where
:func:`merge_task_delta` grafts it under the parent's current span path.
Inline execution records straight into the live collector, so the merged
span tree is identical at any worker count (timings aside).

Cross-thread capture
--------------------
The path stack is **thread-local**: the spans of each thread nest among
themselves only.  The batch stack is single-threaded so this changes
nothing there, but the serve daemon (:mod:`repro.serve`) handles
requests on concurrent threads — without per-thread paths, interleaved
requests would graft their inner spans under whichever path another
thread happened to be inside, yielding a garbled flat tree instead of
per-request ``serve.request/...`` groups.  Aggregates and raw events
stay process-wide (all threads accumulate into one stats dict, which is
what the run log writes).
"""

from __future__ import annotations

import functools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from . import metrics as _metrics

__all__ = [
    "SpanStat",
    "TaskDelta",
    "begin_task",
    "collector",
    "enabled",
    "end_task",
    "merge_task_delta",
    "reset",
    "set_enabled",
    "span",
    "traced",
]


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TELEMETRY", "on").strip().lower() not in (
        "off",
        "0",
        "false",
        "no",
    )


class SpanStat:
    """Aggregate of one span path: call count + cumulative seconds."""

    __slots__ = ("calls", "seconds")

    def __init__(self, calls: int = 0, seconds: float = 0.0) -> None:
        self.calls = calls
        self.seconds = seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanStat(calls={self.calls}, seconds={self.seconds:.6f})"


class _Collector:
    """Process-wide span sink with a thread-local path stack."""

    __slots__ = (
        "enabled",
        "_local",
        "lock",
        "stats",
        "events",
        "max_events",
        "events_dropped",
        "event_min_s",
    )

    def __init__(self) -> None:
        self.enabled = _env_enabled()
        self._local = threading.local()
        self.lock = threading.Lock()
        self.stats: dict[str, SpanStat] = {}
        self.events: list[tuple[str, float, float, int]] = []
        self.max_events = 50_000
        self.events_dropped = 0
        self.event_min_s = 0.0005

    @property
    def path(self) -> str:
        """This thread's current span path (each thread nests its own)."""
        return getattr(self._local, "path", "")

    @path.setter
    def path(self, value: str) -> None:
        self._local.path = value


_COLLECTOR = _Collector()


def collector() -> _Collector:
    """The process-wide collector (tests and the run-log writer)."""
    return _COLLECTOR


def enabled() -> bool:
    return _COLLECTOR.enabled


def set_enabled(flag: bool) -> bool:
    """Flip span collection; returns the previous setting."""
    previous = _COLLECTOR.enabled
    _COLLECTOR.enabled = bool(flag)
    return previous


def reset() -> None:
    """Drop all recorded spans/events (tests; the enabled flag is kept)."""
    col = _COLLECTOR
    col.path = ""
    col.stats = {}
    col.events = []
    col.events_dropped = 0


class _Span:
    __slots__ = ("name", "_saved", "_began")

    name: str
    _saved: str
    _began: float

    def __init__(self, name: str) -> None:
        self.name = name

    def __enter__(self) -> "_Span":
        col = _COLLECTOR
        self._saved = col.path
        col.path = f"{self._saved}/{self.name}" if self._saved else self.name
        self._began = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        duration = time.perf_counter() - self._began
        col = _COLLECTOR
        path = col.path
        with col.lock:
            stat = col.stats.get(path)
            if stat is None:
                col.stats[path] = stat = SpanStat()
            stat.calls += 1
            stat.seconds += duration
            if duration >= col.event_min_s:
                if len(col.events) < col.max_events:
                    col.events.append((path, self._began, duration, os.getpid()))
                else:
                    col.events_dropped += 1
        col.path = self._saved
        return False


class _NoopSpan:
    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP = _NoopSpan()


def span(name: str) -> "_Span | _NoopSpan":
    """Context manager timing one region under the current span path.

    Disabled mode returns a shared no-op object: the call costs one
    attribute check, so instrumentation can stay in hot paths.
    """
    if not _COLLECTOR.enabled:
        return _NOOP
    return _Span(name)


def traced(name: "str | Callable[..., Any] | None" = None) -> "Callable[..., Any]":
    """Decorator form of :func:`span` (``@traced`` or ``@traced("label")``)."""

    def decorate(
        fn: "Callable[..., Any]", label: str | None = None
    ) -> "Callable[..., Any]":
        span_label = label or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _COLLECTOR.enabled:
                return fn(*args, **kwargs)
            with _Span(span_label):
                return fn(*args, **kwargs)

        return wrapper

    if callable(name):  # bare @traced
        return decorate(name)
    return lambda fn: decorate(fn, name)


# -- cross-process shipping -----------------------------------------------------------


@dataclass
class TaskDelta:
    """Telemetry accumulated over one bracketed region, picklable.

    ``spans`` maps task-relative paths to ``(calls, seconds)``; ``events``
    holds the region's raw ``(path, start, duration, pid)`` tuples (start
    is this machine's monotonic clock — comparable across forked workers
    of one host); ``metrics`` is the registry delta (see
    :meth:`repro.telemetry.metrics.MetricsSnapshot.delta`).
    """

    spans: dict[str, tuple[int, float]] = field(default_factory=dict)
    events: list[tuple[str, float, float, int]] = field(default_factory=list)
    events_dropped: int = 0
    metrics: "_metrics.MetricsSnapshot" = field(
        default_factory=lambda: _metrics.MetricsSnapshot()
    )


class _TaskToken:
    __slots__ = ("saved_path", "stats_mark", "events_len", "dropped", "metrics_mark")

    saved_path: str
    stats_mark: dict[str, tuple[int, float]]
    events_len: int
    dropped: int
    metrics_mark: "_metrics.MetricsSnapshot"


def begin_task() -> _TaskToken | None:
    """Open a capture bracket rooted at an empty span path.

    Returns ``None`` when telemetry is disabled (``end_task`` then never
    runs — callers skip the bracket entirely).  The current path is
    saved and zeroed so everything recorded until :func:`end_task` lands
    on task-relative paths, ready to be re-rooted by
    :func:`merge_task_delta` in the parent.
    """
    col = _COLLECTOR
    if not col.enabled:
        return None
    token = _TaskToken()
    token.saved_path = col.path
    col.path = ""
    token.stats_mark = {p: (s.calls, s.seconds) for p, s in col.stats.items()}
    token.events_len = len(col.events)
    token.dropped = col.events_dropped
    token.metrics_mark = _metrics.metrics().snapshot()
    return token


def end_task(token: _TaskToken) -> TaskDelta:
    """Close a :func:`begin_task` bracket and return what it captured."""
    col = _COLLECTOR
    col.path = token.saved_path
    spans: dict[str, tuple[int, float]] = {}
    for path, stat in col.stats.items():
        calls0, seconds0 = token.stats_mark.get(path, (0, 0.0))
        if stat.calls > calls0:
            spans[path] = (stat.calls - calls0, stat.seconds - seconds0)
    return TaskDelta(
        spans=spans,
        events=col.events[token.events_len :],
        events_dropped=col.events_dropped - token.dropped,
        metrics=_metrics.metrics().snapshot().delta(token.metrics_mark),
    )


def merge_task_delta(delta: TaskDelta | None, prefix: str | None = None) -> None:
    """Graft a shipped :class:`TaskDelta` under ``prefix`` (default: the
    collector's current span path — i.e. wherever the fan-out happened).

    Merging is pure accumulation, so merged aggregates equal what inline
    execution would have recorded in place (the worker/shard span-merge
    equality the telemetry determinism suite pins).
    """
    col = _COLLECTOR
    if delta is None or not col.enabled:
        return
    if prefix is None:
        prefix = col.path
    with col.lock:
        for rel, (calls, seconds) in delta.spans.items():
            path = f"{prefix}/{rel}" if prefix else rel
            stat = col.stats.get(path)
            if stat is None:
                col.stats[path] = stat = SpanStat()
            stat.calls += calls
            stat.seconds += seconds
        for rel, began, duration, pid in delta.events:
            path = f"{prefix}/{rel}" if prefix else rel
            if len(col.events) < col.max_events:
                col.events.append((path, began, duration, pid))
            else:
                col.events_dropped += 1
        col.events_dropped += delta.events_dropped
    _metrics.metrics().merge_snapshot(delta.metrics)
