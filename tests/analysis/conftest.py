"""Fixture-tree helpers for the lint suite.

Rules key off package-relative paths (``baselines/x.py``,
``serve/server.py``), so tests build miniature package trees under
``tmp_path`` and lint those — never the real tree — keeping every case
hermetic.  A fixture tree that needs the volatile-keys contract ships
its own ``experiments/base.py``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import run_lint


@pytest.fixture
def make_tree(tmp_path):
    """``make_tree({'serve/server.py': src, ...}) -> package dir``."""

    def build(files: dict[str, str]) -> pathlib.Path:
        package_dir = tmp_path / "repro"
        for rel, source in files.items():
            path = package_dir / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source, encoding="utf-8")
        return package_dir

    return build


@pytest.fixture
def lint(make_tree):
    """Lint a fixture tree; returns the LintResult (baseline ignored)."""

    def run(files: dict[str, str], rule_ids: list[str] | None = None, **kwargs):
        kwargs.setdefault("baseline_mode", "ignore")
        return run_lint(root=make_tree(files), rule_ids=rule_ids, **kwargs)

    return run
