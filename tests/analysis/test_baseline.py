"""Baseline file semantics: matching, budgets, updates, persistence."""

from __future__ import annotations

import json

from repro.analysis import Baseline, BaselineEntry, Finding


def finding(rule="rng-constant-seed", rel="core/m.py", line=3, code="rng = default_rng(0)"):
    return Finding(rel=rel, line=line, col=0, rule=rule, message="msg", code=code)


def test_matching_ignores_line_numbers():
    baseline = Baseline([BaselineEntry(rule="rng-constant-seed", path="core/m.py",
                                       code="rng = default_rng(0)", line=3)])
    new, baselined = baseline.split([finding(line=40)])
    assert new == []
    assert len(baselined) == 1


def test_editing_the_flagged_line_invalidates_the_entry():
    baseline = Baseline([BaselineEntry(rule="rng-constant-seed", path="core/m.py",
                                       code="rng = default_rng(0)")])
    new, baselined = baseline.split([finding(code="rng = default_rng(7)")])
    assert len(new) == 1
    assert baselined == []


def test_each_entry_absorbs_exactly_one_finding():
    baseline = Baseline([BaselineEntry(rule="rng-constant-seed", path="core/m.py",
                                       code="rng = default_rng(0)")])
    new, baselined = baseline.split([finding(line=3), finding(line=9)])
    assert len(baselined) == 1
    assert len(new) == 1


def test_update_preserves_surviving_justifications(tmp_path):
    path = tmp_path / "lint-baseline.json"
    original = Baseline(
        [
            BaselineEntry(rule="rng-constant-seed", path="core/m.py",
                          code="rng = default_rng(0)", justification="bootstrap only"),
            BaselineEntry(rule="canonical-json", path="store/a.py",
                          code="json.dumps(x)", justification="stale"),
        ],
        path,
    )
    updated = original.updated([finding(line=12), finding(rule="rng-stored-advancing",
                                                          code="self.rng = rng")])
    by_rule = {entry.rule: entry for entry in updated.entries}
    assert by_rule["rng-constant-seed"].justification == "bootstrap only"
    assert by_rule["rng-constant-seed"].line == 12
    assert "TODO" in by_rule["rng-stored-advancing"].justification
    assert "canonical-json" not in by_rule  # fixed findings drop out


def test_write_and_load_round_trip(tmp_path):
    path = tmp_path / "lint-baseline.json"
    Baseline([BaselineEntry(rule="r", path="p.py", code="c", line=5,
                            justification="why")]).write(path)
    payload = json.loads(path.read_text())
    assert payload["version"] == 1
    loaded = Baseline.load(path)
    assert loaded.entries[0].justification == "why"
    assert loaded.entries[0].fingerprint == ("r", "p.py", "c")


def test_missing_file_loads_as_empty(tmp_path):
    baseline = Baseline.load(tmp_path / "absent.json")
    assert baseline.entries == []


def test_repo_baseline_has_no_placeholder_justifications():
    import pathlib

    import repro

    repo_baseline = pathlib.Path(repro.__file__).parent.parent.parent / "lint-baseline.json"
    if not repo_baseline.exists():
        return  # installed without the repo checkout
    for entry in Baseline.load(repo_baseline).entries:
        assert "TODO" not in entry.justification, entry.path
