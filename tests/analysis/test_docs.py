"""Drift guards tying the rule portfolio to its documentation."""

from __future__ import annotations

import pathlib

from repro.analysis import ALL_RULES, rule_ids

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def test_every_rule_documents_itself():
    for rule_id, factory in ALL_RULES.items():
        rule = factory()
        assert rule.id == rule_id
        assert rule.title, rule_id
        assert rule.protects, rule_id
        assert rule.hint, rule_id


def test_every_rule_id_appears_in_the_readme_rule_table():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for rule_id in rule_ids():
        assert f"`{rule_id}`" in readme, (
            f"rule {rule_id!r} missing from the README static-analysis table"
        )


def test_rule_ids_are_kebab_case_and_unique():
    ids = rule_ids()
    assert len(ids) == len(set(ids))
    for rule_id in ids:
        assert rule_id == rule_id.lower()
        assert " " not in rule_id
