"""The ``repro lint`` command: exit codes, filters, JSON, baseline modes.

The last test is the PR's acceptance gate: the real tree lints clean.
"""

from __future__ import annotations

import json

from repro.cli import main

CLEAN = {"core/model.py": "def f(rng):\n    return rng.random()\n"}
VIOLATION = {
    "core/model.py": "import numpy as np\nrng = np.random.default_rng(0)\n"
}


def tree(make_tree, files):
    return str(make_tree(files))


def test_exit_zero_on_a_clean_tree(make_tree, capsys):
    assert main(["lint", "--root", tree(make_tree, CLEAN), "--baseline", "ignore"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_exit_one_on_a_seeded_violation(make_tree, capsys):
    code = main(["lint", "--root", tree(make_tree, VIOLATION), "--baseline", "ignore"])
    assert code == 1
    out = capsys.readouterr().out
    assert "rng-constant-seed" in out
    assert "core/model.py:2" in out
    assert "hint:" in out


def test_rule_filter_limits_the_portfolio(make_tree):
    root = tree(make_tree, VIOLATION)
    assert main(["lint", "--root", root, "--baseline", "ignore",
                 "--rule", "canonical-json"]) == 0
    assert main(["lint", "--root", root, "--baseline", "ignore",
                 "--rule", "canonical-json", "--rule", "rng-constant-seed"]) == 1


def test_unknown_rule_id_exits_two(make_tree):
    assert main(["lint", "--root", tree(make_tree, CLEAN), "--rule", "no-such"]) == 2


def test_json_payload_written(make_tree, tmp_path):
    out = tmp_path / "out" / "findings.json"
    main(["lint", "--root", tree(make_tree, VIOLATION), "--baseline", "ignore",
          "--json", str(out)])
    payload = json.loads(out.read_text())
    assert payload["clean"] is False
    assert payload["findings"][0]["rule"] == "rng-constant-seed"
    assert payload["findings"][0]["path"] == "core/model.py"


def test_baseline_update_then_apply_cycle(make_tree, tmp_path):
    root = tree(make_tree, VIOLATION)
    baseline = tmp_path / "baseline.json"
    # update records the finding and reports clean
    assert main(["lint", "--root", root, "--baseline", "update",
                 "--baseline-file", str(baseline)]) == 0
    assert "TODO" in baseline.read_text()
    # a later apply run stays clean...
    assert main(["lint", "--root", root, "--baseline-file", str(baseline)]) == 0
    # ...while a fresh violation still fails
    violating = {
        "core/model.py": VIOLATION["core/model.py"],
        "core/other.py": "import numpy as np\nr2 = np.random.default_rng(1)\n",
    }
    assert main(["lint", "--root", tree(make_tree, violating),
                 "--baseline-file", str(baseline)]) == 1


def test_list_rules_prints_the_portfolio(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    from repro.analysis import rule_ids

    for rule_id in rule_ids():
        assert rule_id in out


def test_syntax_error_in_tree_exits_two(make_tree):
    assert main(["lint", "--root", tree(make_tree, {"bad.py": "def broken(:\n"})]) == 2


def test_the_real_tree_lints_clean():
    """Acceptance gate: zero non-baselined findings on the shipped tree."""
    from repro.analysis import run_lint

    result = run_lint()
    assert result.findings == [], [f.location for f in result.findings]
