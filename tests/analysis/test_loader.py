"""Module loader: relative paths, dotted names, import-graph edges."""

from __future__ import annotations

import pytest

from repro.analysis import load_tree


def test_tree_indexes_modules_by_rel_and_name(make_tree):
    root = make_tree(
        {
            "core/gnn.py": "x = 1\n",
            "serve/server.py": "y = 2\n",
            "__init__.py": "",
        }
    )
    tree = load_tree(root)
    assert len(tree) == 3
    module = tree.get_rel("core/gnn.py")
    assert module is not None
    assert module.name == "repro.core.gnn"
    assert tree.by_name["repro.serve.server"].rel == "serve/server.py"


def test_absolute_and_relative_imports_resolve_to_package_modules(make_tree):
    root = make_tree(
        {
            "core/gnn.py": "x = 1\n",
            "core/__init__.py": "",
            "serve/server.py": (
                "from repro.core import gnn\n"
                "from ..core.gnn import x\n"
                "import repro.core.gnn\n"
                "import json\n"
            ),
            "serve/__init__.py": "",
        }
    )
    tree = load_tree(root)
    server = tree.get_rel("serve/server.py")
    assert "repro.core.gnn" in server.imports
    # stdlib imports don't produce intra-package edges
    assert all(name.startswith("repro") for name in server.imports)
    importers = [m.name for m in tree.importers_of("repro.core.gnn")]
    assert "repro.serve.server" in importers


def test_line_text_strips_the_source_line(make_tree):
    root = make_tree({"mod.py": "def f():\n    b  =  2\n"})
    module = load_tree(root).get_rel("mod.py")
    assert module.line_text(2) == "b  =  2"
    assert module.line_text(99) == ""


def test_syntax_error_propagates_with_filename(make_tree):
    root = make_tree({"bad.py": "def broken(:\n"})
    with pytest.raises(SyntaxError):
        load_tree(root)
