"""Fan-out pickle safety and serve drain-thread ownership."""

from __future__ import annotations


class TestFanoutPickleSafety:
    def test_lambda_capturing_a_lock_is_flagged(self, lint):
        result = lint(
            {
                "experiments/runner.py": (
                    "import threading\n"
                    "def run(backend, payloads, ctx):\n"
                    "    guard = threading.Lock()\n"
                    "    return backend.fanout(lambda p, c: guard, payloads, ctx)\n"
                )
            },
            rule_ids=["fanout-pickle-safety"],
        )
        assert len(result.findings) == 1
        assert "guard" in result.findings[0].message

    def test_nested_task_function_capturing_a_pool_is_flagged(self, lint):
        result = lint(
            {
                "scenarios/runner.py": (
                    "def run(backend, payloads, ctx, problem):\n"
                    "    pool = EvaluatorPool(problem)\n"
                    "    def work(p, c):\n"
                    "        return pool.evaluate(p)\n"
                    "    return backend.fanout(work, payloads, ctx)\n"
                )
            },
            rule_ids=["fanout-pickle-safety"],
        )
        assert len(result.findings) == 1

    def test_unpicklable_context_argument_is_flagged(self, lint):
        result = lint(
            {
                "serve/load.py": (
                    "import socket\n"
                    "def run(backend, payloads):\n"
                    "    client = socket.socket()\n"
                    "    return backend.fanout(_task, payloads, client)\n"
                )
            },
            rule_ids=["fanout-pickle-safety"],
        )
        assert len(result.findings) == 1

    def test_plain_data_payloads_and_module_level_tasks_pass(self, lint):
        result = lint(
            {
                "experiments/runner.py": (
                    "def _cell(payload, ctx):\n"
                    "    return payload\n"
                    "def run(backend, specs, ctx):\n"
                    "    keys = [(s, 0) for s in specs]\n"
                    "    return backend.fanout(_cell, keys, ctx)\n"
                )
            },
            rule_ids=["fanout-pickle-safety"],
        )
        assert result.findings == []

    def test_lock_used_without_crossing_a_fanout_passes(self, lint):
        result = lint(
            {
                "serve/server.py": (
                    "import threading\n"
                    "def run():\n"
                    "    guard = threading.Lock()\n"
                    "    with guard:\n"
                    "        return 1\n"
                )
            },
            rule_ids=["fanout-pickle-safety"],
        )
        assert result.findings == []


class TestDrainThreadOwnership:
    def test_direct_evaluate_in_server_handler_is_flagged_with_path(self, lint):
        result = lint(
            {
                "serve/server.py": (
                    "class PlacementServer:\n"
                    "    def _handle_evaluate(self, request):\n"
                    "        return self._score(request)\n"
                    "    def _score(self, request):\n"
                    "        return self.pool.evaluate_many(request)\n"
                )
            },
            rule_ids=["drain-thread-ownership"],
        )
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert "_handle_evaluate" in finding.message  # reachability path
        assert "_score" in finding.message

    def test_submitting_to_the_batcher_passes(self, lint):
        result = lint(
            {
                "serve/server.py": (
                    "class PlacementServer:\n"
                    "    def _handle_evaluate(self, request):\n"
                    "        return self.batcher.submit_many(request)\n"
                )
            },
            rule_ids=["drain-thread-ownership"],
        )
        assert result.findings == []

    def test_batcher_and_session_modules_are_exempt(self, lint):
        source = (
            "class RequestBatcher:\n"
            "    def _drain_loop(self):\n"
            "        self.pool.coalesce_evaluate([])\n"
        )
        assert (
            lint({"serve/batcher.py": source}, rule_ids=["drain-thread-ownership"]).findings
            == []
        )
        assert (
            lint({"serve/session.py": source}, rule_ids=["drain-thread-ownership"]).findings
            == []
        )

    def test_rule_is_scoped_to_the_serve_package(self, lint):
        result = lint(
            {
                "experiments/runner.py": (
                    "def run(pool, cases):\n"
                    "    return pool.evaluate_many(cases)\n"
                )
            },
            rule_ids=["drain-thread-ownership"],
        )
        assert result.findings == []
