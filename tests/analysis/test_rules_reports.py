"""Volatile-key drift and canonical-JSON discipline."""

from __future__ import annotations

BASE_CONTRACT = (
    "VOLATILE_DATA_KEYS = frozenset({'search_seconds', 'trace_cache'})\n"
)


class TestVolatileKeyDrift:
    def test_undeclared_timing_key_in_report_data_is_flagged(self, lint):
        result = lint(
            {
                "experiments/base.py": BASE_CONTRACT,
                "experiments/fig9.py": (
                    "def data(elapsed):\n"
                    "    return {'gnn_seconds': elapsed, 'sizes': [1, 2]}\n"
                ),
            },
            rule_ids=["volatile-key-drift"],
        )
        assert [f.line for f in result.findings] == [2]
        assert "gnn_seconds" in result.findings[0].message

    def test_declared_keys_and_stable_keys_pass(self, lint):
        result = lint(
            {
                "experiments/base.py": BASE_CONTRACT,
                "experiments/fig9.py": (
                    "def data(elapsed):\n"
                    "    out = {'search_seconds': elapsed, 'table': {}}\n"
                    "    out['trace_cache'] = 3\n"
                    "    return out\n"
                ),
            },
            rule_ids=["volatile-key-drift"],
        )
        assert result.findings == []

    def test_subscript_assignment_with_undeclared_key_is_flagged(self, lint):
        result = lint(
            {
                "experiments/base.py": BASE_CONTRACT,
                "experiments/fig9.py": (
                    "def fill(out, t):\n"
                    "    out['replace_seconds'] = t\n"
                ),
            },
            rule_ids=["volatile-key-drift"],
        )
        assert len(result.findings) == 1

    def test_timing_keys_outside_report_scopes_pass(self, lint):
        result = lint(
            {
                "experiments/base.py": BASE_CONTRACT,
                "parallel/pool.py": "def t(x):\n    return {'wall_seconds': x}\n",
            },
            rule_ids=["volatile-key-drift"],
        )
        assert result.findings == []

    def test_rule_stays_quiet_without_a_contract_definition(self, lint):
        # partial fixture tree: no experiments/base.py, nothing to check against
        result = lint(
            {"experiments/fig9.py": "def d(t):\n    return {'gnn_seconds': t}\n"},
            rule_ids=["volatile-key-drift"],
        )
        assert result.findings == []


class TestCanonicalJson:
    def test_dumps_without_sort_keys_on_protocol_path_is_flagged(self, lint):
        result = lint(
            {
                "serve/protocol.py": (
                    "import json\n"
                    "def encode(m):\n"
                    "    return json.dumps(m).encode()\n"
                )
            },
            rule_ids=["canonical-json"],
        )
        assert [f.line for f in result.findings] == [3]

    def test_sorted_dumps_passes(self, lint):
        result = lint(
            {
                "store/address.py": (
                    "import json\n"
                    "def encode(m):\n"
                    "    return json.dumps(m, sort_keys=True, separators=(',', ':'))\n"
                )
            },
            rule_ids=["canonical-json"],
        )
        assert result.findings == []

    def test_explicitly_disabled_sort_keys_is_flagged(self, lint):
        result = lint(
            {
                "shard/manifest.py": (
                    "import json\n"
                    "payload = json.dumps({'a': 1}, sort_keys=False)\n"
                )
            },
            rule_ids=["canonical-json"],
        )
        assert len(result.findings) == 1

    def test_dumps_off_the_canonical_surface_passes(self, lint):
        result = lint(
            {"cli.py": "import json\nout = json.dumps({'a': 1})\n"},
            rule_ids=["canonical-json"],
        )
        assert result.findings == []
