"""RNG discipline rules: hardcoded seeds and stored advancing generators."""

from __future__ import annotations


def rules_fired(result):
    return [(f.rel, f.line, f.rule) for f in result.findings]


class TestRngConstantSeed:
    def test_flags_hardcoded_scalar_seed(self, lint):
        result = lint(
            {"core/model.py": "import numpy as np\nrng = np.random.default_rng(0)\n"},
            rule_ids=["rng-constant-seed"],
        )
        assert rules_fired(result) == [("core/model.py", 2, "rng-constant-seed")]

    def test_flags_fully_constant_seed_list(self, lint):
        result = lint(
            {"core/model.py": "import numpy as np\nrng = np.random.default_rng([0, 1])\n"},
            rule_ids=["rng-constant-seed"],
        )
        assert len(result.findings) == 1

    def test_flags_unseeded_and_legacy_apis(self, lint):
        result = lint(
            {
                "core/model.py": (
                    "import numpy as np\n"
                    "a = np.random.default_rng()\n"
                    "np.random.seed(3)\n"
                    "b = np.random.RandomState(4)\n"
                )
            },
            rule_ids=["rng-constant-seed"],
        )
        assert len(result.findings) == 3

    def test_derived_seed_lists_pass(self, lint):
        result = lint(
            {
                "core/model.py": (
                    "import numpy as np\n"
                    "def make(seed, cell):\n"
                    "    return np.random.default_rng([seed, 2, cell])\n"
                    "def stream(key):\n"
                    "    return np.random.default_rng(key)\n"
                )
            },
            rule_ids=["rng-constant-seed"],
        )
        assert result.findings == []

    def test_cli_entry_point_is_whitelisted(self, lint):
        source = "import numpy as np\nrng = np.random.default_rng(0)\n"
        result = lint({"cli.py": source}, rule_ids=["rng-constant-seed"])
        assert result.findings == []
        result = lint({"core/cli_like.py": source}, rule_ids=["rng-constant-seed"])
        assert len(result.findings) == 1

    def test_inline_suppression_waives_the_finding(self, lint):
        result = lint(
            {
                "core/model.py": (
                    "import numpy as np\n"
                    "rng = np.random.default_rng(0)  # repro: lint-ok[rng-constant-seed]\n"
                )
            },
            rule_ids=["rng-constant-seed"],
        )
        assert result.findings == []
        assert len(result.suppressed) == 1


class TestRngStoredAdvancing:
    def test_flags_instance_stored_rng_in_baselines(self, lint):
        result = lint(
            {
                "baselines/agent.py": (
                    "class Agent:\n"
                    "    def __init__(self, rng):\n"
                    "        self.rng = rng\n"
                )
            },
            rule_ids=["rng-stored-advancing"],
        )
        assert rules_fired(result) == [("baselines/agent.py", 3, "rng-stored-advancing")]

    def test_flags_module_level_rng(self, lint):
        result = lint(
            {
                "experiments/mod.py": (
                    "import numpy as np\n"
                    "RNG = np.random.default_rng([1, 2])\n"
                )
            },
            rule_ids=["rng-stored-advancing"],
        )
        assert len(result.findings) == 1

    def test_same_code_outside_stateful_scopes_passes(self, lint):
        result = lint(
            {
                "core/agent.py": (
                    "class Agent:\n"
                    "    def __init__(self, rng):\n"
                    "        self.rng = rng\n"
                )
            },
            rule_ids=["rng-stored-advancing"],
        )
        assert result.findings == []

    def test_non_rng_attributes_pass(self, lint):
        result = lint(
            {
                "baselines/agent.py": (
                    "class Agent:\n"
                    "    def __init__(self, problem):\n"
                    "        self.problem = problem\n"
                    "        self.count = 0\n"
                )
            },
            rule_ids=["rng-stored-advancing"],
        )
        assert result.findings == []

    def test_standalone_comment_suppression_forwards_to_next_code_line(self, lint):
        result = lint(
            {
                "baselines/agent.py": (
                    "class Agent:\n"
                    "    def search(self, rng):\n"
                    "        # repro: lint-ok[rng-stored-advancing]\n"
                    "        self.rng = rng\n"
                )
            },
            rule_ids=["rng-stored-advancing"],
        )
        assert result.findings == []
        assert len(result.suppressed) == 1
