"""Telemetry purity and symmetric stats absorption."""

from __future__ import annotations


class TestTelemetryPurity:
    def test_telemetry_importing_report_module_is_flagged(self, lint):
        result = lint(
            {
                "telemetry/spans.py": "from repro.experiments import base\n",
                "experiments/base.py": "VOLATILE_DATA_KEYS = frozenset()\n",
            },
            rule_ids=["telemetry-purity"],
        )
        assert [f.rule for f in result.findings] == ["telemetry-purity"]
        assert "leaf" in result.findings[0].message

    def test_relative_import_out_of_telemetry_is_flagged(self, lint):
        result = lint(
            {
                "telemetry/spans.py": "from ..experiments import base\n",
                "experiments/base.py": "",
            },
            rule_ids=["telemetry-purity"],
        )
        assert len(result.findings) == 1

    def test_sibling_imports_and_stdlib_pass(self, lint):
        result = lint(
            {
                "telemetry/spans.py": (
                    "import time\n"
                    "from . import metrics\n"
                    "from .metrics import Metrics\n"
                ),
                "telemetry/metrics.py": "class Metrics: pass\n",
            },
            rule_ids=["telemetry-purity"],
        )
        assert result.findings == []

    def test_span_body_mutating_report_state_is_flagged(self, lint):
        result = lint(
            {
                "experiments/run.py": (
                    "from repro.telemetry import span\n"
                    "def run(report):\n"
                    "    with span('work'):\n"
                    "        report.data['x'] = 1\n"
                )
            },
            rule_ids=["telemetry-purity"],
        )
        assert [(f.rel, f.line) for f in result.findings] == [("experiments/run.py", 4)]

    def test_span_body_local_assignments_pass(self, lint):
        result = lint(
            {
                "experiments/run.py": (
                    "from repro.telemetry import span\n"
                    "def run():\n"
                    "    with span('work'):\n"
                    "        out = {}\n"
                    "        out['x'] = 1\n"
                    "    return out\n"
                )
            },
            rule_ids=["telemetry-purity"],
        )
        assert result.findings == []

    def test_nested_spans_report_one_finding_not_two(self, lint):
        result = lint(
            {
                "experiments/run.py": (
                    "from repro.telemetry import span\n"
                    "def run(report):\n"
                    "    with span('outer'):\n"
                    "        with span('inner'):\n"
                    "            report.data['x'] = 1\n"
                )
            },
            rule_ids=["telemetry-purity"],
        )
        assert len(result.findings) == 1


class TestStatsDoubleAbsorb:
    def test_same_prefix_absorbed_at_two_sites_flags_both(self, lint):
        result = lint(
            {
                "experiments/a.py": (
                    "def merge(m, stats):\n"
                    "    m.absorb('evaluator', stats)\n"
                ),
                "scenarios/b.py": (
                    "def merge(m, stats):\n"
                    "    m.absorb('evaluator', stats)\n"
                ),
            },
            rule_ids=["stats-double-absorb"],
        )
        assert sorted(f.rel for f in result.findings) == [
            "experiments/a.py",
            "scenarios/b.py",
        ]

    def test_distinct_prefixes_pass(self, lint):
        result = lint(
            {
                "experiments/a.py": "def merge(m, s):\n    m.absorb('evaluator', s)\n",
                "scenarios/b.py": "def merge(m, s):\n    m.absorb('scenario.evaluator', s)\n",
            },
            rule_ids=["stats-double-absorb"],
        )
        assert result.findings == []

    def test_absorb_inside_fanned_out_task_function_is_flagged(self, lint):
        result = lint(
            {
                "experiments/runner.py": (
                    "def _work(payload, ctx):\n"
                    "    ctx.metrics.absorb('evaluator', payload)\n"
                    "def run(backend, payloads, ctx):\n"
                    "    return backend.fanout(_work, payloads, ctx)\n"
                )
            },
            rule_ids=["stats-double-absorb"],
        )
        assert len(result.findings) == 1
        assert "fanned out" in result.findings[0].message

    def test_state_does_not_leak_between_runs(self, lint):
        files = {
            "experiments/a.py": "def merge(m, s):\n    m.absorb('evaluator', s)\n",
        }
        assert lint(files, rule_ids=["stats-double-absorb"]).findings == []
        # a second run must not see the first run's absorb site
        assert lint(files, rule_ids=["stats-double-absorb"]).findings == []
