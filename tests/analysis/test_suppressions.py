"""Inline waiver parsing edge cases."""

from __future__ import annotations


def test_multiple_rule_ids_in_one_waiver(lint):
    result = lint(
        {
            "baselines/agent.py": (
                "import numpy as np\n"
                "class A:\n"
                "    def __init__(self):\n"
                "        self.rng = np.random.default_rng(0)  "
                "# repro: lint-ok[rng-constant-seed, rng-stored-advancing]\n"
            )
        },
        rule_ids=["rng-constant-seed", "rng-stored-advancing"],
    )
    assert result.findings == []
    assert len(result.suppressed) == 2


def test_bare_lint_ok_waives_every_rule(lint):
    result = lint(
        {
            "baselines/agent.py": (
                "import numpy as np\n"
                "class A:\n"
                "    def __init__(self):\n"
                "        self.rng = np.random.default_rng(0)  # repro: lint-ok\n"
            )
        }
    )
    assert result.findings == []
    assert len(result.suppressed) == 2


def test_waiver_for_a_different_rule_does_not_apply(lint):
    result = lint(
        {
            "core/m.py": (
                "import numpy as np\n"
                "rng = np.random.default_rng(0)  # repro: lint-ok[canonical-json]\n"
            )
        },
        rule_ids=["rng-constant-seed"],
    )
    assert len(result.findings) == 1
    assert result.suppressed == []


def test_standalone_waiver_does_not_leak_past_the_next_statement(lint):
    result = lint(
        {
            "core/m.py": (
                "import numpy as np\n"
                "# repro: lint-ok[rng-constant-seed]\n"
                "a = np.random.default_rng(0)\n"
                "b = np.random.default_rng(1)\n"
            )
        },
        rule_ids=["rng-constant-seed"],
    )
    assert [f.line for f in result.findings] == [4]
    assert len(result.suppressed) == 1
