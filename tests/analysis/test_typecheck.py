"""Run mypy over the typed islands when it is installed.

The runtime image ships without mypy (CI installs it for the lint job),
so this test skips rather than fails locally — the pinned configuration
in pyproject.toml is the contract either way.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

mypy = pytest.importorskip("mypy", reason="mypy not installed (CI-only check)")

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def test_typed_islands_pass_mypy():
    completed = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
