"""Shared fixtures for baseline tests."""

import numpy as np
import pytest

from repro.core import PlacementProblem
from repro.devices import Device, DeviceNetwork
from repro.graphs import TaskGraph


@pytest.fixture
def diamond_problem() -> PlacementProblem:
    graph = TaskGraph(
        compute=(2.0, 4.0, 6.0, 2.0),
        edges={(0, 1): 10.0, (0, 2): 10.0, (1, 3): 20.0, (2, 3): 20.0},
        requirements=(0, 0, 0, 1),
    )
    devices = [
        Device(uid=0, speed=1.0),
        Device(uid=1, speed=2.0),
        Device(uid=2, speed=4.0, supports=frozenset({0, 1})),
    ]
    bw = np.full((3, 3), 10.0)
    np.fill_diagonal(bw, np.inf)
    dl = np.full((3, 3), 0.5)
    np.fill_diagonal(dl, 0.0)
    return PlacementProblem(graph, DeviceNetwork(devices, bw, dl))


@pytest.fixture
def hetero_chain_problem() -> PlacementProblem:
    """3-task chain where HEFT's choice is analytically checkable."""
    graph = TaskGraph((4.0, 4.0, 4.0), {(0, 1): 8.0, (1, 2): 8.0})
    devices = [Device(uid=0, speed=1.0), Device(uid=1, speed=4.0)]
    bw = np.full((2, 2), 2.0)
    np.fill_diagonal(bw, np.inf)
    dl = np.zeros((2, 2))
    return PlacementProblem(graph, DeviceNetwork(devices, bw, dl))
