"""Targeted tests for baseline internals: insertion slots, feature maps."""

import numpy as np
import pytest

from repro.baselines.heft import _earliest_slot
from repro.baselines.placeto import placeto_node_features


class TestInsertionSlot:
    def test_empty_device(self):
        assert _earliest_slot([], ready=3.0, duration=2.0) == 3.0

    def test_gap_before_first_interval(self):
        assert _earliest_slot([(5.0, 8.0)], ready=0.0, duration=4.0) == 0.0

    def test_gap_too_small_falls_through(self):
        assert _earliest_slot([(2.0, 8.0)], ready=0.0, duration=4.0) == 8.0

    def test_insertion_between_intervals(self):
        busy = [(0.0, 2.0), (6.0, 9.0)]
        assert _earliest_slot(busy, ready=0.0, duration=3.0) == 2.0

    def test_insertion_respects_ready_time(self):
        busy = [(0.0, 2.0), (6.0, 9.0)]
        # Gap 2..6 exists but task only ready at 5: 5+3 > 6 -> after last.
        assert _earliest_slot(busy, ready=5.0, duration=3.0) == 9.0

    def test_ready_inside_gap(self):
        busy = [(0.0, 2.0), (10.0, 12.0)]
        assert _earliest_slot(busy, ready=4.0, duration=3.0) == 4.0

    def test_after_all_intervals(self):
        busy = [(0.0, 5.0)]
        assert _earliest_slot(busy, ready=1.0, duration=10.0) == 5.0


class TestPlacetoFeatures:
    def test_indicator_columns(self, diamond_problem):
        placed = np.array([True, True, False, False])
        feats = placeto_node_features(diamond_problem, [0, 1, 2, 2], current_node=2, placed=placed)
        # Column 3: is-current (only node 2); column 4: placed flags.
        current_col = feats[:, 3]
        assert current_col[2] > 0
        assert (current_col[[0, 1, 3]] == 0).all()
        placed_col = feats[:, 4]
        assert placed_col[0] > 0 and placed_col[1] > 0
        assert placed_col[2] == 0 and placed_col[3] == 0

    def test_no_device_capability_features(self, diamond_problem):
        """Placeto's features must be identical across networks with
        different device speeds — its documented blind spot."""
        import copy

        from repro.core import PlacementProblem
        from repro.devices import Device, DeviceNetwork

        g = diamond_problem.graph
        placed = np.zeros(4, dtype=bool)

        def features_for(speed_scale):
            devices = [
                Device(uid=i, speed=s * speed_scale, supports=d.supports)
                for i, (s, d) in enumerate(
                    zip([1.0, 2.0, 4.0], diamond_problem.network.devices)
                )
            ]
            bw = np.full((3, 3), 10.0)
            np.fill_diagonal(bw, np.inf)
            net = DeviceNetwork(devices, bw, np.zeros((3, 3)))
            problem = PlacementProblem(g, net)
            return placeto_node_features(problem, [0, 0, 0, 2], 0, placed)

        f1, f2 = features_for(1.0), features_for(10.0)
        # Normalized per instance, a uniform speed change is invisible.
        np.testing.assert_allclose(f1, f2)
