"""HEFT and EFT device-selection tests."""

import numpy as np
import pytest

from repro.baselines import eft_device, eft_estimates, heft_placement, upward_ranks
from repro.core import PlacementProblem, random_placement
from repro.devices import DeviceNetworkParams, generate_device_network
from repro.graphs import TaskGraphParams, generate_task_graph
from repro.sim import MakespanObjective, simulate


class TestUpwardRanks:
    def test_parent_outranks_child(self, diamond_problem):
        ranks = upward_ranks(diamond_problem)
        g = diamond_problem.graph
        for (u, v) in g.edges:
            assert ranks[u] > ranks[v]

    def test_exit_rank_is_mean_compute(self, diamond_problem):
        ranks = upward_ranks(diamond_problem)
        cm = diamond_problem.cost_model
        assert ranks[3] == pytest.approx(cm.mean_compute_time(3))

    def test_chain_rank_accumulates(self, hetero_chain_problem):
        ranks = upward_ranks(hetero_chain_problem)
        cm = hetero_chain_problem.cost_model
        w = cm.mean_compute_time(0)  # same for all tasks here
        c = cm.mean_comm_time((0, 1))
        assert ranks[0] == pytest.approx(3 * w + 2 * c)


class TestHeft:
    def test_respects_constraints(self, diamond_problem):
        schedule = heft_placement(diamond_problem)
        diamond_problem.validate_placement(schedule.placement)

    def test_priority_order_by_rank(self, diamond_problem):
        schedule = heft_placement(diamond_problem)
        ranks = upward_ranks(diamond_problem)
        sorted_ranks = [ranks[i] for i in schedule.priority_order]
        assert sorted_ranks == sorted(sorted_ranks, reverse=True)

    def test_internal_schedule_consistent(self, diamond_problem):
        s = heft_placement(diamond_problem)
        assert s.makespan == pytest.approx(float(s.finish.max()))
        assert (s.finish >= s.start).all()

    def test_chain_colocates_when_comm_dominates(self, hetero_chain_problem):
        # comm between devices costs 4 per edge; fast device is 4x faster.
        # all-on-fast: 3 tasks * 1 = 3.  Splitting adds >= 4 per cut.
        schedule = heft_placement(hetero_chain_problem)
        assert schedule.placement == (1, 1, 1)

    def test_beats_random_on_average(self):
        rng = np.random.default_rng(0)
        objective = MakespanObjective()
        heft_vals, rand_vals = [], []
        for seed in range(15):
            r = np.random.default_rng(seed)
            g = generate_task_graph(TaskGraphParams(num_tasks=15), r)
            net = generate_device_network(DeviceNetworkParams(num_devices=5), r)
            problem = PlacementProblem(g, net)
            heft_vals.append(
                objective.evaluate(problem.cost_model, heft_placement(problem).placement)
            )
            rand_vals.append(
                objective.evaluate(problem.cost_model, random_placement(problem, rng))
            )
        assert np.mean(heft_vals) < np.mean(rand_vals)


class TestEft:
    def test_estimates_cover_feasible_devices(self, diamond_problem):
        est = eft_estimates(diamond_problem, [0, 0, 0, 2], task=1)
        assert set(est) == set(diamond_problem.feasible_sets[1])

    def test_estimate_formula_entry_task(self, hetero_chain_problem):
        # Task 0 has no parents; on an empty fast device EFT = w.
        est = eft_estimates(hetero_chain_problem, [0, 0, 0], task=0)
        cm = hetero_chain_problem.cost_model
        assert est[1] == pytest.approx(cm.compute_time(0, 1))

    def test_own_device_does_not_double_count(self, hetero_chain_problem):
        # Estimating task 0's EFT on its own (busy) device should see the
        # device as free at the task's own start, not after the queue.
        est = eft_estimates(hetero_chain_problem, [0, 0, 0], task=0)
        cm = hetero_chain_problem.cost_model
        assert est[0] == pytest.approx(cm.compute_time(0, 0))

    def test_eft_device_picks_minimum(self, diamond_problem):
        placement = [0, 0, 0, 2]
        est = eft_estimates(diamond_problem, placement, task=2)
        assert est[eft_device(diamond_problem, placement, 2)] == min(est.values())

    def test_moving_to_eft_device_improves_or_holds_estimate(self, diamond_problem):
        rng = np.random.default_rng(1)
        placement = list(random_placement(diamond_problem, rng))
        for task in range(diamond_problem.graph.num_tasks):
            est = eft_estimates(diamond_problem, placement, task)
            best = eft_device(diamond_problem, placement, task)
            assert est[best] <= est[placement[task]] + 1e-9
