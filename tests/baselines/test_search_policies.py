"""Tests for the search-policy baselines: random, task-EFT, Placeto, RNN."""

import numpy as np
import pytest

from repro.baselines import (
    GiPHSearchPolicy,
    PlacetoAgent,
    PlacetoTrainer,
    RandomPlacementPolicy,
    RandomTaskEftPolicy,
    RnnPlacer,
    TaskEftAgent,
    TaskEftTrainer,
    build_task_view,
    operator_embeddings,
    placeto_node_features,
    trace_from_values,
)
from repro.core import GiPHAgent
from repro.sim import MakespanObjective

OBJ = MakespanObjective()


def rng(seed=0):
    return np.random.default_rng(seed)


class TestTraceFromValues:
    def test_best_over_time(self):
        t = trace_from_values([(0,), (1,), (0,)], [5.0, 3.0, 4.0], 1)
        assert t.best_value == 3.0
        assert t.best_over_time == (5.0, 3.0, 3.0)
        assert t.best_placement == (1,)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            trace_from_values([], [], 1)


class TestRandomPolicies:
    def test_random_placement_trace_shape(self, diamond_problem):
        trace = RandomPlacementPolicy().search(diamond_problem, OBJ, [0, 0, 0, 2], 6, rng())
        assert trace.num_steps == 6
        diamond_problem.validate_placement(trace.best_placement)

    def test_random_task_eft_improves_over_start(self, diamond_problem):
        # EFT relocation starting from the all-slowest placement should
        # find something strictly better within a few steps.
        start = [0, 0, 0, 2]
        trace = RandomTaskEftPolicy().search(diamond_problem, OBJ, start, 8, rng(1))
        assert trace.best_value <= trace.values[0]

    def test_random_task_eft_counts_relocations(self, diamond_problem):
        trace = RandomTaskEftPolicy().search(diamond_problem, OBJ, [0, 0, 0, 2], 8, rng(2))
        assert sum(trace.relocation_counts) <= 8


class TestTaskEft:
    def test_task_view_structure(self, diamond_problem):
        view = build_task_view(diamond_problem, [0, 0, 0, 2])
        assert view.num_nodes == 4
        assert view.is_pivot.all()
        assert view.num_edges == diamond_problem.graph.num_edges

    def test_agent_search_runs(self, diamond_problem):
        agent = TaskEftAgent(rng(3))
        trace = agent.search(diamond_problem, OBJ, [0, 0, 0, 2], 6, rng(4))
        assert trace.num_steps == 6
        diamond_problem.validate_placement(trace.best_placement)

    def test_select_task_masks_last(self, diamond_problem):
        agent = TaskEftAgent(rng(5))
        for _ in range(10):
            task, _ = agent.select_task(diamond_problem, [0, 0, 0, 2], last_task=1)
            assert task != 1

    def test_trainer_updates_params(self, diamond_problem):
        # Several episodes so at least one starts from a non-EFT-stable
        # placement (a stable start gives all-zero rewards and no update).
        agent = TaskEftAgent(rng(6))
        trainer = TaskEftTrainer(agent, OBJ)
        before = [p.data.copy() for p in agent.parameters()]
        rewards = trainer.train([diamond_problem], rng(0), episodes=5)
        after = list(agent.parameters())
        assert any(r != 0.0 for r in rewards)
        assert any(not np.allclose(b, a.data) for b, a in zip(before, after))


class TestPlaceto:
    def test_features_shape_and_indicators(self, diamond_problem):
        placed = np.array([True, False, False, False])
        feats = placeto_node_features(diamond_problem, [0, 0, 0, 2], 1, placed)
        assert feats.shape == (4, 5)

    def test_head_fixed_to_device_count(self, diamond_problem):
        agent = PlacetoAgent(rng(8), num_devices=3)
        lp = agent.device_log_probs(diamond_problem, [0, 0, 0, 2], 0, np.zeros(4, bool))
        assert lp.shape == (3,)

    def test_larger_network_rejected(self, diamond_problem):
        agent = PlacetoAgent(rng(9), num_devices=2)
        with pytest.raises(ValueError, match="retraining"):
            agent.device_log_probs(diamond_problem, [0, 0, 0, 2], 0, np.zeros(4, bool))

    def test_shrunken_network_masks_surplus_head(self, diamond_problem):
        # Head sized for 5 devices, network has 3: surplus outputs masked
        # (the Fig. 6 adaptivity setting where devices leave the cluster).
        agent = PlacetoAgent(rng(9), num_devices=5)
        lp = agent.device_log_probs(diamond_problem, [0, 0, 0, 2], 0, np.zeros(4, bool))
        assert np.exp(lp.data[:3]).sum() == pytest.approx(1.0)
        assert (lp.data[3:] < -100).all()
        for _ in range(10):
            device, _ = agent.choose_device(diamond_problem, [0, 0, 0, 2], 0, np.zeros(4, bool))
            assert device < 3

    def test_constraint_mask(self, diamond_problem):
        agent = PlacetoAgent(rng(10), num_devices=3)
        for _ in range(10):
            device, _ = agent.choose_device(
                diamond_problem, [0, 0, 0, 2], 3, np.zeros(4, bool)
            )
            assert device == 2  # task 3 only feasible on device 2

    def test_search_visits_each_node_once_per_pass(self, diamond_problem):
        agent = PlacetoAgent(rng(11), num_devices=3)
        trace = agent.search(diamond_problem, OBJ, [0, 0, 0, 2], 8, rng(12))
        # 8 steps = two full traversals of the 4-node graph.
        assert trace.num_steps == 8

    def test_trainer_runs(self, diamond_problem):
        agent = PlacetoAgent(rng(13), num_devices=3)
        trainer = PlacetoTrainer(agent, OBJ)
        rewards = trainer.train([diamond_problem], rng(14), episodes=2)
        assert len(rewards) == 2


class TestRnnPlacer:
    def test_operator_embedding_dims(self, diamond_problem):
        feats = operator_embeddings(diamond_problem)
        g = diamond_problem.graph
        n_types = max(g.requirements) + 1
        max_out = max(len(g.children[i]) for i in range(4))
        assert feats.shape == (4, n_types + 1 + max_out + 4)

    def test_sampled_placement_feasible(self, diamond_problem):
        placer = RnnPlacer(diamond_problem, rng(15))
        placement, log_prob = placer.sample_placement()
        diamond_problem.validate_placement(placement)
        assert np.isfinite(log_prob.data)

    def test_fit_improves_or_holds(self, diamond_problem):
        placer = RnnPlacer(diamond_problem, rng(16))
        result = placer.fit(OBJ, samples_per_update=2, max_updates=5, patience=2)
        assert result.best_value <= result.values_per_update[0] + 1e-9
        diamond_problem.validate_placement(result.best_placement)

    def test_place_greedy_no_graph(self, diamond_problem):
        placer = RnnPlacer(diamond_problem, rng(17))
        placement = placer.place()
        diamond_problem.validate_placement(placement)


class TestGiPHSearchPolicyAdapter:
    def test_adapter_runs(self, diamond_problem):
        agent = GiPHAgent(rng(18), embedding="giph")
        policy = GiPHSearchPolicy(agent)
        trace = policy.search(diamond_problem, OBJ, [0, 0, 0, 2], 4, rng(19))
        assert trace.num_steps == 4
        assert policy.name == "giph"
