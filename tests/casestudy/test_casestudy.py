"""Case-study tests: measurements, latency fit, traffic, pipelines, trace."""

import numpy as np
import pytest

from repro.casestudy import (
    DEVICE_POWER_WATTS,
    DEVICE_TYPES,
    REQ_GPU,
    TABLE1_MEAN_MS,
    TABLE2_RELOCATION,
    TASK_KINDS,
    EdgeDeviceLayout,
    PipelineConfig,
    SensorFusionBuilder,
    TraceConfig,
    TrafficConfig,
    TrafficSimulation,
    extract_trace,
    fit_latency_model,
    mbps_to_bytes_per_ms,
    wireless_bandwidth_mbps,
)
from repro.sim import MakespanObjective, simulate


def small_traffic(seed=0, vehicles=150, duration=120.0):
    cfg = TrafficConfig(num_vehicles=vehicles, duration_s=duration, cav_fraction=0.3)
    return cfg, TrafficSimulation(cfg, np.random.default_rng(seed))


class TestMeasurements:
    def test_table1_complete(self):
        for kind in TASK_KINDS:
            for t in DEVICE_TYPES:
                assert TABLE1_MEAN_MS[kind][t] > 0

    def test_type_c_fastest_everywhere(self):
        for kind in TASK_KINDS:
            row = TABLE1_MEAN_MS[kind]
            assert row["C"] < row["A"] and row["C"] <= row["B"]

    def test_table2_covers_all_kinds(self):
        assert set(TABLE2_RELOCATION) == set(TASK_KINDS)
        for profile in TABLE2_RELOCATION.values():
            assert profile.startup_ms("A") > profile.startup_ms("C")


class TestLatencyFit:
    def test_fit_quality(self):
        fit = fit_latency_model()
        assert fit.relative_rms_error() < 0.30

    def test_fit_positive_parameters(self):
        fit = fit_latency_model()
        assert all(v > 0 for v in fit.compute.values())
        assert all(v > 0 for v in fit.unit_time.values())
        assert all(v >= 0 for v in fit.startup.values())

    def test_type_c_fastest_unit_time(self):
        fit = fit_latency_model()
        assert fit.unit_time["C"] < fit.unit_time["A"]
        assert fit.unit_time["C"] < fit.unit_time["B"]

    def test_prediction_monotone_in_compute(self):
        fit = fit_latency_model()
        # rsu_fusion has the largest compute requirement by far.
        assert fit.compute["rsu_fusion"] > fit.compute["lidar"]


class TestComms:
    def test_bandwidth_decay(self):
        assert wireless_bandwidth_mbps(0.0) == pytest.approx(60.0)
        assert wireless_bandwidth_mbps(100.0) == pytest.approx(60.0 / np.e)
        assert wireless_bandwidth_mbps(100.0) > wireless_bandwidth_mbps(200.0)

    def test_bandwidth_floor(self):
        assert wireless_bandwidth_mbps(1e7) > 0

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            wireless_bandwidth_mbps(-1.0)

    def test_unit_conversion(self):
        assert mbps_to_bytes_per_ms(8.0) == pytest.approx(1000.0)


class TestTraffic:
    def test_grid_layout(self):
        cfg, sim = small_traffic()
        assert len(sim.intersections) == 36
        assert sim.intersections[0].position == (0.0, 0.0)
        assert sim.intersections[-1].position == (1000.0, 1000.0)

    def test_snapshot_positions_within_area(self):
        cfg, sim = small_traffic()
        snap = sim.snapshot(60.0)
        for v in snap.vehicles:
            assert -1e-6 <= v.position[0] <= 1000.0 + 1e-6
            assert -1e-6 <= v.position[1] <= 1000.0 + 1e-6

    def test_cav_fraction_approximate(self):
        cfg, sim = small_traffic(vehicles=2000, duration=600.0)
        frac = np.mean([sim._is_cav])
        assert 0.2 < frac < 0.4

    def test_vehicles_move_between_snapshots(self):
        cfg, sim = small_traffic()
        s1, s2 = sim.snapshot(50.0), sim.snapshot(60.0)
        p1 = {v.vid: v.position for v in s1.vehicles}
        p2 = {v.vid: v.position for v in s2.vehicles}
        common = set(p1) & set(p2)
        assert common
        assert any(p1[v] != p2[v] for v in common)

    def test_cavs_near_radius(self):
        cfg, sim = small_traffic()
        snap = sim.snapshot(60.0)
        inter = sim.intersections[0]
        for v in snap.cavs_near(inter, 400.0):
            d = np.hypot(v.position[0] - inter.position[0], v.position[1] - inter.position[1])
            assert d <= 400.0

    def test_snapshots_cadence(self):
        cfg = TrafficConfig(num_vehicles=10, duration_s=50.0, snapshot_interval_s=10.0)
        sim = TrafficSimulation(cfg, np.random.default_rng(1))
        assert len(sim.snapshots()) == 5

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TrafficConfig(cav_fraction=1.5)
        with pytest.raises(ValueError):
            TrafficConfig(grid_rows=0)


class TestPipeline:
    def make_scenario(self, seed=0):
        cfg, sim = small_traffic(seed=seed)
        fit = fit_latency_model()
        layout = EdgeDeviceLayout.random(PipelineConfig(), (1000.0, 1000.0), np.random.default_rng(seed))
        builder = SensorFusionBuilder(fit, PipelineConfig(), layout)
        for snap in sim.snapshots():
            for inter in sim.intersections:
                scenario = builder.build_scenario(snap, inter)
                if scenario is not None:
                    return scenario
        pytest.skip("no interacting CAV in the mini trace")

    def test_scenario_structure(self):
        s = self.make_scenario()
        graph = s.problem.graph
        # One RSU fusion + per-CIS (sensor, camera) + per-CAV 6 tasks.
        expected = 1 + 4 * 2 + s.num_cavs * 6
        assert graph.num_tasks == expected
        assert s.task_kinds.count("rsu_fusion") == 1
        assert s.task_kinds.count("cav_fusion") == s.num_cavs

    def test_pinned_tasks_single_feasible_device(self):
        s = self.make_scenario()
        for i, kind in enumerate(s.task_kinds):
            if kind in ("sensor", "actuation"):
                assert len(s.problem.feasible_sets[i]) == 1

    def test_gpu_tasks_not_on_cis(self):
        s = self.make_scenario()
        net = s.problem.network
        cis_indices = {
            net.index_of(uid) for uid, t in s.device_types.items() if t == "CIS"
        }
        for i, kind in enumerate(s.task_kinds):
            if kind in ("camera", "lidar"):
                assert not (set(s.problem.feasible_sets[i]) & cis_indices)

    def test_compute_matrix_matches_fit(self):
        s = self.make_scenario()
        fit = fit_latency_model()
        net = s.problem.network
        w = s.problem.cost_model.W
        for i, kind in enumerate(s.task_kinds):
            if kind in ("sensor", "actuation"):
                continue
            for j in s.problem.feasible_sets[i]:
                dtype = s.device_types[net.devices[j].uid]
                assert w[i, j] == pytest.approx(fit.predicted_ms(kind, dtype))

    def test_scenario_simulates(self):
        s = self.make_scenario()
        from repro.core import random_placement

        placement = random_placement(s.problem, np.random.default_rng(5))
        res = simulate(s.problem.graph, s.problem.network, placement, s.problem.cost_model)
        assert res.makespan > 0

    def test_device_power_assigned(self):
        s = self.make_scenario()
        for d in s.problem.network.devices:
            dtype = s.device_types[d.uid]
            if dtype != "CIS":
                assert d.compute_power == DEVICE_POWER_WATTS[dtype]


class TestTrace:
    def test_extract_produces_cases(self):
        cfg = TraceConfig(
            traffic=TrafficConfig(num_vehicles=300, duration_s=100.0, cav_fraction=0.3),
            max_cases=10,
        )
        scenarios = extract_trace(cfg, np.random.default_rng(2))
        assert 0 < len(scenarios) <= 10
        for s in scenarios:
            assert s.num_cavs >= 1
            s.problem.validate_placement(
                [fs[0] for fs in s.problem.feasible_sets]
            )

    def test_cav_cap_respected(self):
        cfg = TraceConfig(
            traffic=TrafficConfig(num_vehicles=800, duration_s=60.0, cav_fraction=0.5),
            max_cases=20,
            max_cavs_per_case=3,
        )
        scenarios = extract_trace(cfg, np.random.default_rng(3))
        assert all(s.num_cavs <= 3 for s in scenarios)
