"""Windowed trace extraction: bit-identical to serial, any worker count.

PR-6 parallelizes the cold-store case-study trace extraction by
splitting the snapshot walk into contiguous windows fanned over the
direct-execution backends.  The contract — like the GNN vectorization
it rides with — is bitwise: the merged windowed trace equals the serial
trace scenario for scenario, for every window and worker count, with or
without the ``max_cases`` early stop.

Equality is pinned per scenario via ``pickle.dumps``: whole-list
pickles may legitimately differ because pickle memoizes the float
objects scenarios of one snapshot share (``time_s``), which changes the
byte stream without changing any value.
"""

import pickle

import numpy as np
import pytest

from repro.casestudy import TraceConfig, TrafficConfig, fit_latency_model
from repro.casestudy import trace as trace_mod
from repro.casestudy.trace import (
    extract_trace,
    extract_trace_cached,
    extract_trace_windowed,
    trace_key,
)
from repro.parallel.backends import ExecutionBackend, ExecutionBackendError

STREAM = (2024, 6)


def small_config(max_cases=None):
    return TraceConfig(
        traffic=TrafficConfig(
            grid_rows=3,
            grid_cols=3,
            num_vehicles=80,
            duration_s=60.0,
            cav_fraction=0.4,
        ),
        max_cases=max_cases,
        max_cavs_per_case=4,
    )


@pytest.fixture(scope="module")
def fit():
    return fit_latency_model()


@pytest.fixture(scope="module")
def serial(fit):
    scenarios = extract_trace(small_config(), np.random.default_rng(list(STREAM)), fit=fit)
    assert len(scenarios) >= 5  # the equality tests must compare something
    return scenarios


def assert_same_scenarios(actual, expected):
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert pickle.dumps(got) == pickle.dumps(want)


class TestWindowedEqualsSerial:
    @pytest.mark.parametrize("num_windows", [1, 2, 3])
    def test_shard_counts(self, fit, serial, num_windows):
        windowed = extract_trace_windowed(
            small_config(), STREAM, fit=fit, workers=1, num_windows=num_windows
        )
        assert_same_scenarios(windowed, serial)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_worker_counts(self, fit, serial, workers):
        windowed = extract_trace_windowed(small_config(), STREAM, fit=fit, workers=workers)
        assert_same_scenarios(windowed, serial)

    @pytest.mark.parametrize("num_windows", [2, 3])
    def test_capped_early_stop(self, fit, num_windows):
        config = small_config(max_cases=5)
        expected = extract_trace(config, np.random.default_rng(list(STREAM)), fit=fit)
        windowed = extract_trace_windowed(
            config, STREAM, fit=fit, workers=1, num_windows=num_windows
        )
        assert len(windowed) == len(expected) == 5
        assert_same_scenarios(windowed, expected)

    def test_more_windows_than_snapshots(self, fit, serial):
        windowed = extract_trace_windowed(
            small_config(), STREAM, fit=fit, workers=1, num_windows=50
        )
        assert_same_scenarios(windowed, serial)


class _StoreConditionalBackend(ExecutionBackend):
    """Stand-in for shard/merge: anything that skips completed cells."""

    name = "shard"

    def fanout(self, fn, payloads, context=None):  # pragma: no cover
        raise AssertionError("must be rejected before any fan-out")


class TestBackendPolicy:
    def test_store_conditional_backend_rejected(self, fit):
        with pytest.raises(ExecutionBackendError, match="direct-execution"):
            extract_trace_windowed(
                small_config(), STREAM, fit=fit, backend=_StoreConditionalBackend()
            )


class TestCachedWorkerSoundness:
    def test_worker_count_not_in_cache_key(self):
        key = trace_key(small_config(), STREAM)
        assert "workers" not in repr(key)
        assert key["stream"] == list(STREAM)

    def test_parallel_and_serial_entries_interchangeable(self, serial):
        """A parallel cold extraction serves later serial callers (and
        vice versa): worker count never enters the cache key."""
        trace_mod._MEMO.clear()
        parallel, source = extract_trace_cached(small_config(), STREAM, workers=4)
        assert source == "extracted"
        assert_same_scenarios(parallel, serial)
        again, source = extract_trace_cached(small_config(), STREAM, workers=1)
        assert source == "memory"
        assert again is parallel
