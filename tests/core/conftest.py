"""Shared fixtures: small placement problems used across core tests."""

import numpy as np
import pytest

from repro.devices import Device, DeviceNetwork
from repro.graphs import TaskGraph
from repro.core import PlacementProblem


@pytest.fixture
def diamond_problem() -> PlacementProblem:
    """4-task diamond on 3 devices; task 3 is constrained to device 2."""
    graph = TaskGraph(
        compute=(2.0, 4.0, 6.0, 2.0),
        edges={(0, 1): 10.0, (0, 2): 10.0, (1, 3): 20.0, (2, 3): 20.0},
        requirements=(0, 0, 0, 1),
    )
    devices = [
        Device(uid=0, speed=1.0),
        Device(uid=1, speed=2.0),
        Device(uid=2, speed=4.0, supports=frozenset({0, 1})),
    ]
    bw = np.full((3, 3), 10.0)
    np.fill_diagonal(bw, np.inf)
    dl = np.full((3, 3), 0.5)
    np.fill_diagonal(dl, 0.0)
    return PlacementProblem(graph, DeviceNetwork(devices, bw, dl))


@pytest.fixture
def chain_problem() -> PlacementProblem:
    """2-task chain on 2 devices — the paper's Fig. 2 MDP example scale."""
    graph = TaskGraph((2.0, 2.0), {(0, 1): 10.0})
    devices = [Device(uid=0, speed=1.0), Device(uid=1, speed=1.0)]
    bw = np.full((2, 2), 5.0)
    np.fill_diagonal(bw, np.inf)
    dl = np.zeros((2, 2))
    return PlacementProblem(graph, DeviceNetwork(devices, bw, dl))
