"""MDP environment tests (paper §4.1, §4.2.3)."""

import numpy as np
import pytest

from repro.core import PlacementEnv, PlacementProblem, default_episode_length
from repro.sim import MakespanObjective, TotalCostObjective


def make_env(problem, **kwargs):
    return PlacementEnv(problem, MakespanObjective(), **kwargs)


class TestSpaces:
    def test_state_and_action_space_sizes(self, diamond_problem):
        # |A| = sum |D_i| = 10; |S| = prod |D_i| = 27.
        assert diamond_problem.num_actions == 10
        assert diamond_problem.state_space_size() == 27.0

    def test_default_episode_length(self, diamond_problem):
        assert default_episode_length(diamond_problem) == 8


class TestReset:
    def test_reset_with_placement(self, diamond_problem):
        env = make_env(diamond_problem)
        state = env.reset(initial_placement=[0, 1, 2, 2])
        assert state.placement == (0, 1, 2, 2)
        assert state.step == 0 and state.last_moved_task is None

    def test_reset_random(self, diamond_problem):
        env = make_env(diamond_problem)
        state = env.reset(rng=np.random.default_rng(0))
        diamond_problem.validate_placement(state.placement)

    def test_reset_requires_source(self, diamond_problem):
        with pytest.raises(ValueError):
            make_env(diamond_problem).reset()

    def test_state_before_reset_raises(self, diamond_problem):
        with pytest.raises(RuntimeError):
            _ = make_env(diamond_problem).state

    def test_objective_value_matches_simulator(self, diamond_problem):
        env = make_env(diamond_problem)
        state = env.reset(initial_placement=[0, 0, 0, 2])
        expected = MakespanObjective().evaluate(diamond_problem.cost_model, [0, 0, 0, 2])
        assert state.objective_value == pytest.approx(expected)


class TestStep:
    def test_step_applies_relocation(self, diamond_problem):
        env = make_env(diamond_problem)
        state = env.reset(initial_placement=[0, 0, 0, 2])
        node = state.gpnet.node_index(1, 2)
        next_state, reward, done = env.step(node)
        assert next_state.placement == (0, 2, 0, 2)
        assert next_state.last_moved_task == 1
        assert not done

    def test_reward_is_objective_improvement(self, diamond_problem):
        env = make_env(diamond_problem)
        state = env.reset(initial_placement=[0, 0, 0, 2])
        node = state.gpnet.node_index(2, 1)
        before = state.objective_value
        next_state, reward, _ = env.step(node)
        assert reward == pytest.approx(before - next_state.objective_value)

    def test_episode_terminates(self, diamond_problem):
        env = make_env(diamond_problem, episode_length=3)
        state = env.reset(initial_placement=[0, 0, 0, 2])
        for step in range(3):
            mask = env.action_mask()
            node = int(np.flatnonzero(mask)[0])
            state, _, done = env.step(node)
        assert done and state.step == 3

    def test_invalid_action_rejected(self, diamond_problem):
        env = make_env(diamond_problem)
        env.reset(initial_placement=[0, 0, 0, 2])
        with pytest.raises(ValueError):
            env.step(10_000)

    def test_alternative_objective(self, diamond_problem):
        env = PlacementEnv(diamond_problem, TotalCostObjective())
        state = env.reset(initial_placement=[2, 2, 2, 2])
        # co-located on fastest device: cost = sum(w) with zero comm
        assert state.objective_value == pytest.approx(sum(diamond_problem.cost_model.W[:, 2]))


class TestMasks:
    def test_pivots_masked(self, diamond_problem):
        env = make_env(diamond_problem)
        state = env.reset(initial_placement=[0, 0, 0, 2])
        mask = env.action_mask()
        assert not mask[state.gpnet.is_pivot].any()

    def test_last_task_masked(self, diamond_problem):
        env = make_env(diamond_problem)
        state = env.reset(initial_placement=[0, 0, 0, 2])
        node = state.gpnet.node_index(1, 2)
        state, _, _ = env.step(node)
        mask = env.action_mask()
        assert not mask[state.gpnet.task_of == 1].any()

    def test_masks_can_be_disabled(self, diamond_problem):
        env = PlacementEnv(
            diamond_problem, MakespanObjective(), mask_no_ops=False, mask_repeat_task=False
        )
        state = env.reset(initial_placement=[0, 0, 0, 2])
        assert env.action_mask().all()

    def test_degenerate_instance_still_has_action(self, chain_problem):
        # 2 tasks x 2 devices; after moving task 0, both its options are
        # masked (repeat) and pivots are masked -> task 1's non-pivot
        # option must remain.
        env = make_env(chain_problem)
        state = env.reset(initial_placement=[0, 0])
        state, _, _ = env.step(state.gpnet.node_index(0, 1))
        mask = env.action_mask()
        assert mask.sum() == 1
        task, dev = state.gpnet.action_of(int(np.flatnonzero(mask)[0]))
        assert task == 1 and dev == 1

    def test_fig2_action_space(self, chain_problem):
        # Fig. 2: 2-task graph, both devices feasible -> 4 actions.
        env = make_env(chain_problem)
        state = env.reset(initial_placement=[0, 0])
        assert state.num_actions == 4
        assert state.gpnet.is_pivot.sum() == 2
        # The two no-op actions (a0, a1 at M0 in the paper) are masked.
        assert env.action_mask().sum() == 2
