"""GNN variant and policy-network tests (paper §4.2.2-4.2.3, App. B.6)."""

import numpy as np
import pytest

from repro.core import (
    FeatureConfig,
    GpNetBuilder,
    ScorePolicy,
    augment_with_out_edge_means,
    make_embedding,
)
from repro.nn import Tensor

ALL_KINDS = ["giph", "giph-3", "giph-5", "giph-ne", "graphsage-ne", "giph-ne-pol"]


def gpnet_of(problem, placement=(0, 0, 0, 2)):
    return GpNetBuilder(problem, FeatureConfig()).build(list(placement))


class TestEmbeddings:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_output_shape(self, diamond_problem, kind):
        net = gpnet_of(diamond_problem)
        emb = make_embedding(kind, np.random.default_rng(0))
        out = emb(net)
        assert out.shape == (net.num_nodes, emb.out_dim)

    def test_giph_out_dim_matches_table4(self, diamond_problem):
        # Table 4: embedding dim 5 per direction, summary 10.
        emb = make_embedding("giph", np.random.default_rng(0))
        assert emb.out_dim == 10

    def test_ne_pol_has_no_parameters(self):
        emb = make_embedding("giph-ne-pol", np.random.default_rng(0))
        assert emb.num_parameters() == 0
        assert emb.out_dim == 8

    @pytest.mark.parametrize("kind", ["giph", "giph-3", "giph-ne", "graphsage-ne"])
    def test_gradients_flow_to_all_parameters(self, diamond_problem, kind):
        net = gpnet_of(diamond_problem)
        emb = make_embedding(kind, np.random.default_rng(1))
        emb(net).sum().backward()
        for name, p in emb.named_parameters():
            assert p.grad is not None, name
            assert np.isfinite(p.grad).all(), name

    def test_deterministic_forward(self, diamond_problem):
        net = gpnet_of(diamond_problem)
        emb = make_embedding("giph", np.random.default_rng(2))
        np.testing.assert_allclose(emb(net).data, emb(net).data)

    def test_embedding_depends_on_placement(self, diamond_problem):
        emb = make_embedding("giph", np.random.default_rng(3))
        out_a = emb(gpnet_of(diamond_problem, (0, 0, 0, 2))).data
        out_b = emb(gpnet_of(diamond_problem, (1, 1, 1, 2))).data
        assert not np.allclose(out_a, out_b)

    def test_two_way_directions_differ(self, diamond_problem):
        # Forward and backward summaries should encode different subgraphs.
        net = gpnet_of(diamond_problem)
        emb = make_embedding("giph", np.random.default_rng(4))
        out = emb(net).data
        assert not np.allclose(out[:, :5], out[:, 5:])

    def test_giph_k_factory(self):
        emb = make_embedding("giph-7", np.random.default_rng(0))
        assert emb.k == 7
        with pytest.raises(ValueError):
            make_embedding("giph-k", np.random.default_rng(0), k=0)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_embedding("gat", np.random.default_rng(0))

    def test_augmented_features_shape(self, diamond_problem):
        net = gpnet_of(diamond_problem)
        aug = augment_with_out_edge_means(net)
        assert aug.shape == (net.num_nodes, 8)
        # Exit-task options have no out-edges -> zero means.
        exit_opts = net.options[3]
        np.testing.assert_allclose(aug[exit_opts, 4:], 0.0)

    def test_sum_aggregation_option(self, diamond_problem):
        net = gpnet_of(diamond_problem)
        emb = make_embedding("giph", np.random.default_rng(5), aggregation="sum")
        assert emb(net).shape == (net.num_nodes, 10)

    def test_bad_aggregation(self, diamond_problem):
        net = gpnet_of(diamond_problem)
        emb = make_embedding("giph", np.random.default_rng(5), aggregation="max")
        with pytest.raises(ValueError):
            emb(net)


class TestScorePolicy:
    def test_log_probs_normalized_over_mask(self, diamond_problem):
        net = gpnet_of(diamond_problem)
        emb = make_embedding("giph", np.random.default_rng(0))
        policy = ScorePolicy(emb.out_dim, np.random.default_rng(1))
        mask = ~net.is_pivot
        lp = policy.log_probs(emb(net), mask)
        assert np.exp(lp.data[mask]).sum() == pytest.approx(1.0)

    def test_sample_respects_mask(self, diamond_problem):
        net = gpnet_of(diamond_problem)
        emb = make_embedding("giph", np.random.default_rng(0))
        policy = ScorePolicy(emb.out_dim, np.random.default_rng(1))
        mask = ~net.is_pivot
        rng = np.random.default_rng(2)
        embeddings = emb(net)
        for _ in range(25):
            action, _ = policy.sample(embeddings, mask, rng)
            assert mask[action]

    def test_greedy_is_argmax(self, diamond_problem):
        net = gpnet_of(diamond_problem)
        emb = make_embedding("giph", np.random.default_rng(0))
        policy = ScorePolicy(emb.out_dim, np.random.default_rng(1))
        mask = ~net.is_pivot
        embeddings = emb(net)
        action, _ = policy.sample(embeddings, mask, np.random.default_rng(0), greedy=True)
        lp = policy.log_probs(embeddings, mask).data
        assert action == int(np.argmax(np.where(mask, lp, -np.inf)))

    def test_log_prob_backward_reaches_gnn(self, diamond_problem):
        net = gpnet_of(diamond_problem)
        emb = make_embedding("giph", np.random.default_rng(0))
        policy = ScorePolicy(emb.out_dim, np.random.default_rng(1))
        _, log_prob = policy.sample(emb(net), ~net.is_pivot, np.random.default_rng(2))
        log_prob.backward()
        grads = [p.grad for p in emb.parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in grads)

    def test_policy_size_independent_of_instance(self, diamond_problem, chain_problem):
        # The same policy evaluates instances of different sizes — the
        # paper's scalability claim (§4.2.3).
        rng = np.random.default_rng(0)
        emb = make_embedding("giph", rng)
        policy = ScorePolicy(emb.out_dim, rng)
        for problem, placement in [(diamond_problem, [0, 0, 0, 2]), (chain_problem, [0, 1])]:
            net = GpNetBuilder(problem).build(placement)
            lp = policy.log_probs(emb(net), np.ones(net.num_nodes, dtype=bool))
            assert lp.shape == (net.num_nodes,)
