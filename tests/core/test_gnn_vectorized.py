"""Property tests: the vectorized GNN hot path is bit-identical to the loop.

The contract of the PR-6 vectorization (frontier-batched message
passing, split-h1 edge hoisting, fused REINFORCE accumulation) is that
it changes *nothing* about the floats an experiment produces — only how
fast they appear.  These tests pin that contract:

* embeddings from the vectorized sweep equal the retained per-task loop
  reference byte for byte (``np.array_equal``, no tolerance) across
  random problems, placements, and embedding kinds;
* parameter gradients agree to tight tolerance (backward accumulation
  order differs between the paths, so bitwise equality is not expected
  there);
* the per-problem structural caches are computed once and shared;
* the fused ``episode_loss`` delivers the same gradient as the
  per-step Python sum it replaced;
* an end-to-end search trace is identical in both modes.
"""

import numpy as np
import pytest

from repro.core import PlacementProblem, random_placement
from repro.core.agent import GiPHAgent
from repro.core.features import GpNetBuilder, GpNetStructure, structure_of
from repro.core.gnn import gnn_stats, make_embedding, reference_path
from repro.core.reinforce import (
    ReinforceConfig,
    average_reward_baseline,
    discounted_returns,
    episode_loss,
)
from repro.core.search import run_search
from repro.devices import DeviceNetworkParams, generate_device_network
from repro.graphs import TaskGraphParams, generate_task_graph
from repro.nn import Tensor
from repro.sim.objectives import MakespanObjective

KINDS = ("giph", "giph-ne", "graphsage-ne")


def make_problem(seed: int, num_tasks: int = 8, num_devices: int = 4) -> PlacementProblem:
    rng = np.random.default_rng(seed)
    graph = generate_task_graph(TaskGraphParams(num_tasks=num_tasks, constraint_prob=0.3), rng)
    network = generate_device_network(DeviceNetworkParams(num_devices=num_devices), rng)
    return PlacementProblem(graph, network)


def grads_of(module) -> dict[str, np.ndarray | None]:
    return {
        name: None if p.grad is None else p.grad.copy()
        for name, p in module.named_parameters()
    }


class TestBitIdentical:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("trial", range(6))
    def test_vectorized_equals_reference_bitwise(self, kind, trial):
        problem = make_problem(40 + trial, num_tasks=4 + trial, num_devices=3 + trial % 3)
        builder = GpNetBuilder(problem)
        emb = make_embedding(kind, np.random.default_rng([1, trial]))
        for pseed in range(3):
            placement = random_placement(problem, np.random.default_rng([trial, pseed]))
            net = builder.build(placement)
            out_vec = emb(net)
            with reference_path():
                out_ref = emb(net)
            assert np.array_equal(out_vec.data, out_ref.data), (
                f"kind={kind} trial={trial} pseed={pseed}: max diff "
                f"{np.max(np.abs(out_vec.data - out_ref.data))}"
            )

    @pytest.mark.parametrize("kind", KINDS)
    def test_gradients_agree(self, kind):
        problem = make_problem(7, num_tasks=7, num_devices=4)
        builder = GpNetBuilder(problem)
        net = builder.build(random_placement(problem, np.random.default_rng(0)))
        emb = make_embedding(kind, np.random.default_rng(2))

        ((emb(net) * emb(net)).sum()).backward()
        vec_grads = grads_of(emb)
        emb.zero_grad()
        with reference_path():
            ((emb(net) * emb(net)).sum()).backward()
        ref_grads = grads_of(emb)

        assert vec_grads.keys() == ref_grads.keys()
        for name, vg in vec_grads.items():
            rg = ref_grads[name]
            assert (vg is None) == (rg is None), name
            if vg is not None:
                np.testing.assert_allclose(vg, rg, rtol=1e-9, atol=1e-12, err_msg=name)

    def test_no_grad_inference_matches_training_forward(self):
        from repro.nn import no_grad

        problem = make_problem(9, num_tasks=6)
        net = GpNetBuilder(problem).build(
            random_placement(problem, np.random.default_rng(1))
        )
        emb = make_embedding("giph", np.random.default_rng(3))
        with_grad = emb(net).data
        with no_grad():
            without = emb(net).data
        assert np.array_equal(with_grad, without)


class TestStructureCache:
    def test_builder_attaches_one_shared_structure(self):
        problem = make_problem(11, num_tasks=6)
        builder = GpNetBuilder(problem)
        nets = [
            builder.build(random_placement(problem, np.random.default_rng(s)))
            for s in range(3)
        ]
        structures = {id(structure_of(net)) for net in nets}
        assert len(structures) == 1

    def test_structure_of_is_lazy_and_stable(self):
        problem = make_problem(12, num_tasks=5)
        placement = random_placement(problem, np.random.default_rng(0))
        net = GpNetBuilder(problem).build(placement)
        # Simulate a net that arrived without the builder's shared
        # instance (e.g. built directly in a test).
        object.__setattr__(net, "_structure", None)
        first = structure_of(net)
        assert structure_of(net) is first
        assert isinstance(first, GpNetStructure)

    def test_plans_are_placement_independent_but_not_endpoints(self):
        """The cached plans carry only layout facts; edge endpoints move
        with the pivots and are resolved per forward."""
        problem = make_problem(13, num_tasks=6)
        builder = GpNetBuilder(problem)
        a = builder.build(random_placement(problem, np.random.default_rng(0)))
        b = builder.build(random_placement(problem, np.random.default_rng(1)))
        sa, sb = structure_of(a), structure_of(b)
        assert sa is sb
        for plan in (sa.forward_plan, sa.backward_plan):
            total_nodes = sum(len(level.nodes) for level in plan.levels)
            assert total_nodes == a.num_nodes == b.num_nodes

    def test_forward_counter_advances(self):
        problem = make_problem(14, num_tasks=5)
        net = GpNetBuilder(problem).build(
            random_placement(problem, np.random.default_rng(0))
        )
        emb = make_embedding("giph", np.random.default_rng(4))
        before = gnn_stats()
        emb(net)
        after = gnn_stats()
        delta = after.delta(before)
        assert delta.forwards == 1
        assert delta.seconds >= 0.0


class TestFusedEpisodeLoss:
    def test_matches_per_step_python_sum(self):
        """The fused stack-multiply-sum delivers each log-prob exactly
        ``-advantage_t`` — the same gradient as the per-step loop."""
        rng = np.random.default_rng(5)
        config = ReinforceConfig(episodes=1)
        rewards = list(rng.normal(size=12))
        logits = rng.normal(size=12)

        fused_inputs = [Tensor(np.asarray(v), requires_grad=True) for v in logits]
        episode_loss(fused_inputs, rewards, config).backward()

        loop_inputs = [Tensor(np.asarray(v), requires_grad=True) for v in logits]
        returns = discounted_returns(rewards, config.gamma)
        baseline = average_reward_baseline(rewards)
        loss = Tensor(np.zeros(()))
        for t, lp in enumerate(loop_inputs):
            advantage = (config.gamma**t) * (returns[t] - baseline[t])
            loss = loss + lp * (-advantage)
        loss.backward()

        for fused, looped in zip(fused_inputs, loop_inputs):
            np.testing.assert_array_equal(fused.grad, looped.grad)

    def test_empty_episode(self):
        loss = episode_loss([], [], ReinforceConfig(episodes=1))
        assert loss.data.shape == ()
        assert loss.data == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            episode_loss([Tensor(np.zeros(()))], [], ReinforceConfig(episodes=1))


class TestEndToEnd:
    def test_search_trace_identical_both_modes(self):
        problem = make_problem(15, num_tasks=8, num_devices=4)
        objective = MakespanObjective()
        initial = random_placement(problem, np.random.default_rng(2))

        def episode(use_reference: bool):
            agent = GiPHAgent(np.random.default_rng(6))
            agent.rng = np.random.default_rng(8)
            if use_reference:
                with reference_path():
                    return run_search(
                        agent=agent, problem=problem, objective=objective,
                        initial_placement=initial, episode_length=16,
                    )
            return run_search(
                agent=agent, problem=problem, objective=objective,
                initial_placement=initial, episode_length=16,
            )

        vec, ref = episode(False), episode(True)
        assert vec.best_placement == ref.best_placement
        assert np.array_equal(np.asarray(vec.values), np.asarray(ref.values))

    def test_training_trajectory_identical_both_modes(self):
        from repro.core.reinforce import ReinforceTrainer

        problem = make_problem(16, num_tasks=6, num_devices=4)

        def train(use_reference: bool):
            agent = GiPHAgent(np.random.default_rng(7))
            trainer = ReinforceTrainer(
                agent, MakespanObjective(), ReinforceConfig(episodes=3)
            )
            rng = np.random.default_rng(9)
            if use_reference:
                with reference_path():
                    trainer.train([problem], rng, episodes=3)
            else:
                trainer.train([problem], rng, episodes=3)
            return [s.best_value for s in trainer.history]

        assert train(False) == train(True)
