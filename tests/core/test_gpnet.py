"""gpNet construction tests against the paper's Algorithm (App. B.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FeatureConfig, GpNetBuilder, PlacementProblem, random_placement
from repro.devices import DeviceNetworkParams, generate_device_network
from repro.graphs import TaskGraphParams, generate_task_graph


def build(problem, placement, **cfg):
    return GpNetBuilder(problem, FeatureConfig(**cfg)).build(placement)


class TestSizes:
    def test_node_count_formula(self, diamond_problem):
        # |V_H| = sum_i |D_i| = 3+3+3+1
        net = build(diamond_problem, [0, 0, 0, 2])
        assert net.num_nodes == 10

    def test_edge_count_formula(self, diamond_problem):
        # |E_H| = sum_i |D_i|*|E_i| - |E|
        g = diamond_problem.graph
        sizes = [len(s) for s in diamond_problem.feasible_sets]
        expected = sum(sizes[i] * g.degree(i) for i in range(g.num_tasks)) - g.num_edges
        net = build(diamond_problem, [0, 0, 0, 2])
        assert net.num_edges == expected

    def test_one_pivot_per_task(self, diamond_problem):
        net = build(diamond_problem, [1, 0, 2, 2])
        assert net.is_pivot.sum() == 4
        for i, opts in enumerate(net.options):
            pivots = opts[net.is_pivot[opts]]
            assert len(pivots) == 1
            assert net.device_of[pivots[0]] == [1, 0, 2, 2][i]


class TestStructure:
    def test_every_edge_touches_a_pivot(self, diamond_problem):
        net = build(diamond_problem, [0, 1, 2, 2])
        for s, d in zip(net.edge_src, net.edge_dst):
            assert net.is_pivot[s] or net.is_pivot[d]

    def test_edges_follow_task_graph(self, diamond_problem):
        net = build(diamond_problem, [0, 1, 2, 2])
        g = diamond_problem.graph
        for s, d in zip(net.edge_src, net.edge_dst):
            assert (int(net.task_of[s]), int(net.task_of[d])) in g.edges

    def test_no_duplicate_edges(self, diamond_problem):
        net = build(diamond_problem, [0, 1, 2, 2])
        pairs = list(zip(net.edge_src.tolist(), net.edge_dst.tolist()))
        assert len(pairs) == len(set(pairs))

    def test_nonpivot_connects_only_to_pivots(self, diamond_problem):
        net = build(diamond_problem, [0, 1, 2, 2])
        for s, d in zip(net.edge_src, net.edge_dst):
            if not net.is_pivot[s]:
                assert net.is_pivot[d]
            if not net.is_pivot[d]:
                assert net.is_pivot[s]

    def test_node_index_roundtrip(self, diamond_problem):
        net = build(diamond_problem, [0, 0, 0, 2])
        for u in range(net.num_nodes):
            task, dev = net.action_of(u)
            assert net.node_index(task, dev) == u

    def test_node_index_infeasible(self, diamond_problem):
        net = build(diamond_problem, [0, 0, 0, 2])
        with pytest.raises(KeyError):
            net.node_index(3, 0)  # task 3 only feasible on device 2

    def test_infeasible_placement_rejected(self, diamond_problem):
        with pytest.raises(ValueError, match="infeasible"):
            build(diamond_problem, [0, 0, 0, 0])

    def test_constrained_task_has_single_option(self, diamond_problem):
        net = build(diamond_problem, [0, 0, 0, 2])
        assert len(net.options[3]) == 1


class TestFeatures:
    def test_feature_shapes(self, diamond_problem):
        net = build(diamond_problem, [0, 0, 0, 2], normalize=False)
        assert net.node_features.shape == (net.num_nodes, 4)
        assert net.edge_features.shape == (net.num_edges, 4)

    def test_node_features_unnormalized_values(self, diamond_problem):
        net = build(diamond_problem, [0, 0, 0, 2], normalize=False)
        g, cm = diamond_problem.graph, diamond_problem.cost_model
        u = net.node_index(1, 2)  # task 1 on device 2
        c, sp, w, pot = net.node_features[u]
        assert c == g.compute[1]
        assert sp == diamond_problem.network.devices[2].speed
        assert w == cm.compute_time(1, 2)

    def test_pivot_potential_nonpositive(self, diamond_problem):
        # A pivot's earliest possible start can never exceed its actual
        # start (queueing only delays), so potential <= 0.
        net = build(diamond_problem, [0, 1, 2, 2], normalize=False)
        for u in np.flatnonzero(net.is_pivot):
            assert net.node_features[u, 3] <= 1e-9

    def test_entry_pivot_potential_zero(self, diamond_problem):
        net = build(diamond_problem, [0, 1, 2, 2], normalize=False)
        entry_pivot = [u for u in np.flatnonzero(net.is_pivot) if net.task_of[u] == 0][0]
        assert net.node_features[entry_pivot, 3] == pytest.approx(0.0)

    def test_ablated_potential_is_zero_column(self, diamond_problem):
        net = build(diamond_problem, [0, 0, 0, 2], use_start_time_potential=False, normalize=False)
        np.testing.assert_allclose(net.node_features[:, 3], 0.0)
        assert net.node_features.shape[1] == 4

    def test_normalization_unit_mean_magnitude(self, diamond_problem):
        net = build(diamond_problem, [0, 1, 2, 2], normalize=True)
        mags = np.abs(net.node_features).mean(axis=0)
        for col, mag in enumerate(mags):
            if mag > 0:
                assert mag == pytest.approx(1.0), f"column {col}"

    def test_edge_features_unnormalized_values(self, diamond_problem):
        net = build(diamond_problem, [0, 1, 2, 2], normalize=False)
        g, nw, cm = diamond_problem.graph, diamond_problem.network, diamond_problem.cost_model
        # find edge from pivot of 0 (dev 0) to option (1, dev 2)
        src = net.node_index(0, 0)
        dst = net.node_index(1, 2)
        k = [i for i in range(net.num_edges) if net.edge_src[i] == src and net.edge_dst[i] == dst]
        assert len(k) == 1
        b, inv_bw, dl, c = net.edge_features[k[0]]
        assert b == g.edges[(0, 1)]
        assert inv_bw == pytest.approx(1.0 / nw.bandwidth[0, 2])
        assert dl == nw.delay[0, 2]
        assert c == pytest.approx(cm.comm_time((0, 1), 0, 2))

    def test_local_edge_inverse_bandwidth_zero(self, diamond_problem):
        net = build(diamond_problem, [2, 2, 2, 2], normalize=False)
        src, dst = net.node_index(0, 2), net.node_index(1, 2)
        k = [i for i in range(net.num_edges) if net.edge_src[i] == src and net.edge_dst[i] == dst][0]
        assert net.edge_features[k, 1] == 0.0
        assert net.edge_features[k, 3] == 0.0


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    num_tasks=st.integers(min_value=2, max_value=15),
    num_devices=st.integers(min_value=2, max_value=6),
)
def test_gpnet_size_formulas_hold_generally(seed, num_tasks, num_devices):
    """Property: |V_H| and |E_H| match §4.2.1's closed forms on random
    instances with placement constraints."""
    rng = np.random.default_rng(seed)
    g = generate_task_graph(TaskGraphParams(num_tasks=num_tasks, constraint_prob=0.4), rng)
    nw = generate_device_network(DeviceNetworkParams(num_devices=num_devices), rng)
    problem = PlacementProblem(g, nw)
    placement = random_placement(problem, rng)
    net = GpNetBuilder(problem).build(placement)

    sizes = [len(s) for s in problem.feasible_sets]
    assert net.num_nodes == sum(sizes)
    expected_edges = sum(sizes[i] * g.degree(i) for i in range(num_tasks)) - g.num_edges
    assert net.num_edges == expected_edges
    assert net.is_pivot.sum() == num_tasks
    for s, d in zip(net.edge_src, net.edge_dst):
        assert net.is_pivot[s] or net.is_pivot[d]
