"""REINFORCE trainer and search-loop tests (paper §4.1, App. B.7)."""

import numpy as np
import pytest

from repro.core import (
    GiPHAgent,
    PlacementProblem,
    ReinforceConfig,
    ReinforceTrainer,
    average_reward_baseline,
    discounted_returns,
    greedy_fastest_device_placement,
    random_placement,
    run_search,
)
from repro.sim import MakespanObjective


class TestReturnsMath:
    def test_discounted_returns(self):
        np.testing.assert_allclose(
            discounted_returns([1.0, 2.0, 3.0], gamma=0.5),
            [1 + 0.5 * 2 + 0.25 * 3, 2 + 0.5 * 3, 3.0],
        )

    def test_gamma_one_is_suffix_sum(self):
        np.testing.assert_allclose(discounted_returns([1.0, 1.0, 1.0], 1.0), [3, 2, 1])

    def test_gamma_zero_is_immediate(self):
        np.testing.assert_allclose(discounted_returns([1.0, 2.0, 3.0], 0.0), [1, 2, 3])

    def test_average_reward_baseline(self):
        # b_t = mean of rewards before t; b_0 = 0 (paper B.7).
        np.testing.assert_allclose(
            average_reward_baseline([2.0, 4.0, 6.0]), [0.0, 2.0, 3.0]
        )

    def test_baseline_single_step(self):
        np.testing.assert_allclose(average_reward_baseline([5.0]), [0.0])


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs", [{"gamma": 1.5}, {"episodes": 0}, {"grad_clip": 0.0}]
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ReinforceConfig(**kwargs)


class TestTraining:
    def test_episode_updates_parameters(self, diamond_problem):
        rng = np.random.default_rng(0)
        agent = GiPHAgent(rng, embedding="giph")
        trainer = ReinforceTrainer(agent, MakespanObjective(), ReinforceConfig(episode_length=4))
        before = {k: v.copy() for k, v in agent.state_dict().items()}
        stats = trainer.run_episode(diamond_problem, rng)
        after = agent.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)
        assert np.isfinite(stats.grad_norm)
        assert stats.best_value <= stats.initial_value + 1e-9

    def test_train_samples_problems(self, diamond_problem, chain_problem):
        rng = np.random.default_rng(1)
        agent = GiPHAgent(rng, embedding="giph-ne-pol")
        trainer = ReinforceTrainer(agent, MakespanObjective(), ReinforceConfig(episode_length=3))
        stats = trainer.train([diamond_problem, chain_problem], rng, episodes=6)
        assert len(stats) == 6
        assert len(trainer.history) == 6

    def test_train_empty_problems_raises(self):
        rng = np.random.default_rng(0)
        agent = GiPHAgent(rng, embedding="giph-ne-pol")
        trainer = ReinforceTrainer(agent, MakespanObjective())
        with pytest.raises(ValueError):
            trainer.train([], rng)

    def test_learning_improves_policy_on_tiny_instance(self, chain_problem):
        """End-to-end sanity: on the 2-task/2-device instance the trained
        policy should find the co-location optimum more reliably than at
        init.  (Small scale keeps pure-NumPy runtime in check.)"""
        rng = np.random.default_rng(7)
        agent = GiPHAgent(rng, embedding="giph")
        objective = MakespanObjective()
        trainer = ReinforceTrainer(
            agent, objective, ReinforceConfig(episode_length=4, learning_rate=0.02)
        )
        trainer.train([chain_problem], rng, episodes=30)
        first5 = np.mean([s.best_value for s in trainer.history[:5]])
        last5 = np.mean([s.best_value for s in trainer.history[-5:]])
        assert last5 <= first5 + 1e-9


class TestSearch:
    def test_best_over_time_non_increasing(self, diamond_problem):
        rng = np.random.default_rng(3)
        agent = GiPHAgent(rng, embedding="giph")
        trace = run_search(
            agent,
            diamond_problem,
            MakespanObjective(),
            initial_placement=random_placement(diamond_problem, rng),
        )
        diffs = np.diff(trace.best_over_time)
        assert (diffs <= 1e-12).all()
        assert trace.best_value == trace.best_over_time[-1]

    def test_trace_lengths(self, diamond_problem):
        rng = np.random.default_rng(4)
        agent = GiPHAgent(rng, embedding="giph-ne-pol")
        trace = run_search(
            agent, diamond_problem, MakespanObjective(), [0, 0, 0, 2], episode_length=5
        )
        assert trace.num_steps == 5
        assert len(trace.best_over_time) == 6
        assert len(trace.values) == 6

    def test_best_placement_feasible_and_matches_value(self, diamond_problem):
        rng = np.random.default_rng(5)
        agent = GiPHAgent(rng, embedding="giph")
        trace = run_search(agent, diamond_problem, MakespanObjective(), [0, 0, 0, 2])
        diamond_problem.validate_placement(trace.best_placement)
        assert MakespanObjective().evaluate(
            diamond_problem.cost_model, trace.best_placement
        ) == pytest.approx(trace.best_value)

    def test_relocation_counts_bounded_by_steps(self, diamond_problem):
        rng = np.random.default_rng(6)
        agent = GiPHAgent(rng, embedding="giph")
        trace = run_search(agent, diamond_problem, MakespanObjective(), [0, 0, 0, 2])
        assert sum(trace.relocation_counts) <= trace.num_steps

    def test_greedy_search_deterministic(self, diamond_problem):
        rng = np.random.default_rng(8)
        agent = GiPHAgent(rng, embedding="giph")
        t1 = run_search(agent, diamond_problem, MakespanObjective(), [0, 0, 0, 2], greedy=True)
        t2 = run_search(agent, diamond_problem, MakespanObjective(), [0, 0, 0, 2], greedy=True)
        assert t1.best_placement == t2.best_placement


class TestAgentStateDict:
    def test_roundtrip(self, diamond_problem):
        rng = np.random.default_rng(9)
        a1 = GiPHAgent(rng, embedding="giph")
        a2 = GiPHAgent(np.random.default_rng(10), embedding="giph")
        a2.load_state_dict(a1.state_dict())
        from repro.core import GpNetBuilder

        net = GpNetBuilder(diamond_problem).build([0, 0, 0, 2])
        np.testing.assert_allclose(a1.embedding(net).data, a2.embedding(net).data)


class TestInitializers:
    def test_greedy_fastest_device(self, diamond_problem):
        placement = greedy_fastest_device_placement(diamond_problem)
        # device 2 is fastest and feasible for everything
        assert placement == (2, 2, 2, 2)

    def test_random_placement_feasible(self, diamond_problem):
        rng = np.random.default_rng(11)
        for _ in range(20):
            diamond_problem.validate_placement(random_placement(diamond_problem, rng))
